"""Regenerate ``tests/golden_parity.json`` — the fast-path parity goldens.

Run from the repo root::

    PYTHONPATH=src python tests/gen_golden_parity.py

The file holds full serialized :class:`RunResult` dumps (via
``result_to_dict``, including ``events_executed``) for a pinned grid of
workloads x policies x fault plans.  The parity suite in
``tests/property/test_perf_parity.py`` asserts that current code
reproduces every dump byte-for-byte, which is what licenses hot-path
optimizations: any change to event ordering, latency arithmetic, or
counter accounting shows up as a diff here.

Only regenerate this file for an *intentional* semantic change, never to
make a perf optimization pass.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config.faults import FaultConfig
from repro.config.presets import small_system, tiny_system
from repro.harness.io import result_to_dict
from repro.harness.runner import run_workload

PARITY_FAULTS = FaultConfig(
    migration_drop_rate=0.3,
    shootdown_ack_delay=25,
    shootdown_timeout_rate=0.2,
    link_faults=(),
    max_migration_attempts=3,
)

# (key, workload, policy, config_name, scale, seed, faulted)
PARITY_GRID = [
    ("SC/baseline/tiny/clean", "SC", "baseline", "tiny", 0.008, 5, False),
    ("SC/griffin/tiny/clean", "SC", "griffin", "tiny", 0.008, 5, False),
    ("SC/griffin/tiny/faults", "SC", "griffin", "tiny", 0.008, 5, True),
    ("MT/baseline/tiny/clean", "MT", "baseline", "tiny", 0.008, 5, False),
    ("MT/griffin/tiny/clean", "MT", "griffin", "tiny", 0.008, 5, False),
    ("MT/griffin/tiny/faults", "MT", "griffin", "tiny", 0.008, 5, True),
    ("MT/griffin_flush/tiny/clean", "MT", "griffin_flush", "tiny", 0.008, 5, False),
    ("BFS/baseline/tiny/clean", "BFS", "baseline", "tiny", 0.008, 5, False),
    ("BFS/griffin/tiny/clean", "BFS", "griffin", "tiny", 0.008, 5, False),
    ("BFS/griffin/tiny/faults", "BFS", "griffin", "tiny", 0.008, 5, True),
    ("PR/griffin/tiny/clean", "PR", "griffin", "tiny", 0.008, 5, False),
    ("PR/baseline/tiny/faults", "PR", "baseline", "tiny", 0.008, 5, True),
    ("KM/griffin_adaptive/tiny/clean", "KM", "griffin_adaptive", "tiny", 0.008, 5, False),
    ("FIR/griffin_predictive/tiny/clean", "FIR", "griffin_predictive", "tiny", 0.008, 5, False),
    ("SC/griffin/small/clean", "SC", "griffin", "small", 0.015, 3, False),
    ("MT/griffin/small/faults", "MT", "griffin", "small", 0.01, 9, True),
]

_CONFIGS = {"tiny": lambda: tiny_system(2), "small": lambda: small_system(4)}


def run_grid() -> dict:
    """Run every parity point and return key -> serialized RunResult."""
    goldens = {}
    for key, workload, policy, config_name, scale, seed, faulted in PARITY_GRID:
        result = run_workload(
            workload, policy, config=_CONFIGS[config_name](),
            scale=scale, seed=seed,
            faults=PARITY_FAULTS if faulted else None,
        )
        goldens[key] = result_to_dict(result)
    return goldens


def main() -> None:
    out = Path(__file__).parent / "golden_parity.json"
    out.write_text(json.dumps(run_grid(), indent=1, sort_keys=True))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
