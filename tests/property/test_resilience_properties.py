"""Property-based tests for fault-injection determinism.

Two invariants the whole resilience design rests on:

1. The same seed plus the same fault plan yields a byte-identical run —
   fault injection is part of the deterministic simulation, not noise.
2. A fault-free :class:`FaultConfig` (``enabled`` False) is
   indistinguishable from passing no config at all: the golden runs in
   ``tests/golden_runs.json`` reproduce exactly.
"""

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.faults import FaultConfig, LinkFaultSpec
from repro.config.presets import tiny_system
from repro.harness.runner import run_workload

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "golden_runs.json").read_text()
)
SCALE = 0.005


def fingerprint(result):
    return (
        result.cycles,
        result.transactions,
        result.total_shootdowns,
        result.cpu_to_gpu_migrations,
        result.gpu_to_gpu_migrations,
        tuple(result.occupancy.pages_per_gpu),
        result.migration_retries,
        result.migration_fallbacks,
        result.pages_pinned,
        result.transfers_dropped,
        result.shootdown_timeouts,
        tuple((e.time, e.page, e.src, e.dst) for e in result.migration_events),
    )


fault_plans = st.builds(
    FaultConfig,
    migration_drop_rate=st.sampled_from([0.0, 0.2, 0.5, 0.9]),
    shootdown_ack_delay=st.sampled_from([0, 100, 400]),
    shootdown_timeout_rate=st.sampled_from([0.0, 0.5]),
    max_migration_attempts=st.sampled_from([1, 2, 3]),
    link_faults=st.sampled_from([
        (),
        (LinkFaultSpec(device=-1, bandwidth_factor=0.5),),
        (LinkFaultSpec(device=0, bandwidth_factor=0.25, extra_latency=30),),
    ]),
)


@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=12, deadline=None)
def test_same_seed_same_plan_is_byte_identical(plan, seed):
    kwargs = dict(config=tiny_system(), scale=SCALE, seed=seed, faults=plan)
    a = run_workload("MT", "griffin", **kwargs)
    b = run_workload("MT", "griffin", **kwargs)
    assert fingerprint(a) == fingerprint(b)


@given(
    key=st.sampled_from(sorted(GOLDEN)),
    attempts=st.integers(min_value=0, max_value=10),
    backoff=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=10, deadline=None)
def test_fault_free_config_reproduces_golden_runs(key, attempts, backoff):
    # Any FaultConfig whose fault axes are all zero must be a no-op,
    # whatever its recovery-policy knobs say.
    plan = FaultConfig(max_migration_attempts=attempts,
                       retry_backoff_cycles=backoff)
    assert not plan.enabled
    workload, policy = key.split("/")
    r = run_workload(workload, policy, config=tiny_system(),
                     scale=SCALE, seed=9, faults=plan)
    expected = GOLDEN[key]
    assert r.cycles == expected["cycles"]
    assert r.transactions == expected["transactions"]
    assert r.total_shootdowns == expected["total_shootdowns"]
    assert r.cpu_to_gpu_migrations == expected["cpu_to_gpu"]
    assert r.gpu_to_gpu_migrations == expected["gpu_to_gpu"]
    assert list(r.occupancy.pages_per_gpu) == expected["pages_per_gpu"]
    assert r.transfers_dropped == 0
    assert r.migration_retries == 0
