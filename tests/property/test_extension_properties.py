"""Property-based tests for the predictive and adaptive extensions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hyperparams import GriffinHyperParams
from repro.core.adaptive import AdaptiveMigrationController
from repro.core.classification import MigrationCandidate, PageClass
from repro.core.dpc import DynamicPageClassifier
from repro.core.predictive import PredictiveMigration

NUM_GPUS = 4


def make_dpc():
    return DynamicPageClassifier(GriffinHyperParams.calibrated(), NUM_GPUS)


count_rounds = st.lists(
    st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=255),
            max_size=4,
        ),
        min_size=NUM_GPUS, max_size=NUM_GPUS,
    ),
    max_size=20,
)


@given(count_rounds)
@settings(max_examples=50)
def test_predictor_candidates_are_well_formed(rounds):
    dpc = make_dpc()
    predictor = PredictiveMigration(GriffinHyperParams.calibrated(), NUM_GPUS)
    for r in rounds:
        dpc.update(r)
        predictor.observe(dpc)
    for cand in predictor.speculative_candidates(lambda p: p % NUM_GPUS):
        assert 0 <= cand.dst < NUM_GPUS
        assert cand.src == cand.page % NUM_GPUS
        assert cand.src != cand.dst


@given(count_rounds)
@settings(max_examples=50)
def test_predictor_history_is_change_compressed(rounds):
    dpc = make_dpc()
    predictor = PredictiveMigration(GriffinHyperParams.calibrated(), NUM_GPUS)
    for r in rounds:
        dpc.update(r)
        predictor.observe(dpc)
    for history in predictor._history.values():
        owners = history.owners
        # No two consecutive identical owners, bounded length.
        assert all(a != b for a, b in zip(owners, owners[1:]))
        assert len(owners) <= 6
        assert len(owners) == len(history.change_periods)


adaptive_rounds = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),          # page
        st.integers(min_value=0, max_value=NUM_GPUS - 1),  # dst
        st.integers(min_value=0, max_value=NUM_GPUS - 1),  # actual accessor
        st.integers(min_value=0, max_value=100),         # access count
    ),
    min_size=1, max_size=12,
)


@given(adaptive_rounds)
@settings(max_examples=50)
def test_adaptive_backoff_stays_in_bounds(entries):
    dpc = make_dpc()
    ctl = AdaptiveMigrationController(accumulate_periods=1, max_backoff=8)
    for page, dst, accessor, count in entries:
        plan = {0: [MigrationCandidate(page, 0, dst,
                                       PageClass.MOSTLY_DEDICATED, 1.0)]}
        ctl.note_round(plan)
        counts = [{} for _ in range(NUM_GPUS)]
        if count:
            counts[accessor][page] = count
        dpc.update(counts)
        ctl.audit(dpc)
        assert 1 <= ctl.backoff <= 8
    assert ctl.hits + ctl.misses <= len(entries)


@given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=60))
@settings(max_examples=50)
def test_adaptive_skip_pattern_matches_backoff(backoff, rounds):
    ctl = AdaptiveMigrationController()
    ctl.backoff = backoff
    decisions = [ctl.should_run_round() for _ in range(rounds)]
    for i, decision in enumerate(decisions):
        assert decision == (i % backoff == 0)
