"""Snapshot/fork byte-parity: a forked run IS the run it forked from.

Two layers, mirroring ``test_perf_parity.py``:

1. ``test_forked_cell_matches_golden`` drives every pinned golden cell
   through the staged path — ``prepare_run`` / ``start`` /
   ``run_until(migration_period - 1)`` / ``snapshot`` / pickle round-trip
   (the exact payload a sweep ships to a worker) / ``fork`` /
   ``adopt_variant`` / ``finish`` — and compares the serialized result
   byte-for-byte against ``tests/golden_parity.json``.  The golden file
   is the cold ``workers=1`` truth, so this pins forked == cold for the
   whole grid, fault plans and all policies included.

2. ``test_snapshot_restore_continues_identically`` is the property form:
   snapshot at an arbitrary pause point, fork, run both the original and
   the fork to completion — the uninterrupted run and the forked run
   must serialize identically (``events_executed`` included, so the
   event streams matched step for step).
"""

from __future__ import annotations

import json
import pickle
import sys
from pathlib import Path

import pytest

from repro.config.presets import tiny_system
from repro.harness.io import result_to_dict
from repro.harness.runner import harvest_result, prepare_run, run_workload

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from gen_golden_parity import PARITY_GRID, _CONFIGS, PARITY_FAULTS  # noqa: E402

_GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden_parity.json"
GOLDENS = json.loads(_GOLDEN_PATH.read_text())


def _fork_cell(workload, policy, config, scale, seed, faults,
               fork_cycle=None):
    """Run one cell via prefix -> snapshot -> pickled fork -> finish."""
    machine, built, kernels = prepare_run(
        workload, policy, config=config, scale=scale, seed=seed,
        faults=faults,
    )
    if fork_cycle is None:
        fork_cycle = machine.hyper.migration_period - 1
    machine.start(kernels)
    machine.run_until(fork_cycle)
    snap = machine.snapshot()
    # Round-trip through pickle: the exact bytes a parallel sweep ships
    # to a worker process once per chunk.
    snap = pickle.loads(pickle.dumps(snap))
    forked = snap.fork()
    forked.adopt_variant(forked.policy, forked.hyper)
    if forked.finish_time is None:
        forked.finish()
    return result_to_dict(harvest_result(forked, built))


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_forked_cell_matches_golden(key):
    """Forking at the migration fork point reproduces the cold golden."""
    spec = next(row for row in PARITY_GRID if row[0] == key)
    _, workload, policy, config_name, scale, seed, faulted = spec
    forked = _fork_cell(
        workload, policy, _CONFIGS[config_name](), scale, seed,
        PARITY_FAULTS if faulted else None,
    )
    golden = GOLDENS[key]
    assert forked == golden, (
        f"forked run of {key} diverged from the cold golden; "
        "snapshot/fork must be byte-exact (see docs/architecture.md)"
    )
    assert (json.dumps(forked, sort_keys=True)
            == json.dumps(golden, sort_keys=True))


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faults"])
@pytest.mark.parametrize("workload", ["MT", "SC", "BFS"])
@pytest.mark.parametrize("fork_cycle", [500, None],
                         ids=["early", "fork_point"])
def test_snapshot_restore_continues_identically(workload, faulted,
                                                fork_cycle):
    """snapshot() -> fork() -> run() == one uninterrupted run."""
    faults = PARITY_FAULTS if faulted else None
    config = tiny_system(2)
    cold = result_to_dict(run_workload(
        workload, "griffin", config=tiny_system(2), scale=0.008, seed=5,
        faults=faults,
    ))
    forked = _fork_cell(
        workload, "griffin", config, 0.008, 5, faults,
        fork_cycle=fork_cycle,
    )
    assert forked == cold


def test_snapshot_shares_trace_by_reference():
    """Payload excludes the workload trace; forks share one copy."""
    machine, _built, kernels = prepare_run(
        "MT", "griffin", config=tiny_system(2), scale=0.008, seed=5,
    )
    machine.start(kernels)
    machine.run_until(machine.hyper.migration_period - 1)
    snap = machine.snapshot()
    assert snap.shared, "expected shared trace objects"
    fork_a, fork_b = snap.fork(), snap.fork()
    trace_a = fork_a.dispatcher._kernels[0].workgroups[0].wavefronts[0]
    trace_b = fork_b.dispatcher._kernels[0].workgroups[0].wavefronts[0]
    assert trace_a is trace_b, "forks must share the immutable trace"
    # And the payload shrinks because of it: a plain pickle of the same
    # machine carries the trace by value.
    assert len(snap.payload) < len(pickle.dumps(machine))


def test_running_engine_refuses_snapshot():
    """Capture mid-callback would tear state; the engine rejects it."""
    from repro.sim.engine import Engine, SimulationError

    engine = Engine()
    failures = []

    def grab() -> None:
        try:
            pickle.dumps(engine)
        except SimulationError:
            failures.append(True)

    engine.schedule(1, grab)
    engine.run()
    assert failures == [True]
