"""End-to-end property fuzzing: random workloads through the full machine.

Hypothesis generates arbitrary small kernel structures (any mix of page
sharing, reuse, writes, and timing) and runs them under each policy; the
machine must terminate and keep its global invariants regardless of the
access pattern.  This is the strongest guard against policy-logic
deadlocks (drain vs. waiter cycles) and accounting drift.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.system.machine import Machine

# An access: page in a small range, line offset, delay, read/write.
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),   # page
        st.integers(min_value=0, max_value=63),   # line offset
        st.integers(min_value=0, max_value=50),   # delay
        st.booleans(),                            # is_write
    ),
    min_size=1, max_size=12,
)

workgroups = st.lists(accesses, min_size=1, max_size=6)
kernels_strategy = st.lists(workgroups, min_size=1, max_size=3)


def build_kernels(structure):
    kernels = []
    wg_id = 0
    for k, wgs in enumerate(structure):
        kernel = Kernel(k)
        for wf in wgs:
            trace = [
                (delay, page * 4096 + offset * 64, is_write)
                for page, offset, delay, is_write in wf
            ]
            kernel.workgroups.append(Workgroup(wg_id, k, [WavefrontTrace(trace)]))
            wg_id += 1
        kernels.append(kernel)
    return kernels


def fast_hyper():
    # Aggressive periods so migration machinery actually fires on tiny runs.
    return GriffinHyperParams.calibrated().with_overrides(
        t_ac=300, migration_period=900, min_pages_per_source=1,
        fault_batch_timeout=200,
    )


def check_invariants(machine, total_accesses, exact_issue=True):
    assert machine.finish_time is not None
    ap = machine.access_path
    if exact_issue:
        assert ap.total_issued == total_accesses
    else:
        # Pipeline flushes rewind wavefronts; rewound accesses re-issue.
        assert ap.total_issued >= total_accesses
    assert sum(ap.kind_counts.values()) == ap.total_issued
    # No access left waiting; no partial fault batch.
    assert machine.driver._waiters == {}
    assert machine.driver.batcher.pending() == 0
    # Page-table occupancy counters match actual entries.
    pt = machine.page_table
    for g in range(machine.num_gpus):
        actual = sum(1 for p in pt.known_pages() if pt.location(p) == g)
        assert pt.gpu_page_count(g) == actual
    # Shootdown accounting is self-consistent with migrations.
    assert machine.shootdowns.cpu_shootdowns <= pt.cpu_to_gpu_migrations


@given(kernels_strategy)
@settings(max_examples=40, deadline=None)
def test_baseline_machine_invariants(structure):
    kernels = build_kernels(structure)
    total = sum(k.total_accesses() for k in kernels)
    machine = Machine(tiny_system(), "baseline")
    machine.run(kernels)
    check_invariants(machine, total)


@given(kernels_strategy)
@settings(max_examples=40, deadline=None)
def test_griffin_machine_invariants(structure):
    kernels = build_kernels(structure)
    total = sum(k.total_accesses() for k in kernels)
    machine = Machine(tiny_system(), "griffin", hyper=fast_hyper())
    machine.run(kernels)
    check_invariants(machine, total)


@given(kernels_strategy)
@settings(max_examples=25, deadline=None)
def test_griffin_flush_machine_invariants(structure):
    kernels = build_kernels(structure)
    total = sum(k.total_accesses() for k in kernels)
    machine = Machine(tiny_system(), "griffin_flush", hyper=fast_hyper())
    machine.run(kernels)
    check_invariants(machine, total, exact_issue=False)


@given(kernels_strategy)
@settings(max_examples=25, deadline=None)
def test_oversubscribed_machine_invariants(structure):
    kernels = build_kernels(structure)
    total = sum(k.total_accesses() for k in kernels)
    cfg = tiny_system()
    cfg = replace(cfg, gpu=replace(cfg.gpu, capacity_pages=3))
    machine = Machine(cfg, "griffin", hyper=fast_hyper())
    machine.run(kernels)
    check_invariants(machine, total)
    assert max(machine.page_table.gpu_page_counts()) <= 3


@given(kernels_strategy)
@settings(max_examples=25, deadline=None)
def test_predictive_machine_invariants(structure):
    kernels = build_kernels(structure)
    total = sum(k.total_accesses() for k in kernels)
    machine = Machine(tiny_system(), "griffin_predictive", hyper=fast_hyper())
    machine.run(kernels)
    check_invariants(machine, total)
