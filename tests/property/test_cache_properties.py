"""Property-based tests for the cache's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import CacheConfig
from repro.mem.cache import Cache

addresses = st.integers(min_value=0, max_value=1 << 20)
ops = st.lists(st.tuples(addresses, st.booleans()), max_size=200)


def make_cache():
    return Cache("c", CacheConfig(1024, 2, 64), 4096)


@given(ops)
@settings(max_examples=60)
def test_occupancy_never_exceeds_capacity(operations):
    cache = make_cache()
    capacity = cache.config.num_sets * cache.config.ways
    for addr, is_write in operations:
        cache.access(addr, is_write)
        assert cache.occupancy() <= capacity


@given(ops)
@settings(max_examples=60)
def test_hits_plus_misses_equals_accesses(operations):
    cache = make_cache()
    for addr, is_write in operations:
        cache.access(addr, is_write)
    assert cache.hits + cache.misses == len(operations)


@given(ops)
@settings(max_examples=60)
def test_immediate_reaccess_always_hits(operations):
    cache = make_cache()
    for addr, is_write in operations:
        cache.access(addr, is_write)
        assert cache.access(addr, False)


@given(ops)
@settings(max_examples=60)
def test_flush_all_empties_exactly_occupancy(operations):
    cache = make_cache()
    for addr, is_write in operations:
        cache.access(addr, is_write)
    occ = cache.occupancy()
    assert cache.flush_all() == occ
    assert cache.occupancy() == 0


@given(ops, st.integers(min_value=0, max_value=255))
@settings(max_examples=60)
def test_page_flush_removes_all_and_only_that_page(operations, page):
    cache = make_cache()
    for addr, is_write in operations:
        cache.access(addr, is_write)
    cache.flush_pages([page])
    for addr, _ in operations:
        if addr // 4096 == page:
            assert not cache.contains(addr)


@given(ops)
@settings(max_examples=60)
def test_page_index_matches_set_contents(operations):
    cache = make_cache()
    for addr, is_write in operations:
        cache.access(addr, is_write)
    indexed = {line for lines in cache._page_lines.values() for line in lines}
    resident = {line for s in cache._sets for line in s}
    assert indexed == resident
