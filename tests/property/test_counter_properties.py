"""Property-based tests for the access counter table and report math."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.access_counter import AccessCounterTable
from repro.metrics.occupancy import imbalance_index
from repro.metrics.report import geometric_mean


@given(st.lists(st.integers(min_value=0, max_value=30), max_size=300),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=60)
def test_table_never_exceeds_capacity(pages, capacity):
    table = AccessCounterTable(capacity=capacity)
    for p in pages:
        table.record(p)
        assert len(table) <= capacity


@given(st.lists(st.integers(min_value=0, max_value=30), max_size=300))
@settings(max_examples=60)
def test_counts_never_exceed_saturation(pages):
    table = AccessCounterTable(capacity=8, max_count=15)
    for p in pages:
        table.record(p)
    assert all(1 <= c <= 15 for c in table.snapshot().values())


@given(st.lists(st.integers(min_value=0, max_value=5), max_size=100))
@settings(max_examples=60)
def test_unbounded_table_counts_exactly(pages):
    table = AccessCounterTable(capacity=100, max_count=10_000)
    for p in pages:
        table.record(p)
    snapshot = table.collect_and_reset()
    for p in set(pages):
        assert snapshot[p] == pages.count(p)


@given(st.lists(st.floats(min_value=0.01, max_value=100, allow_nan=False),
                min_size=1, max_size=20))
@settings(max_examples=60)
def test_geomean_between_min_and_max(values):
    g = geometric_mean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=8))
@settings(max_examples=60)
def test_imbalance_index_in_unit_interval(counts):
    idx = imbalance_index(counts)
    assert -1e-9 <= idx <= 1.0 + 1e-9
