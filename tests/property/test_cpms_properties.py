"""Property-based tests for CPMS batching and planning invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import MigrationCandidate, PageClass
from repro.core.cpms import FaultBatcher, MigrationPlanner
from repro.sim.engine import Engine

# (fault_id, gap_cycles_before_add)
fault_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=999),
              st.integers(min_value=0, max_value=2000)),
    max_size=60,
)


@given(fault_sequences, st.integers(min_value=1, max_value=12))
@settings(max_examples=60)
def test_batcher_neither_loses_nor_duplicates(sequence, batch_size):
    engine = Engine()
    released = []
    batcher = FaultBatcher(engine, batch_size, 500, released.extend)

    t = 0
    for fault_id, gap in sequence:
        t += gap
        engine.schedule_at(t, batcher.add, fault_id)
    engine.run()
    batcher.drain()

    assert sorted(released) == sorted(f for f, _ in sequence)


@given(fault_sequences, st.integers(min_value=2, max_value=12))
@settings(max_examples=60)
def test_batcher_batches_never_exceed_size(sequence, batch_size):
    engine = Engine()
    batches = []
    batcher = FaultBatcher(engine, batch_size, 500, batches.append)
    t = 0
    for fault_id, gap in sequence:
        t += gap
        engine.schedule_at(t, batcher.add, fault_id)
    engine.run()
    batcher.drain()
    assert all(1 <= len(b) <= batch_size for b in batches)


candidates_strategy = st.lists(
    st.builds(
        MigrationCandidate,
        page=st.integers(min_value=0, max_value=500),
        src=st.integers(min_value=0, max_value=3),
        dst=st.integers(min_value=0, max_value=3),
        page_class=st.sampled_from(list(PageClass)),
        benefit=st.floats(min_value=0.01, max_value=100, allow_nan=False),
    ),
    max_size=60,
)


def _make_planner(max_pages, max_sources, min_pages):
    hyper = GriffinHyperParams.calibrated().with_overrides(
        max_pages_per_round=max_pages,
        max_source_gpus_per_round=max_sources,
        min_pages_per_source=min_pages,
    )
    return MigrationPlanner(hyper)


@given(candidates_strategy,
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=60)
def test_plan_is_subset_respecting_caps(cands, max_pages, max_sources, min_pages):
    planner = _make_planner(max_pages, max_sources, min_pages)
    plan = planner.plan(cands)

    chosen = [c for group in plan.values() for c in group]
    # Subset of the candidates, no duplicates.
    assert all(c in cands for c in chosen)
    assert len({id(c) for c in chosen}) == len(chosen)
    # Caps respected.
    assert len(chosen) <= max_pages
    assert len(plan) <= max_sources
    # Grouping key is correct.
    for src, group in plan.items():
        assert all(c.src == src for c in group)


@given(candidates_strategy)
@settings(max_examples=60)
def test_plan_prefers_higher_benefit_when_oversubscribed(cands):
    # With every source admitted and a one-page budget, the single chosen
    # candidate must carry the globally highest benefit.
    planner = _make_planner(max_pages=1, max_sources=4, min_pages=1)
    plan = planner.plan(cands)
    if not plan:
        return
    (chosen,) = [c for group in plan.values() for c in group]
    assert chosen.benefit == max(c.benefit for c in cands)
