"""Property-based tests for fabric timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import LinkConfig
from repro.interconnect.link import CPU_PORT, InterconnectFabric

transfers = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),  # now
        st.integers(min_value=-1, max_value=3),                   # src
        st.integers(min_value=-1, max_value=3),                   # dst
        st.integers(min_value=1, max_value=8192),                 # bytes
    ),
    max_size=60,
)


@given(transfers)
@settings(max_examples=60)
def test_arrival_never_before_latency(jobs):
    fabric = InterconnectFabric(LinkConfig(bandwidth_gbps=32.0, latency=500), 4)
    for now, src, dst, size in sorted(jobs):
        arrival = fabric.transfer(now, src, dst, size)
        if src == dst:
            assert arrival == now
        else:
            assert arrival >= now + 500


@given(transfers)
@settings(max_examples=60)
def test_bytes_conserved(jobs):
    fabric = InterconnectFabric(LinkConfig(bandwidth_gbps=32.0, latency=500), 4)
    expected = 0
    for now, src, dst, size in sorted(jobs):
        fabric.transfer(now, src, dst, size)
        if src != dst:
            expected += size
    assert fabric.total_bytes == expected


@given(st.integers(min_value=1, max_value=1 << 20))
@settings(max_examples=40)
def test_faster_fabric_never_slower(size):
    slow = InterconnectFabric(LinkConfig(bandwidth_gbps=16.0, latency=500), 2)
    fast = InterconnectFabric(LinkConfig(bandwidth_gbps=128.0, latency=500), 2)
    assert fast.transfer(0, 0, 1, size) <= slow.transfer(0, 0, 1, size)


@given(transfers)
@settings(max_examples=60)
def test_round_trip_at_least_two_latencies(jobs):
    fabric = InterconnectFabric(LinkConfig(bandwidth_gbps=32.0, latency=500), 4)
    for now, src, dst, size in sorted(jobs):
        if src == dst:
            continue
        arrival = fabric.round_trip(now, src, dst, size, size)
        assert arrival >= now + 1000
