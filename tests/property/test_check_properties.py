"""Property tests: every seeded corruption is caught, wherever it lands.

The integration suite pins one drill per corruption kind at a fixed
cycle; this property samples the injection cycle across the whole run and
asserts the sanitizer still catches each kind — no blind spots between
audit points, round boundaries, and finalization.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import CheckConfig, CorruptionSpec, InvariantViolation
from repro.check.config import CORRUPTION_KINDS
from repro.config.presets import tiny_system
from repro.harness.runner import run_workload

# The MT/griffin/tiny cell finishes around cycle 72.5k; sampled injection
# cycles stay comfortably inside the run so the drill always executes.
_LAST_SAFE_CYCLE = 60_000

# ownership_device skews both the occupancy counts (ownership) and any
# TLB that still caches the flipped page (vm_coherence); whichever audit
# sees it first depends on the injection cycle.
_EXPECTED_MONITORS = {
    "ownership_count": {"ownership"},
    "ownership_device": {"ownership", "vm_coherence"},
    "tlb_stale": {"vm_coherence"},
    "past_event": {"event_queue"},
}


# Drills whose damage can be *healed* by later legitimate activity
# before an audit observes it: a stale TLB entry can be evicted, flushed,
# or validated by the page really migrating to the poisoned GPU, and a
# flipped owner is re-synced when the page's next migration updates the
# occupancy counts.  Count skew and backdated events can never heal.
_HEALABLE = {"tlb_stale", "ownership_device"}


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(sorted(CORRUPTION_KINDS)),
    at_cycle=st.integers(min_value=5_000, max_value=_LAST_SAFE_CYCLE),
)
def test_every_corruption_kind_is_detected(kind, at_cycle):
    checks = CheckConfig(
        ring_size=0,  # no evidence needed; keep the drill lean
        corruptions=(CorruptionSpec(kind, at_cycle=at_cycle),),
    )
    try:
        run_workload("MT", "griffin", config=tiny_system(2),
                     scale=0.008, seed=5, checks=checks)
    except InvariantViolation as exc:
        report = exc.report
        assert report.monitor in _EXPECTED_MONITORS[kind]
        # Detection never precedes the corruption.  The past_event drill
        # plants an event 1000 cycles in the past, so the monitor reports
        # the (backdated) event timestamp.
        floor = at_cycle - 1_000 if kind == "past_event" else at_cycle
        assert report.cycle >= floor
    else:
        # A completed run means every audit — including the end-of-run
        # finalize — found consistent state: the corruption healed.
        # Only the healable kinds are allowed to get away with that.
        assert kind in _HEALABLE, (
            f"{kind} drill at t={at_cycle} was never detected"
        )


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(at_cycle=st.integers(min_value=5_000, max_value=_LAST_SAFE_CYCLE))
def test_disabled_monitor_is_truly_off(at_cycle):
    """With its monitor off, a drill corrupts silently (zero-cost rule:
    disabled monitors install no hooks, so nothing can fire)."""
    checks = CheckConfig(
        ownership=False, vm_coherence=False, ring_size=0,
        corruptions=(CorruptionSpec("ownership_count", at_cycle=at_cycle),),
    )
    result = run_workload("MT", "griffin", config=tiny_system(2),
                          scale=0.008, seed=5, checks=checks)
    assert result.cycles > at_cycle
