"""Property-based tests for page-table occupancy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.page_table import PageTable

NUM_GPUS = 4
moves = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),            # page
        st.integers(min_value=-1, max_value=NUM_GPUS - 1),  # destination
    ),
    max_size=200,
)


@given(moves)
@settings(max_examples=80)
def test_counts_match_actual_locations(sequence):
    pt = PageTable(NUM_GPUS, 4096)
    for page, dst in sequence:
        pt.migrate(page, dst)
    for g in range(NUM_GPUS):
        actual = sum(1 for p in pt.known_pages() if pt.location(p) == g)
        assert pt.gpu_page_count(g) == actual


@given(moves)
@settings(max_examples=80)
def test_occupancies_sum_to_one_or_zero(sequence):
    pt = PageTable(NUM_GPUS, 4096)
    for page, dst in sequence:
        pt.migrate(page, dst)
    total = sum(pt.occupancy(g) for g in range(NUM_GPUS))
    assert total == 0.0 or abs(total - 1.0) < 1e-9


@given(moves)
@settings(max_examples=80)
def test_migration_counters_are_consistent(sequence):
    pt = PageTable(NUM_GPUS, 4096)
    for page, dst in sequence:
        pt.migrate(page, dst)
    # CPU->GPU plus GPU->GPU never exceeds total (GPU->CPU makes up the rest).
    assert pt.cpu_to_gpu_migrations + pt.gpu_to_gpu_migrations <= pt.total_migrations
    per_page = sum(pt.entry(p).migrations for p in pt.known_pages())
    assert per_page == pt.total_migrations


@given(moves)
@settings(max_examples=80)
def test_highest_occupancy_is_argmax(sequence):
    pt = PageTable(NUM_GPUS, 4096)
    for page, dst in sequence:
        pt.migrate(page, dst)
    counts = pt.gpu_page_counts()
    peak = max(counts)
    assert pt.highest_occupancy_gpus() == [g for g in range(NUM_GPUS) if counts[g] == peak]


@given(moves)
@settings(max_examples=80)
def test_per_page_migration_count_never_negative(sequence):
    pt = PageTable(NUM_GPUS, 4096)
    for page, dst in sequence:
        entry = pt.migrate(page, dst)
        assert entry.migrations >= 0
