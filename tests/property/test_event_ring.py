"""Property-based parity: the ring event core against its heap oracle.

The ring backend (:class:`repro.sim.ring.EventRing`) must be
observationally identical to the pure-Python :class:`EventQueue` — same
pop order, same peek times, same lengths, same cancellation semantics,
same pickle round-trip — for *arbitrary* interleavings of pushes, pops
and cancels, not just the schedules real workloads happen to produce.
Hypothesis drives both backends through identical operation sequences
and compares every observable after every step.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.event import Event, EventQueue
from repro.sim.ring import EventRing, RingEngine


def _cb_a():
    pass


def _cb_b():
    pass


def _cb_c():
    pass


_CALLBACKS = (_cb_a, _cb_b, _cb_c)

_times = st.floats(min_value=0, max_value=1e6, allow_nan=False)
_prios = st.integers(min_value=-2, max_value=2)

# One operation: push (time, priority, callback index, wants-handle),
# pop, or cancel (an index into the outstanding handles).
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times, _prios,
                  st.integers(min_value=0, max_value=2), st.booleans()),
        st.just(("pop",)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=999)),
    ),
    max_size=120,
)


def _apply(queue, ops):
    """Run ``ops`` against ``queue``; returns the observation trace."""
    trace = []
    handles = []
    serial = 0
    for op in ops:
        if op[0] == "push":
            _, time, priority, cb_index, wants_handle = op
            callback = _CALLBACKS[cb_index]
            args = (serial,)
            serial += 1
            if wants_handle:
                handles.append(
                    queue.push(Event(time, callback, args, priority))
                )
            else:
                queue.push_entry(time, priority, callback, args)
        elif op[0] == "pop":
            event = queue.pop()
            trace.append(
                None if event is None else
                (event.time, event.priority, event.seq,
                 event.callback, event.args)
            )
        else:  # cancel
            if handles:
                handles[op[1] % len(handles)].cancel()
        trace.append(("peek", queue.peek_time(), len(queue)))
    return trace, handles


def _drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append((event.time, event.priority, event.seq,
                    event.callback, event.args))


@given(_ops)
@settings(max_examples=120)
def test_ring_matches_heap_for_arbitrary_interleavings(ops):
    heap, ring = EventQueue(), EventRing()
    heap_trace, _ = _apply(heap, ops)
    ring_trace, _ = _apply(ring, ops)
    assert ring_trace == heap_trace
    assert _drain(ring) == _drain(heap)
    assert len(ring) == len(heap) == 0


@given(_ops)
@settings(max_examples=60)
def test_ring_pickle_round_trip_preserves_pop_order(ops):
    heap, ring = EventQueue(), EventRing()
    _apply(heap, ops)
    _apply(ring, ops)
    restored = pickle.loads(pickle.dumps(ring))
    assert len(restored) == len(ring)
    assert _drain(restored) == _drain(heap)


@given(st.lists(
    st.tuples(_times.filter(lambda t: t > 0), _prios, st.booleans()),
    max_size=60,
))
@settings(max_examples=60)
def test_ring_engine_executes_identical_trace(jobs):
    """Both engines run the same program and must log identical traces,
    including zero-delay children posted mid-run."""
    def run(engine):
        trace = []
        handles = []

        def fire(tag):
            trace.append((engine.now, tag))
            if tag % 3 == 0:
                engine.post(0, child, tag)

        def child(tag):
            trace.append((engine.now, -tag - 1))

        for index, (delay, priority, cancel) in enumerate(jobs):
            handle = engine.schedule(delay, fire, index, priority=priority)
            if cancel:
                handles.append(handle)
        # Cancel every other flagged handle before running.
        for handle in handles[::2]:
            handle.cancel()
        engine.run()
        return trace, engine.events_executed

    assert run(RingEngine()) == run(Engine())
