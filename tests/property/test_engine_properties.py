"""Property-based tests for engine/event-queue ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.event import Event, EventQueue
from repro.sim.resource import SlotResource, ThroughputResource

times = st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=100)


@given(times)
@settings(max_examples=60)
def test_events_pop_in_nondecreasing_time_order(ts):
    q = EventQueue()
    for t in ts:
        q.push(Event(t, lambda: None))
    popped = []
    while True:
        e = q.pop()
        if e is None:
            break
        popped.append(e.time)
    assert popped == sorted(popped)


@given(times)
@settings(max_examples=60)
def test_engine_clock_is_monotone(ts):
    engine = Engine()
    observed = []
    for t in ts:
        engine.schedule(t, lambda: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e5, allow_nan=False),
    st.integers(min_value=1, max_value=10_000),
), max_size=80))
@settings(max_examples=60)
def test_throughput_resource_never_overlaps_jobs(jobs):
    pipe = ThroughputResource("p", 32.0)
    last_finish = 0.0
    for now, size in sorted(jobs):
        finish = pipe.acquire(now, size)
        start = finish - size / 32.0
        assert start >= last_finish - 1e-6
        assert start >= now - 1e-6
        last_finish = finish


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e5, allow_nan=False),
    st.integers(min_value=1, max_value=1000),
), max_size=80), st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_slot_resource_bounded_concurrency(jobs, slots):
    res = SlotResource("s", slots)
    intervals = []
    for now, duration in sorted(jobs):
        finish = res.acquire(now, duration)
        intervals.append((finish - duration, finish))
    # At any job start, at most `slots` jobs overlap (1e-3 tolerance for
    # float round-trip of start = finish - duration; durations are >= 1).
    eps = 1e-3
    for start, _ in intervals:
        probe = start + eps
        overlapping = sum(1 for s, f in intervals if s <= probe < f)
        assert overlapping <= slots
