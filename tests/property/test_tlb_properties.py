"""Property-based tests for TLB invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import TLBConfig
from repro.vm.tlb import TLB

pages = st.integers(min_value=0, max_value=500)


@given(st.lists(pages, max_size=200))
@settings(max_examples=60)
def test_occupancy_bounded_by_capacity(inserts):
    tlb = TLB("t", TLBConfig(4, 4))
    for p in inserts:
        tlb.insert(p, 0)
    assert tlb.occupancy() <= tlb.config.capacity


@given(st.lists(pages, max_size=100))
@settings(max_examples=60)
def test_insert_then_lookup_hits(inserts):
    tlb = TLB("t", TLBConfig(4, 4))
    for p in inserts:
        tlb.insert(p, 0)
        assert tlb.lookup(p)


@given(st.lists(pages, max_size=100), st.sets(pages, max_size=20))
@settings(max_examples=60)
def test_invalidated_pages_never_hit(inserts, to_invalidate):
    tlb = TLB("t", TLBConfig(4, 4))
    for p in inserts:
        tlb.insert(p, 0)
    tlb.invalidate_pages(to_invalidate)
    hits_before = tlb.hits
    for p in to_invalidate:
        assert not tlb.lookup(p)
    assert tlb.hits == hits_before


@given(st.lists(pages, max_size=100))
@settings(max_examples=60)
def test_flush_all_then_nothing_hits(inserts):
    tlb = TLB("t", TLBConfig(4, 4))
    for p in inserts:
        tlb.insert(p, 0)
    tlb.flush_all()
    for p in set(inserts):
        assert not tlb.lookup(p)
