"""Property-based tests for DPC filter and classifier invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import PageClass
from repro.core.dpc import DynamicPageClassifier

NUM_GPUS = 4

count_rounds = st.lists(
    st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=8),       # page
            st.integers(min_value=0, max_value=255),     # raw count
            max_size=5,
        ),
        min_size=NUM_GPUS,
        max_size=NUM_GPUS,
    ),
    max_size=25,
)


def make_dpc():
    return DynamicPageClassifier(GriffinHyperParams.calibrated(), NUM_GPUS)


@given(count_rounds)
@settings(max_examples=60)
def test_filtered_counts_are_nonnegative_and_bounded(rounds):
    dpc = make_dpc()
    for r in rounds:
        dpc.update(r)
    for page in range(9):
        for c in dpc.filtered_counts(page):
            assert 0.0 <= c <= 255.0


@given(count_rounds)
@settings(max_examples=60)
def test_filtered_never_exceeds_running_max_raw(rounds):
    dpc = make_dpc()
    max_raw = {}
    for r in rounds:
        dpc.update(r)
        for g in range(NUM_GPUS):
            for page, raw in r[g].items():
                key = (page, g)
                max_raw[key] = max(max_raw.get(key, 0), raw)
    for (page, g), peak in max_raw.items():
        assert dpc.filtered_counts(page)[g] <= peak + 1e-9


@given(count_rounds, st.integers(min_value=0, max_value=8),
       st.integers(min_value=-1, max_value=NUM_GPUS - 1))
@settings(max_examples=60)
def test_classification_is_total(rounds, page, location):
    dpc = make_dpc()
    for r in rounds:
        dpc.update(r)
    assert dpc.classify(page, location) in PageClass


@given(count_rounds)
@settings(max_examples=60)
def test_candidates_are_gpu_to_gpu_with_positive_benefit(rounds):
    dpc = make_dpc()
    for r in rounds:
        dpc.update(r)
    candidates = dpc.select_candidates(lambda p: p % NUM_GPUS)
    for cand in candidates:
        assert 0 <= cand.src < NUM_GPUS
        assert 0 <= cand.dst < NUM_GPUS
        assert cand.src != cand.dst
        assert cand.benefit > 0


@given(count_rounds)
@settings(max_examples=60)
def test_candidates_sorted_descending(rounds):
    dpc = make_dpc()
    for r in rounds:
        dpc.update(r)
    benefits = [c.benefit for c in dpc.select_candidates(lambda p: p % NUM_GPUS)]
    assert benefits == sorted(benefits, reverse=True)
