"""Shared fixtures for the Griffin reproduction test suite."""

from __future__ import annotations

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system, tiny_system
from repro.harness.runner import run_workload
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def tiny_config():
    return tiny_system()


@pytest.fixture
def small_config():
    return small_system()


@pytest.fixture
def hyper() -> GriffinHyperParams:
    return GriffinHyperParams()


@pytest.fixture
def calibrated() -> GriffinHyperParams:
    return GriffinHyperParams.calibrated()


@pytest.fixture(scope="session")
def sc_baseline_tiny():
    """One cached baseline run of SC on the tiny system (read-only)."""
    return run_workload("SC", "baseline", config=tiny_system(), scale=0.008, seed=5)


@pytest.fixture(scope="session")
def sc_griffin_tiny():
    """One cached Griffin run of SC on the tiny system (read-only)."""
    return run_workload("SC", "griffin", config=tiny_system(), scale=0.008, seed=5)
