"""Corner cases of the driver's fault handling and migration rounds."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.mem.access import AccessKind
from repro.system.machine import Machine


def kernel_of(accesses_by_wg, kernel_id=0):
    """accesses_by_wg: list of access lists, one per workgroup."""
    wgs = [
        Workgroup(kernel_id * 100 + i, kernel_id, [WavefrontTrace(acc)])
        for i, acc in enumerate(accesses_by_wg)
    ]
    return Kernel(kernel_id, wgs)


def test_partial_fault_batch_released_by_timeout():
    # Griffin batches 8 faults; a single fault must still be serviced.
    machine = Machine(tiny_system(), "griffin_no_dftm")
    machine.run([kernel_of([[(0, 0x100000, False)]])])
    assert machine.page_table.location(0x100000 // 4096) == 0
    assert machine.driver.batcher.batches_flushed == 1


def test_fcfs_services_each_fault_with_its_own_flush():
    machine = Machine(tiny_system(), "baseline")
    # Two WGs on the two CUs of GPU0 fault two different pages.
    machine.run([kernel_of([[(0, 0x100000, False)], [(0, 0x200000, False)],
                            [(0, 0x900000, False)], [(0, 0xA00000, False)]])])
    assert machine.shootdowns.cpu_shootdowns == 4


def test_waiters_state_clean_after_run():
    machine = Machine(tiny_system(), "griffin")
    accesses = [[(0, 0x100000 + 64 * i, False), (20, 0x100000, False)]
                for i in range(4)]
    machine.run([kernel_of(accesses)])
    assert machine.driver._waiters == {}
    assert machine.driver.batcher.pending() == 0


def test_round_active_guard_prevents_overlapping_rounds():
    hyper = GriffinHyperParams.calibrated().with_overrides(
        t_ac=200, migration_period=400, min_pages_per_source=1
    )
    # griffin_no_dftm so GPU0's first touch owns the page; GPU1's
    # hammering then makes it a migration candidate every phase.
    machine = Machine(tiny_system(), "griffin_no_dftm", hyper=hyper)
    k0 = kernel_of([[(0, 0x100000, False)], [(0, 0x900000, False)]], 0)
    hammer = [(30, 0x100000 + 64 * (i % 16), False) for i in range(150)]
    k1 = kernel_of([[(0, 0x900040, False)], hammer], 1)
    machine.run([k0, k1])
    assert machine.driver.stat("migration_rounds") >= 1
    assert machine.page_table.gpu_to_gpu_migrations >= 1


def test_cpu_fault_from_two_gpus_first_wins_second_goes_remote():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    # WG0 -> GPU0 and WG1 -> GPU1 both touch the same page in kernel 0.
    machine.run([kernel_of([[(0, addr, False)], [(0, addr + 64, False)]])])
    page = addr // 4096
    owner = machine.page_table.location(page)
    assert owner in (0, 1)
    assert machine.page_table.cpu_to_gpu_migrations == 1
    kinds = machine.access_path.kind_counts
    assert kinds[AccessKind.FAULT_MIGRATE] >= 1
    # The loser either waited on the same migration or went remote.
    assert kinds[AccessKind.REMOTE_DCA] + kinds[AccessKind.FAULT_MIGRATE] == 2


def test_dftm_only_policy_never_batches():
    machine = Machine(tiny_system(), "dftm_only")
    assert machine.driver.batcher.batch_size == 1
    assert machine.driver.dftm.enabled


def test_second_kernel_reuses_translations():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    k0 = kernel_of([[(0, addr, False)]], 0)
    k1 = kernel_of([[(0, addr + 128, False)]], 1)
    machine.run([k0, k1])
    # Same CU, same page: the second kernel's access hits the TLB.
    assert machine.access_path.iommu_trips == 1


def test_writes_reach_remote_pages():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    k0 = kernel_of([[(0, addr, True)], [(0, 0x900000, False)]], 0)
    k1 = kernel_of([[(0, 0x900040, False)], [(0, addr + 64, True)]], 1)
    machine.run([k0, k1])
    assert machine.access_path.kind_counts[AccessKind.REMOTE_DCA] >= 1
