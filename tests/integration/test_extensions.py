"""Integration tests for the paper's future-work extensions."""

from dataclasses import replace

import pytest

from repro.config.presets import tiny_system
from repro.harness.runner import run_workload
from repro.mem.access import AccessKind
from repro.workloads.simple_convolution import SimpleConvolutionWorkload


class TestPredictivePolicy:
    def test_predictive_policy_runs(self):
        r = run_workload("SC", "griffin_predictive", config=tiny_system(),
                         scale=0.006, seed=5)
        assert r.policy == "griffin_predictive"
        assert r.cycles > 0

    def test_predictive_not_worse_on_regular_rotation(self):
        w = lambda: SimpleConvolutionWorkload(
            num_passes=15, rotate_every=3, scale=0.006, seed=5
        )
        reactive = run_workload(w(), "griffin", config=tiny_system())
        predictive = run_workload(w(), "griffin_predictive", config=tiny_system())
        assert predictive.cycles <= reactive.cycles * 1.05


class TestCarveIntegration:
    def test_remote_cache_hits_count_as_local(self):
        cfg = tiny_system()
        carve = replace(cfg, gpu=cfg.gpu.with_remote_cache(64))
        plain_r = run_workload("KM", "baseline", config=cfg, scale=0.006, seed=5)
        carve_r = run_workload("KM", "baseline", config=carve, scale=0.006, seed=5)
        assert carve_r.kind_counts[AccessKind.REMOTE_CACHE] > 0
        assert carve_r.local_fraction > plain_r.local_fraction

    def test_remote_cache_never_slows_the_run(self):
        cfg = tiny_system()
        carve = replace(cfg, gpu=cfg.gpu.with_remote_cache(64))
        plain_r = run_workload("FLW", "griffin", config=cfg, scale=0.006, seed=5)
        carve_r = run_workload("FLW", "griffin", config=carve, scale=0.006, seed=5)
        assert carve_r.cycles <= plain_r.cycles * 1.02

    def test_transaction_count_unchanged_by_carve(self):
        cfg = tiny_system()
        carve = replace(cfg, gpu=cfg.gpu.with_remote_cache(64))
        a = run_workload("KM", "baseline", config=cfg, scale=0.006, seed=5)
        b = run_workload("KM", "baseline", config=carve, scale=0.006, seed=5)
        assert a.transactions == b.transactions


class TestPageSizes:
    @pytest.mark.parametrize("page_size", [4096, 8192, 16384])
    def test_runs_at_multiple_page_sizes(self, page_size):
        cfg = tiny_system().with_overrides(page_size=page_size)
        r = run_workload("ST", "griffin", config=cfg, scale=0.006, seed=5)
        assert r.cycles > 0

    def test_larger_pages_mean_fewer_pages(self):
        small = tiny_system()
        large = tiny_system().with_overrides(page_size=16384)
        a = run_workload("ST", "baseline", config=small, scale=0.006, seed=5)
        b = run_workload("ST", "baseline", config=large, scale=0.006, seed=5)
        pages_a = a.occupancy.total_gpu_pages + a.occupancy.cpu_pages
        pages_b = b.occupancy.total_gpu_pages + b.occupancy.cpu_pages
        assert pages_b < pages_a

    def test_mismatched_workload_page_size_rejected(self):
        from repro.workloads.registry import get_workload

        cfg = tiny_system().with_overrides(page_size=16384)
        workload = get_workload("ST", scale=0.006, seed=5, page_size=4096)
        with pytest.raises(ValueError, match="page size"):
            run_workload(workload, "baseline", config=cfg)
