"""Sweep execution strategies: fork/cold, serial/parallel, cache/resume.

The contract under test: a sweep's results are a pure function of its
grid — identical bytes in identical key order no matter the execution
strategy (``fork`` on or off, any ``workers``, any ``chunk_size``,
resumed from cache or fresh).
"""

from __future__ import annotations

import json

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.harness.io import result_to_dict
from repro.harness.sweep import (
    Sweep,
    cell_fingerprint,
    group_fingerprint,
)
from repro.workloads.registry import get_workload

_BASE = GriffinHyperParams.calibrated()


def _knob_sweep() -> Sweep:
    return Sweep(
        workloads=["MT"],
        policies=["griffin", "griffin_flush"],
        configs={"tiny": tiny_system(2)},
        hypers={
            "default": _BASE,
            "eager": _BASE.with_overrides(
                min_pages_per_source=1, lambda_d=1.5
            ),
        },
    )


def _dump(result) -> list:
    """(key, serialized result) pairs in iteration order."""
    return [
        (str(key), json.dumps(result_to_dict(run), sort_keys=True))
        for key, run in result.points.items()
    ]


class TestExecutionParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return _knob_sweep().run(scale=0.008, seed=5)

    def test_serial_fork_matches_cold(self, serial):
        cold = _knob_sweep().run(scale=0.008, seed=5, fork=False)
        assert not serial.failures and not cold.failures
        assert _dump(serial) == _dump(cold)
        assert serial.forked_cells == 4 and serial.cold_cells == 0
        assert cold.forked_cells == 0 and cold.cold_cells == 4

    def test_parallel_matches_serial(self, serial):
        """workers=4 with a non-default chunk size: same bytes, same order."""
        parallel = _knob_sweep().run(
            scale=0.008, seed=5, workers=4, chunk_size=3
        )
        assert not parallel.failures
        assert _dump(parallel) == _dump(serial)

    def test_group_planning(self, serial):
        # griffin/griffin_flush x default/eager differ only in late
        # fields -> one shared prefix for all four cells.
        assert serial.fork_groups == 1
        assert serial.prefix_events > 0


class TestBlastRadius:
    def test_unpicklable_cell_does_not_kill_its_chunk(self):
        """A cell whose inputs can't reach a worker falls back in-parent.

        Both cells of the chunk still succeed: the parent retries them
        serially, where no pickling is involved.  (Previously the whole
        chunk was blamed and every cell in it became a FailedRun.)
        """
        workload = get_workload("MT", scale=0.008, seed=5,
                                page_size=tiny_system(2).page_size)
        workload.poison = lambda: None  # closures cannot pickle
        sweep = Sweep(
            workloads=[workload],
            policies=["baseline", "griffin"],
            configs={"tiny": tiny_system(2)},
        )
        result = sweep.run(scale=0.008, seed=5, workers=2, chunk_size=2)
        assert not result.failures
        assert len(result.points) == 2
        assert {k.policy for k in result.points} == {"baseline", "griffin"}

    def test_bad_cell_fails_alone_in_a_chunk(self):
        sweep = Sweep(
            workloads=["MT"],
            policies=["griffin", "no_such_policy"],
            configs={"tiny": tiny_system(2)},
        )
        result = sweep.run(scale=0.008, seed=5, workers=2, chunk_size=2)
        assert len(result.points) == 1
        assert len(result.failures) == 1
        (failure,) = result.failures.values()
        assert failure.error_type == "ValueError"


class TestCacheResume:
    def test_resume_reruns_only_incomplete_cells(self, tmp_path):
        """A killed-then-resumed sweep serves finished cells from disk."""
        # "Interrupted" sweep: only the griffin half of the grid ran.
        partial = Sweep(
            workloads=["MT"], policies=["griffin"],
            configs={"tiny": tiny_system(2)},
            hypers={"default": _BASE,
                    "eager": _BASE.with_overrides(min_pages_per_source=1)},
        )
        first = partial.run(scale=0.008, seed=5, cache_dir=tmp_path)
        assert first.cache_hits == 0 and first.cache_misses == 2

        full = Sweep(
            workloads=["MT"], policies=["griffin", "griffin_flush"],
            configs={"tiny": tiny_system(2)},
            hypers={"default": _BASE,
                    "eager": _BASE.with_overrides(min_pages_per_source=1)},
        )
        resumed = full.run(scale=0.008, seed=5, cache_dir=tmp_path,
                           resume=True)
        assert resumed.cache_hits == 2  # the cells the partial sweep ran
        assert resumed.cache_misses == 2  # only griffin_flush cells ran
        assert len(resumed.points) == 4

        fresh = full.run(scale=0.008, seed=5)
        assert _dump(resumed) == _dump(fresh)

    def test_cache_dir_without_resume_never_reads(self, tmp_path):
        sweep = Sweep(workloads=["MT"], policies=["griffin"],
                      configs={"tiny": tiny_system(2)})
        sweep.run(scale=0.008, seed=5, cache_dir=tmp_path)
        again = sweep.run(scale=0.008, seed=5, cache_dir=tmp_path)
        assert again.cache_hits == 0 and again.cache_misses == 1

    def test_failures_are_never_cached(self, tmp_path):
        sweep = Sweep(workloads=["MT"], policies=["griffin"],
                      configs={"tiny": tiny_system(2)})
        starved = sweep.run(scale=0.008, seed=5, cache_dir=tmp_path,
                            max_events_per_run=10)
        assert len(starved.failures) == 1
        assert not list((tmp_path / "results").glob("*.json"))


class TestFingerprints:
    def _args(self, hyper=_BASE, policy="griffin", seed=5, checks=None):
        return ("MT", policy, tiny_system(2), hyper, 0.008, seed,
                None, None, 1_000_000, checks, None)

    def test_cell_fingerprint_sensitivity(self):
        base = cell_fingerprint(self._args())
        assert base is not None
        assert cell_fingerprint(self._args()) == base
        assert cell_fingerprint(self._args(seed=6)) != base
        assert cell_fingerprint(self._args(), code_fp="other") != base

    def test_group_fingerprint_masks_late_fields_only(self):
        base = group_fingerprint(self._args())
        late = group_fingerprint(
            self._args(hyper=_BASE.with_overrides(lambda_d=9.9))
        )
        assert late == base  # lambda_d is a late knob -> same prefix
        assert group_fingerprint(self._args(policy="griffin_flush")) == base
        early = group_fingerprint(
            self._args(hyper=_BASE.with_overrides(t_ac=999))
        )
        assert early != base  # t_ac feeds warm-up -> different prefix

    def test_ungroupable_cells(self):
        workload = get_workload("MT", scale=0.008, seed=5,
                                page_size=tiny_system(2).page_size)
        object_cell = (workload,) + self._args()[1:]
        assert group_fingerprint(object_cell) is None
        assert cell_fingerprint(object_cell) is None
        assert group_fingerprint(self._args(policy="nope")) is None
        predictive = self._args(policy="griffin_predictive")
        assert group_fingerprint(predictive) is None
        assert cell_fingerprint(predictive) is not None
