"""Integration tests for trace-file save/replay."""

import pytest

from repro.config.presets import tiny_system
from repro.harness.runner import run_workload
from repro.workloads.registry import get_workload
from repro.workloads.tracefile import TraceFileWorkload, load_trace, save_trace


@pytest.fixture
def trace_path(tmp_path):
    workload = get_workload("ST", scale=0.005, seed=5)
    kernels = workload.build_kernels(2)
    return save_trace(kernels, tmp_path / "st.trace.json", name="ST-recorded")


def test_round_trip_preserves_accesses(trace_path):
    original = get_workload("ST", scale=0.005, seed=5).build_kernels(2)
    loaded, name, page_size = load_trace(trace_path)
    assert name == "ST-recorded"
    assert page_size == 4096
    flat = lambda ks: [
        list(wf.accesses) for k in ks for wg in k.workgroups for wf in wg.wavefronts
    ]
    assert flat(loaded) == flat(original)


def test_replay_matches_generated_run(trace_path):
    generated = run_workload(
        get_workload("ST", scale=0.005, seed=5), "griffin", config=tiny_system()
    )
    replayed = run_workload(
        TraceFileWorkload(trace_path), "griffin", config=tiny_system()
    )
    assert replayed.cycles == generated.cycles
    assert replayed.total_shootdowns == generated.total_shootdowns
    assert replayed.kind_counts == generated.kind_counts


def test_trace_workload_spec_is_derived(trace_path):
    workload = TraceFileWorkload(trace_path)
    assert workload.spec.suite == "trace-file"
    assert workload.spec.pattern == "Recorded"
    assert workload.spec.memory_mb >= 1


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError, match="griffin-trace"):
        load_trace(path)


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text('{"format": "griffin-trace", "version": 99}')
    with pytest.raises(ValueError, match="version"):
        load_trace(path)


def test_custom_trace_runs_end_to_end(tmp_path):
    # Hand-author a minimal two-GPU trace and run it.
    from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup

    kernels = [Kernel(0, [
        Workgroup(0, 0, [WavefrontTrace([(0, 0x100000, False), (50, 0x100040, True)])]),
        Workgroup(1, 0, [WavefrontTrace([(0, 0x200000, False)])]),
    ])]
    path = save_trace(kernels, tmp_path / "mini.json", name="mini")
    result = run_workload(TraceFileWorkload(path), "baseline", config=tiny_system())
    assert result.transactions == 3
    assert result.cycles > 0
