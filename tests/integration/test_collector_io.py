"""Integration tests for the stats collector and result serialization."""

import json

import pytest

from repro.config.presets import tiny_system
from repro.harness.io import load_result, result_from_dict, result_to_dict, save_result
from repro.harness.runner import run_workload
from repro.metrics.collector import render_stats


@pytest.fixture(scope="module")
def detailed_run():
    return run_workload(
        "KM", "griffin", config=tiny_system(), scale=0.006, seed=5,
        collect_detail=True,
    )


class TestCollector:
    def test_detail_attached_when_requested(self, detailed_run):
        assert detailed_run.detail is not None

    def test_detail_off_by_default(self):
        r = run_workload("ST", "baseline", config=tiny_system(), scale=0.004, seed=5)
        assert r.detail is None

    def test_per_gpu_sections_present(self, detailed_run):
        gpus = detailed_run.detail["gpus"]
        assert set(gpus) == {"gpu0", "gpu1"}
        for section in gpus.values():
            assert 0.0 <= section["l1_vector"]["hit_rate"] <= 1.0
            assert 0.0 <= section["l2_tlb"]["hit_rate"] <= 1.0
            assert section["dram"]["accesses"] >= 0

    def test_resident_pages_match_occupancy(self, detailed_run):
        gpus = detailed_run.detail["gpus"]
        resident = [gpus[f"gpu{g}"]["resident_pages"] for g in range(2)]
        assert tuple(resident) == detailed_run.occupancy.pages_per_gpu

    def test_driver_section_consistent(self, detailed_run):
        driver = detailed_run.detail["driver"]
        assert driver["dftm_denials"] == detailed_run.dftm_denials
        assert driver["fault_pages_migrated"] >= detailed_run.cpu_to_gpu_migrations

    def test_access_kinds_match_result(self, detailed_run):
        kinds = detailed_run.detail["access_kinds"]
        assert sum(kinds.values()) == detailed_run.transactions

    def test_shootdown_section(self, detailed_run):
        s = detailed_run.detail["shootdowns"]
        assert s["cpu"] == detailed_run.cpu_shootdowns
        assert s["gpu"] == detailed_run.gpu_shootdowns

    def test_detail_is_json_serializable(self, detailed_run):
        text = json.dumps(detailed_run.detail)
        assert "gpu0" in text

    def test_render_stats_nested_text(self, detailed_run):
        text = render_stats(detailed_run.detail)
        assert "gpus:" in text
        assert "hit_rate" in text


class TestResultIO:
    def test_round_trip_dict(self, detailed_run):
        rebuilt = result_from_dict(result_to_dict(detailed_run))
        assert rebuilt.cycles == detailed_run.cycles
        assert rebuilt.kind_counts == detailed_run.kind_counts
        assert rebuilt.occupancy.pages_per_gpu == detailed_run.occupancy.pages_per_gpu
        assert len(rebuilt.migration_events) == len(detailed_run.migration_events)

    def test_save_and_load_file(self, detailed_run, tmp_path):
        path = save_result(detailed_run, tmp_path / "run.json")
        loaded = load_result(path)
        assert loaded.workload == "KM"
        assert loaded.policy == "griffin"
        assert loaded.total_shootdowns == detailed_run.total_shootdowns

    def test_unknown_schema_rejected(self, detailed_run):
        data = result_to_dict(detailed_run)
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(data)


class TestCliDetail:
    def test_run_with_detail_and_save(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "mt.json"
        code = main(["run", "ST", "--policy", "baseline", "--detail",
                     "--save", str(out_file),
                     "--scale", "0.004", "--gpus", "2", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gpus:" in out
        assert out_file.exists()
        loaded = load_result(out_file)
        assert loaded.workload == "ST"
