"""Batched multi-run execution: parity, error isolation, sweep batching.

The contract under test: a batch of N runs produces byte-identical
results to the same N runs executed serially — per replica, per sweep
cell, on either engine backend — and one failing member never takes
down its siblings.
"""

from __future__ import annotations

import json

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.harness.batch import BatchRunner, run_replicas
from repro.harness.io import result_to_dict
from repro.harness.runner import prepare_run, run_workload
from repro.harness.sweep import Sweep
from repro.sim.engine import SimulationStall

_SEEDS = (5, 6, 7, 8)
_SCALE = 0.008


def _serial_results(config=None):
    return [
        result_to_dict(run_workload(
            "MT", "griffin", config=config, scale=_SCALE, seed=seed
        ))
        for seed in _SEEDS
    ]


def _dump(results):
    return [json.dumps(r, sort_keys=True) for r in results]


class TestReplicaParity:
    def test_batched_replicas_match_serial_runs(self):
        batched = run_replicas(
            "MT", policy="griffin", scale=_SCALE, seeds=_SEEDS
        )
        assert not any(isinstance(r, BaseException) for r in batched)
        assert _dump([result_to_dict(r) for r in batched]) == _dump(
            _serial_results()
        )

    def test_batched_replicas_match_on_ring_backend(self):
        config = tiny_system(2).with_engine_backend("ring")
        batched = run_replicas(
            "MT", policy="griffin", config=config,
            scale=_SCALE, seeds=_SEEDS,
        )
        assert not any(isinstance(r, BaseException) for r in batched)
        # Ring-batched must match heap-serial: backend and batching are
        # both invisible to results.
        assert _dump([result_to_dict(r) for r in batched]) == _dump(
            _serial_results(tiny_system(2))
        )

    def test_tiny_quantum_does_not_change_results(self):
        """A pathologically small slice width changes interleaving only."""
        batched = run_replicas(
            "MT", policy="griffin", scale=_SCALE, seeds=_SEEDS[:2],
            quantum=1.0,
        )
        assert _dump([result_to_dict(r) for r in batched]) == _dump(
            _serial_results()[:2]
        )


class TestErrorIsolation:
    def test_exhausted_member_mirrors_serial_error_and_spares_siblings(self):
        budget = 500
        out = run_replicas(
            "MT", policy="griffin", scale=_SCALE,
            seeds=(_SEEDS[0], _SEEDS[1]), max_events=budget,
        )
        # Both replicas blow the same tiny budget; each failure mirrors
        # the serial message, quoting the full budget.
        for item, seed in zip(out, _SEEDS[:2]):
            assert isinstance(item, SimulationStall)
            assert f"({budget} events)" in str(item)
            with pytest.raises(SimulationStall) as exc:
                run_workload(
                    "MT", "griffin", scale=_SCALE, seed=seed,
                    max_events=budget,
                )
            assert str(item).splitlines()[0] == str(exc.value).splitlines()[0]

    def test_failed_member_does_not_abort_siblings(self):
        runner = BatchRunner()
        members = []
        for seed, budget in ((_SEEDS[0], 500), (_SEEDS[1], None)):
            machine, workload, kernels = prepare_run(
                "MT", policy="griffin", scale=_SCALE, seed=seed
            )
            machine.start(kernels)
            members.append(runner.add(machine, workload, max_events=budget))
        runner.drive()
        assert isinstance(members[0].error, SimulationStall)
        assert members[1].error is None and members[1].done

    def test_empty_batch_is_a_noop(self):
        BatchRunner().drive()


class TestSweepBatching:
    def _sweep(self):
        base = GriffinHyperParams.calibrated()
        return Sweep(
            workloads=["MT"],
            policies=["griffin", "griffin_flush"],
            configs={"tiny": tiny_system(2)},
            hypers={
                "default": base,
                "eager": base.with_overrides(
                    min_pages_per_source=1, lambda_d=1.5
                ),
            },
        )

    def _points(self, result):
        return [
            (str(key), json.dumps(result_to_dict(run), sort_keys=True))
            for key, run in result.points.items()
        ]

    def test_batched_sweep_matches_serial(self):
        serial = self._sweep().run(scale=_SCALE, seed=5)
        batched = self._sweep().run(scale=_SCALE, seed=5, batch=True)
        assert not serial.failures and not batched.failures
        assert self._points(batched) == self._points(serial)
        assert batched.forked_cells == serial.forked_cells

    def test_batched_cold_sweep_matches_serial(self):
        serial = self._sweep().run(scale=_SCALE, seed=5, fork=False)
        batched = self._sweep().run(
            scale=_SCALE, seed=5, fork=False, batch=True
        )
        assert not batched.failures
        assert self._points(batched) == self._points(serial)

    def test_batch_rejects_parallel_workers(self):
        with pytest.raises(ValueError):
            self._sweep().run(scale=_SCALE, seed=5, workers=2, batch=True)
