"""Integration tests for the sweep and validation harness modules."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.harness.sweep import Sweep, SweepKey
from repro.harness.validate import CheckResult, validate_reproduction


@pytest.fixture(scope="module")
def sweep_result():
    sweep = Sweep(
        workloads=["ST", "MT"],
        policies=["baseline", "griffin"],
        configs={"default": tiny_system()},
    )
    return sweep, sweep.run(scale=0.006, seed=5)


class TestSweep:
    def test_size(self, sweep_result):
        sweep, _ = sweep_result
        assert sweep.size() == 4

    def test_all_points_present(self, sweep_result):
        _, result = sweep_result
        assert len(result.points) == 4
        run = result.get("ST", "baseline")
        assert run.workload == "ST" and run.policy == "baseline"

    def test_metric_extraction(self, sweep_result):
        _, result = sweep_result
        cycles = dict(result.metric("cycles"))
        assert len(cycles) == 4
        assert all(v > 0 for v in cycles.values())

    def test_unknown_metric_rejected(self, sweep_result):
        _, result = sweep_result
        with pytest.raises(KeyError, match="cycles"):
            result.metric("bogus")

    def test_table_renders(self, sweep_result):
        _, result = sweep_result
        out = result.table("shootdowns")
        assert "shootdowns" in out and "MT" in out

    def test_speedups(self, sweep_result):
        _, result = sweep_result
        speedups = result.speedups("baseline", "griffin")
        assert set(speedups) == {"ST", "MT"}
        assert speedups["MT"] > 1.0

    def test_speedup_table_has_geomean(self, sweep_result):
        _, result = sweep_result
        assert "geomean" in result.speedup_table("baseline", "griffin")

    def test_progress_callback(self):
        calls = []
        sweep = Sweep(workloads=["ST"], policies=["baseline"],
                      configs={"default": tiny_system()})
        sweep.run(scale=0.004, seed=5,
                  progress=lambda done, total, key: calls.append((done, total)))
        assert calls == [(1, 1)]

    def test_hyper_axis(self):
        sweep = Sweep(
            workloads=["ST"],
            policies=["griffin"],
            configs={"default": tiny_system()},
            hypers={
                "fast": GriffinHyperParams.calibrated().with_overrides(alpha=0.4),
                "slow": GriffinHyperParams.calibrated().with_overrides(alpha=0.05),
            },
        )
        result = sweep.run(scale=0.004, seed=5)
        assert SweepKey("ST", "griffin", "default", "fast") in result.points
        assert SweepKey("ST", "griffin", "default", "slow") in result.points


class TestValidation:
    def test_subset_validation_runs(self):
        report = validate_reproduction(
            config=tiny_system(), scale=0.006, seed=5, workloads=["MT", "ST"]
        )
        assert report.checks
        assert 0 <= report.num_passed <= len(report.checks)

    def test_check_render_shows_verdict(self):
        check = CheckResult("claim", True, "x", "y")
        out = check.render()
        assert "PASS" in out and "claim" in out
        bad = CheckResult("claim", False, "x", "y")
        assert "FAIL" in bad.render()

    def test_report_render_counts(self):
        report = validate_reproduction(
            config=tiny_system(), scale=0.006, seed=5, workloads=["MT"]
        )
        text = report.render()
        assert "checks passed" in text


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        sweep = Sweep(workloads=["ST"], policies=["baseline", "griffin"],
                      configs={"default": tiny_system()})
        serial = sweep.run(scale=0.005, seed=5, workers=1)
        parallel = sweep.run(scale=0.005, seed=5, workers=2)
        for key, run in serial.points.items():
            other = parallel.points[key]
            assert other.cycles == run.cycles
            assert other.total_shootdowns == run.total_shootdowns


class TestCliSweep:
    def test_sweep_command(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--workloads", "ST", "--policies",
                     "baseline,griffin", "--scale", "0.005",
                     "--gpus", "2", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep: cycles" in out
        assert "geomean" in out
