"""Integration tests for the griffin-sim CLI."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "BFS" in out and "griffin" in out and "fig12" in out


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "N_PTW" in out
    assert "Multi-GPU System Configuration" in out
    assert "Scatter-Gather" in out
    assert "2200 B" in out


def test_run_command(capsys):
    code = main(["run", "st", "--policy", "baseline",
                 "--scale", "0.005", "--gpus", "2", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ST under baseline" in out
    assert "Cycles" in out


def test_run_nvlink_fabric(capsys):
    code = main(["run", "ST", "--fabric", "nvlink",
                 "--scale", "0.005", "--gpus", "2", "--seed", "5"])
    assert code == 0


def test_compare_command(capsys):
    code = main(["compare", "ST", "--policies", "baseline,griffin",
                 "--scale", "0.005", "--gpus", "2", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Speedup vs baseline" in out
    assert "griffin" in out


def test_compare_requires_two_policies(capsys):
    code = main(["compare", "ST", "--policies", "baseline"])
    assert code == 2


def test_figures_rejects_unknown(capsys):
    code = main(["figures", "fig99"])
    assert code == 2
    assert "unknown figures" in capsys.readouterr().err


def test_figures_runs_one(capsys):
    code = main(["figures", "fig12", "--scale", "0.005",
                 "--gpus", "2", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 12" in out
    assert "geomean" in out


def test_unknown_workload_exits_nonzero(capsys):
    code = main(["run", "NOPE", "--scale", "0.005", "--gpus", "2"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_figures_chart_and_export(tmp_path, capsys):
    code = main(["figures", "fig12", "--chart", "--export", str(tmp_path),
                 "--scale", "0.004", "--gpus", "2", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig12: speedup" in out       # the ASCII chart
    assert (tmp_path / "fig12.csv").exists()


def test_validate_subset(capsys):
    code = main(["validate", "--workloads", "MT",
                 "--scale", "0.005", "--gpus", "2", "--seed", "5"])
    out = capsys.readouterr().out
    assert "checks passed" in out
    assert code in (0, 1)  # a subset may not satisfy suite-wide claims


def test_run_engine_backend_ring_matches_heap(capsys):
    """--engine-backend ring must produce byte-identical CLI output."""
    argv = ["run", "MT", "--policy", "griffin",
            "--scale", "0.005", "--gpus", "2", "--seed", "5"]
    assert main(argv) == 0
    heap_out = capsys.readouterr().out
    assert main(argv + ["--engine-backend", "ring"]) == 0
    assert capsys.readouterr().out == heap_out


def test_bench_parser_accepts_label_and_backend():
    """`bench --label` names the report file; `--engine-backend` runs the
    suite under the ring core (the ring-parity CI job uses both)."""
    from repro.cli import _build_parser

    args = _build_parser().parse_args(
        ["bench", "--quick", "--label", "ring-ci",
         "--engine-backend", "ring", "--baseline", "none"]
    )
    assert args.label == "ring-ci"
    assert args.engine_backend == "ring"
    assert args.quick
