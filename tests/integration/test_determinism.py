"""Determinism: identical inputs must give identical simulations."""

import pytest

from repro.config.presets import tiny_system
from repro.harness.runner import run_workload


def run_once(policy="griffin", seed=11):
    return run_workload("KM", policy, config=tiny_system(), scale=0.005, seed=seed)


@pytest.mark.parametrize("policy", ["baseline", "griffin", "griffin_flush"])
def test_repeat_runs_are_bit_identical(policy):
    a = run_workload("FW", policy, config=tiny_system(), scale=0.005, seed=7)
    b = run_workload("FW", policy, config=tiny_system(), scale=0.005, seed=7)
    assert a.cycles == b.cycles
    assert a.kind_counts == b.kind_counts
    assert a.total_shootdowns == b.total_shootdowns
    assert a.occupancy.pages_per_gpu == b.occupancy.pages_per_gpu
    assert [(e.time, e.page, e.src, e.dst) for e in a.migration_events] == [
        (e.time, e.page, e.src, e.dst) for e in b.migration_events
    ]


def test_different_seeds_differ():
    a = run_once(seed=1)
    b = run_once(seed=2)
    assert a.cycles != b.cycles


def test_policy_changes_outcome_not_trace():
    a = run_once("baseline")
    b = run_once("griffin")
    assert a.transactions == b.transactions
    assert a.cycles != b.cycles
