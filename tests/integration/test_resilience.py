"""Integration tests for fault injection, recovery, and the no-hang harness.

The acceptance bar for the resilience subsystem:

* an injected link-failure griffin run still *completes*, with nonzero
  retry/fallback counters;
* a sweep containing one deliberately-stalling cell still returns results
  for every other cell, with the stall captured as a structured failure;
* the engine watchdog turns silent livelock into a diagnosable error.
"""

import pytest

from repro.config.faults import (
    FaultConfig,
    LinkFaultSpec,
    ThrottleSpec,
)
from repro.config.presets import tiny_system
from repro.harness.results import FailedRun
from repro.harness.runner import run_workload
from repro.harness.sweep import Sweep, SweepKey
from repro.interconnect.link import CPU_PORT, InterconnectFabric
from repro.sim.engine import Engine, SimulationError, SimulationStall

SCALE = 0.005
SEED = 9


def run(workload="MT", policy="griffin", **kwargs):
    return run_workload(workload, policy, config=tiny_system(),
                        scale=SCALE, seed=SEED, **kwargs)


# ----------------------------------------------------------------------
# Migration retry and graceful degradation
# ----------------------------------------------------------------------

class TestMigrationRecovery:
    def test_link_failure_run_completes_with_retries_and_fallbacks(self):
        faults = FaultConfig(
            migration_drop_rate=0.4,
            link_faults=(LinkFaultSpec(device=CPU_PORT,
                                       bandwidth_factor=0.5,
                                       extra_latency=50),),
        )
        result = run(faults=faults)
        assert result.cycles > 0  # the run finished
        assert result.transfers_dropped > 0
        assert result.migration_retries > 0
        # at least one page blew its 3-attempt budget and was pinned
        assert result.migration_fallbacks > 0
        assert result.pages_pinned == result.migration_fallbacks

    def test_drop_everything_with_bounded_retries_still_completes(self):
        faults = FaultConfig(migration_drop_rate=1.0,
                             max_migration_attempts=2)
        result = run(faults=faults)
        assert result.cycles > 0
        # nothing ever lands: every attempted migration degrades to DCA
        assert result.migration_fallbacks > 0
        assert result.cpu_to_gpu_migrations == 0

    def test_faulty_run_is_deterministic(self):
        faults = FaultConfig(migration_drop_rate=0.3)
        a, b = run(faults=faults), run(faults=faults)
        assert a.cycles == b.cycles
        assert a.migration_retries == b.migration_retries
        assert a.transfers_dropped == b.transfers_dropped
        assert a.occupancy.pages_per_gpu == b.occupancy.pages_per_gpu

    def test_faults_cost_performance(self):
        clean = run()
        faulty = run(faults=FaultConfig(migration_drop_rate=0.5))
        assert faulty.cycles > clean.cycles

    def test_disabled_fault_config_is_identical_to_none(self):
        clean = run()
        noop = run(faults=FaultConfig())
        assert noop.cycles == clean.cycles
        assert noop.kind_counts == clean.kind_counts
        assert noop.transfers_dropped == 0


class TestShootdownFaults:
    def test_ack_delay_slows_the_run(self):
        clean = run()
        slow = run(faults=FaultConfig(shootdown_ack_delay=500))
        assert slow.cycles > clean.cycles
        assert slow.shootdown_timeouts == 0

    def test_timeouts_counted_and_costly(self):
        faulty = run(faults=FaultConfig(shootdown_timeout_rate=1.0,
                                        shootdown_timeout_cycles=800))
        assert faulty.shootdown_timeouts > 0
        assert faulty.cycles > run().cycles


class TestThrottle:
    def test_throttled_gpu_slows_the_machine(self):
        clean = run()
        throttled = run(faults=FaultConfig(
            throttles=(ThrottleSpec(gpu=0, issue_delay_factor=4.0),)
        ))
        assert throttled.cycles > clean.cycles

    def test_throttle_window_outside_the_run_is_free(self):
        clean = run()
        future = run(faults=FaultConfig(
            throttles=(ThrottleSpec(gpu=0, issue_delay_factor=4.0,
                                    start=1e15, end=2e15),)
        ))
        # the window never opens during the run, so no delay is scaled
        assert future.cycles == clean.cycles


# ----------------------------------------------------------------------
# Engine watchdog and event budgets
# ----------------------------------------------------------------------

class TestWatchdog:
    def test_zero_delay_livelock_raises_with_diagnostics(self):
        engine = Engine()

        def spin():
            engine.schedule(0, spin)

        engine.schedule(0, spin)
        with pytest.raises(SimulationStall) as info:
            engine.run(stall_threshold=300)
        assert "livelock" in str(info.value)
        assert "spin" in str(info.value)  # pending-event dump names it

    def test_progressing_run_never_trips_watchdog(self):
        result = run(stall_threshold=10_000)
        assert result.cycles > 0

    def test_exhausted_flag_set_on_budget(self):
        engine = Engine()
        for i in range(10):
            engine.schedule(i, lambda: None)
        engine.run(max_events=4)
        assert engine.exhausted
        assert engine.events_executed == 4
        engine.run()  # drain the rest
        assert not engine.exhausted

    def test_strict_budget_raises(self):
        engine = Engine()
        for i in range(10):
            engine.schedule(i, lambda: None)
        with pytest.raises(SimulationStall, match="budget"):
            engine.run(max_events=4, strict_budget=True)

    def test_retry_forever_livelock_caught_by_event_budget(self):
        # 100% drops + unbounded retries can never finish; the budget
        # converts the hang into a diagnosable SimulationStall.
        faults = FaultConfig(migration_drop_rate=1.0,
                             max_migration_attempts=0)
        with pytest.raises(SimulationStall, match="event budget"):
            run(faults=faults, max_events=60_000)

    def test_events_executed_reported(self):
        assert run().events_executed > 0


# ----------------------------------------------------------------------
# Fabric port validation (satellite: descriptive errors)
# ----------------------------------------------------------------------

class TestFabricValidation:
    @pytest.fixture()
    def fabric(self):
        cfg = tiny_system()
        return InterconnectFabric(cfg.link, cfg.num_gpus, cfg.gpu.clock_ghz)

    def test_transfer_rejects_bad_src(self, fabric):
        with pytest.raises(SimulationError, match="source port 5"):
            fabric.transfer(0.0, 5, 0, 4096)

    def test_transfer_rejects_bad_dst(self, fabric):
        with pytest.raises(SimulationError, match="destination port -3"):
            fabric.transfer(0.0, CPU_PORT, -3, 4096)

    def test_error_names_valid_range(self, fabric):
        with pytest.raises(SimulationError, match=r"-1 \(CPU\) and GPU ids"):
            fabric.port(99)


# ----------------------------------------------------------------------
# Eager harness validation (satellite: fail fast with choices listed)
# ----------------------------------------------------------------------

class TestEagerValidation:
    def test_unknown_policy_lists_choices(self):
        with pytest.raises(ValueError, match="baseline.*griffin"):
            run(policy="not_a_policy")

    def test_unknown_dispatch_strategy_lists_choices(self):
        with pytest.raises(ValueError, match="round_robin.*chunked"):
            run(dispatch_strategy="bogus")


# ----------------------------------------------------------------------
# Sweep isolation: one bad cell never takes down the grid
# ----------------------------------------------------------------------

class TestSweepIsolation:
    def test_stalling_cell_recorded_other_cells_complete(self):
        stalling = FaultConfig(migration_drop_rate=1.0,
                               max_migration_attempts=0)
        sweep = Sweep(
            workloads=["MT", "BFS"],
            policies=["griffin"],
            configs={"default": tiny_system()},
            faults={"none": None, "stall": stalling},
        )
        result = sweep.run(scale=SCALE, seed=SEED,
                           max_events_per_run=60_000)

        # both fault-free cells completed
        assert SweepKey("MT", "griffin", "default", "default",
                        "none") in result.points
        assert SweepKey("BFS", "griffin", "default", "default",
                        "none") in result.points
        # both stalling cells failed, structurally
        assert len(result.failures) == 2
        for key, failure in result.failures.items():
            assert key.fault == "stall"
            assert isinstance(failure, FailedRun)
            assert failure.error_type == "SimulationStall"
            assert "event budget" in failure.message
        assert "SimulationStall" in result.failure_table()

    def test_invalid_policy_cell_is_isolated_too(self):
        sweep = Sweep(workloads=["MT"], policies=["griffin", "nope"],
                      configs={"default": tiny_system()})
        result = sweep.run(scale=SCALE, seed=SEED)
        assert len(result.points) == 1
        (key,) = result.failures
        assert key.policy == "nope"
        assert result.failures[key].error_type == "ValueError"

    def test_fault_axis_defaults_to_none(self):
        sweep = Sweep(workloads=["MT"], policies=["griffin"],
                      configs={"default": tiny_system()})
        result = sweep.run(scale=SCALE, seed=SEED)
        assert result.get("MT", "griffin").cycles > 0
        assert not result.failures
        assert result.failure_table() == ""


# ----------------------------------------------------------------------
# Counters flow to the detail report and serialized results
# ----------------------------------------------------------------------

class TestReporting:
    def test_detail_report_has_resilience_section(self):
        faults = FaultConfig(migration_drop_rate=0.4)
        result = run(faults=faults, collect_detail=True)
        section = result.detail["resilience"]
        assert section["faults_enabled"]
        assert section["transfers_dropped"] > 0
        assert section["migration_retries"] == result.migration_retries

    def test_clean_detail_report_marks_faults_disabled(self):
        result = run(collect_detail=True)
        assert result.detail["resilience"]["faults_enabled"] is False

    def test_result_roundtrip_preserves_resilience_counters(self):
        from repro.harness.io import result_from_dict, result_to_dict

        result = run(faults=FaultConfig(migration_drop_rate=0.4))
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.migration_retries == result.migration_retries
        assert rebuilt.transfers_dropped == result.transfers_dropped
        assert rebuilt.pages_pinned == result.pages_pinned
        assert rebuilt.events_executed == result.events_executed

    def test_old_result_dict_without_resilience_loads(self):
        from repro.harness.io import result_from_dict, result_to_dict

        data = result_to_dict(run())
        del data["resilience"]
        del data["events_executed"]
        rebuilt = result_from_dict(data)
        assert rebuilt.migration_retries == 0
        assert rebuilt.events_executed == 0
