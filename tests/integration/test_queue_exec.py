"""Fault-tolerant queue execution: parity, worker death, quarantine.

The contract under test: a sweep drained through the on-disk queue —
by in-process degradation, by a local worker fleet, or by a fleet that
loses a worker to SIGKILL mid-cell — produces a grid byte-identical to
serial ``Sweep.run()``, and a cell that can never finish is quarantined
with an evidence bundle instead of wedging the grid.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.harness.io import result_to_dict
from repro.harness.queue import QueueSettings, SweepQueue
from repro.harness.sweep import Sweep, plan_queue_cells
from repro.harness.worker import _CTX, run_worker
from repro.perf.fingerprint import code_fingerprint
from repro.workloads.registry import get_workload

_BASE = GriffinHyperParams.calibrated()


def _knob_sweep() -> Sweep:
    return Sweep(
        workloads=["MT"],
        policies=["griffin", "griffin_flush"],
        configs={"tiny": tiny_system(2)},
        hypers={
            "default": _BASE,
            "eager": _BASE.with_overrides(
                min_pages_per_source=1, lambda_d=1.5
            ),
        },
    )


def _dump(result) -> list:
    return [
        (str(key), json.dumps(result_to_dict(run), sort_keys=True))
        for key, run in result.points.items()
    ]


def _dump_failures(result) -> list:
    return [
        (str(key), failure.error_type, failure.message)
        for key, failure in result.failures.items()
    ]


class SlowWorkload:
    """A deterministic workload that dawdles before building kernels.

    The sleep happens outside the simulation, so results are identical
    to the wrapped workload's — it only widens the window in which a
    worker can be killed mid-cell.
    """

    def __init__(self, inner, delay: float) -> None:
        self.inner = inner
        self.delay = delay
        self.spec = inner.spec
        self.seed = inner.seed
        self.scale = inner.scale
        self.page_size = inner.page_size

    def build_kernels(self, num_gpus):
        time.sleep(self.delay)
        return self.inner.build_kernels(num_gpus)


class HangingWorkload:
    """A workload that blocks forever, simulating a hang in native code."""

    def __init__(self, page_size, seconds: float = 3600.0) -> None:
        self.page_size = page_size
        self.seconds = seconds
        self.seed = 5
        self.scale = 0.008
        self.spec = type("Spec", (), {"abbrev": "HANG"})()

    def __reduce__(self):
        return (HangingWorkload, (self.page_size, self.seconds))

    def build_kernels(self, num_gpus):
        time.sleep(self.seconds)
        raise RuntimeError("unreachable")


class TestQueueParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return _knob_sweep().run(scale=0.008, seed=5)

    def test_degraded_in_process_drain_matches_serial(self, serial,
                                                      tmp_path):
        """workers=1 and no external workers: the caller drains itself."""
        queued = _knob_sweep().run(scale=0.008, seed=5,
                                   queue_dir=tmp_path / "q")
        assert not queued.failures
        assert _dump(queued) == _dump(serial)

    def test_worker_fleet_matches_serial(self, serial, tmp_path):
        queued = _knob_sweep().run(scale=0.008, seed=5, workers=2,
                                   queue_dir=tmp_path / "q")
        assert not queued.failures
        assert _dump(queued) == _dump(serial)

    def test_deterministic_failures_match_serial(self, tmp_path):
        """A bad cell fails terminally with the serial oracle's record."""
        def sweep():
            return Sweep(workloads=["MT"],
                         policies=["griffin", "no_such_policy"],
                         configs={"tiny": tiny_system(2)})

        serial = sweep().run(scale=0.008, seed=5)
        queued = sweep().run(scale=0.008, seed=5, queue_dir=tmp_path / "q")
        assert _dump(queued) == _dump(serial)
        assert _dump_failures(queued) == _dump_failures(serial)
        (failure,) = queued.failures.values()
        assert failure.error_type == "ValueError"
        assert failure.attempts == 1  # deterministic -> never retried


class TestWorkerDeath:
    def test_sigkilled_worker_lease_reclaimed_byte_identical(self, tmp_path):
        """The acceptance drill: SIGKILL a worker mid-cell.

        The killed worker's lease expires, a surviving worker reclaims
        the cell after backoff, and the final grid is byte-identical to
        the serial oracle with no leaked leases.
        """
        cfg = tiny_system(2)
        slow = SlowWorkload(
            get_workload("SC", scale=0.008, seed=5,
                         page_size=cfg.page_size),
            delay=2.0,
        )

        def make_sweep():
            return Sweep(workloads=[slow, "SC"], policies=["griffin"],
                         configs={"tiny": cfg})

        serial = make_sweep().run(scale=0.008, seed=5)
        assert not serial.failures

        grid = list(make_sweep()._grid(0.008, 5, None, 1_000_000))
        queue = SweepQueue.create(
            tmp_path / "q", plan_queue_cells(grid, code_fingerprint()),
            QueueSettings(lease_duration=1.0, max_attempts=3,
                          backoff_base=0.05, backoff_cap=0.2),
        )

        victim = _CTX.Process(target=run_worker, args=(str(tmp_path / "q"),),
                              kwargs={"owner": "victim"})
        victim.start()
        # The victim claims cell 0 (the slow one) first; kill it while
        # the cell is provably mid-execution.
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if queue.rows()[0][1] == "leased":
                break
            time.sleep(0.02)
        else:
            pytest.fail("victim worker never leased the slow cell")
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        report = run_worker(tmp_path / "q", owner="rescue")
        assert report.completed >= 1

        assert queue.drained()
        stats = queue.stats()
        assert stats.leased == 0 and stats.open == 0  # no leaked leases
        assert stats.done == 2 and stats.unhealthy == 0

        queued = queue.collect()
        assert not queued.failures
        assert _dump(queued) == _dump(serial)

        # The killed cell's row tells the story: two attempts (victim's
        # lost lease + rescue's), rescued by the survivor.
        idx, status, owner, last_owner, attempts = queue.rows()[0][:5]
        assert (status, attempts, last_owner) == ("done", 2, "rescue")

    def test_zombie_commit_after_reclaim_is_harmless(self, tmp_path):
        """A worker that loses its lease but still commits changes nothing."""
        def make_sweep():
            return Sweep(workloads=["SC"], policies=["griffin"],
                         configs={"tiny": tiny_system(2)})

        grid = list(make_sweep()._grid(0.008, 5, None, 1_000_000))
        queue = SweepQueue.create(
            tmp_path / "q", plan_queue_cells(grid, code_fingerprint()),
            QueueSettings(lease_duration=10.0, backoff_base=0.0),
        )
        zombie = queue.claim("zombie", now=time.time() - 100.0)
        queue.reap()  # the stale lease is reclaimed immediately
        rescue = run_worker(tmp_path / "q", owner="rescue")
        assert rescue.completed == 1
        first = queue.collect()
        # The zombie finishes late and commits anyway: first-writer-wins.
        from repro.harness.worker import execute_cell

        queue.complete(zombie.idx, "zombie", execute_cell(zombie.args))
        assert _dump(queue.collect()) == _dump(first)
        assert queue.stats().done == 1


class TestQuarantine:
    def test_hung_cell_is_killed_retried_then_quarantined(self, tmp_path):
        """cell_timeout + max_attempts: a hang costs one cell, bounded time.

        The hanging cell is SIGKILLed at every attempt, retried with
        backoff, then quarantined with an evidence bundle; the healthy
        cell of the grid still completes.
        """
        cfg = tiny_system(2)
        sweep = Sweep(workloads=[HangingWorkload(cfg.page_size), "SC"],
                      policies=["griffin"], configs={"tiny": cfg})
        result = sweep.run(scale=0.008, seed=5, queue_dir=tmp_path / "q",
                           cell_timeout=0.5, max_attempts=2,
                           backoff_base=0.05, backoff_cap=0.2)
        assert len(result.points) == 1  # SC completed
        (failure,) = result.failures.values()
        assert failure.error_type == "CellTimeout"
        assert failure.attempts == 2
        assert failure.bundle_path is not None
        manifest = json.loads(
            (Path(failure.bundle_path) / "manifest.json").read_text()
        )
        events = [e["event"] for e in manifest["history"]]
        assert events == ["claim", "retry", "claim", "quarantined"]


class TestCellTimeoutClassic:
    def test_classic_path_timeout_fails_one_cell(self):
        """Sweep.run(cell_timeout=...) without a queue: same backstop."""
        cfg = tiny_system(2)
        sweep = Sweep(workloads=[HangingWorkload(cfg.page_size), "SC"],
                      policies=["griffin"], configs={"tiny": cfg})
        result = sweep.run(scale=0.008, seed=5, cell_timeout=1.0)
        assert len(result.points) == 1
        (failure,) = result.failures.values()
        assert failure.error_type == "CellTimeout"
        assert "wall-clock timeout" in failure.message

    def test_supervised_results_match_serial(self):
        serial = _knob_sweep().run(scale=0.008, seed=5)
        supervised = _knob_sweep().run(scale=0.008, seed=5,
                                       cell_timeout=300.0)
        assert not supervised.failures
        assert _dump(supervised) == _dump(serial)

    def test_timeout_rejects_batch_mode(self):
        with pytest.raises(ValueError, match="batch"):
            _knob_sweep().run(scale=0.008, seed=5, batch=True,
                              cell_timeout=1.0)


class TestQueueCLI:
    def test_sweep_queue_dir_and_worker_exit_codes(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        code = main(["sweep", "--workloads", "MT", "--policies", "griffin",
                     "--scale", "0.008", "--seed", "5", "--gpus", "2",
                     "--queue-dir", queue_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "queue: 1 done, 0 failed, 0 quarantined" in out
        # The queue is drained; a late worker attaches, finds nothing to
        # do, and exits cleanly.
        assert main(["worker", queue_dir]) == 0
        assert "0 claimed" in capsys.readouterr().out

    def test_worker_exits_nonzero_on_unhealthy_grid(self, tmp_path, capsys):
        code = main(["sweep", "--workloads", "MT",
                     "--policies", "griffin,no_such_policy",
                     "--scale", "0.008", "--seed", "5", "--gpus", "2",
                     "--queue-dir", str(tmp_path / "q")])
        assert code == 1  # failures surface in the sweep exit code
        capsys.readouterr()
        assert main(["worker", str(tmp_path / "q")]) == 1
        err = capsys.readouterr().err
        assert "no_such_policy" in err  # failure table on stderr

    def test_worker_rejects_missing_queue(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path / "nope")]) == 2
        assert "no sweep queue" in capsys.readouterr().err


class TestWorkerDrainReport:
    """Regression: a drained worker always returns a structured report.

    Before the fix, a KeyboardInterrupt landing before the first claim
    (or mid-cell) escaped ``run_worker`` entirely — the fleet supervisor
    saw a crash where a graceful drain had happened.
    """

    def _make_queue(self, tmp_path):
        from tests.unit.test_queue import make_cells

        return SweepQueue.create(
            tmp_path / "q", make_cells(2),
            QueueSettings(lease_duration=10.0, max_attempts=3),
        )

    def test_interrupt_before_first_claim_returns_report(
            self, tmp_path, monkeypatch):
        self._make_queue(tmp_path)

        def interrupted_claim(self, owner, now=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(SweepQueue, "claim", interrupted_claim)
        report = run_worker(tmp_path / "q", owner="drainee")
        assert report.interrupted and report.claimed == 0
        assert report.to_dict()["interrupted"] is True
        assert report.summary().endswith("(interrupted)")

    def test_interrupt_mid_cell_releases_lease_and_reports(
            self, tmp_path, monkeypatch):
        import repro.harness.worker as worker_mod

        queue = self._make_queue(tmp_path)

        def interrupted_execute(args, group_fp, cache):
            raise KeyboardInterrupt

        monkeypatch.setattr(worker_mod, "execute_cell", interrupted_execute)
        report = run_worker(tmp_path / "q", owner="drainee")
        assert report.interrupted
        assert report.claimed == 1 and report.released == 1
        health = queue.health()
        assert health.stats.leased == 0  # the lease went back, not stranded
        assert health.stats.open == 2

    def test_interrupt_during_queue_open_still_reports(
            self, tmp_path, monkeypatch):
        self._make_queue(tmp_path)
        original_open = SweepQueue.open.__func__

        def interrupted_open(cls, root):
            raise KeyboardInterrupt

        monkeypatch.setattr(SweepQueue, "open",
                            classmethod(interrupted_open))
        try:
            report = run_worker(tmp_path / "q", owner="drainee")
        finally:
            monkeypatch.setattr(SweepQueue, "open",
                                classmethod(original_open))
        assert report.interrupted and report.claimed == 0
