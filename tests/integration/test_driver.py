"""Integration tests for the driver's migration orchestration."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.harness.runner import run_workload
from repro.system.machine import Machine


def hot_remote_kernels(page_addr, owner_accesses=2, hammer_accesses=120):
    """Kernel 0 makes GPU0 first-touch a page; kernel 1 has GPU1 hammer it."""
    k0 = Kernel(0, [
        Workgroup(0, 0, [WavefrontTrace([(0, page_addr, False)] * owner_accesses)]),
        Workgroup(1, 0, [WavefrontTrace([(0, 0x900000, False)])]),
    ])
    hammer = [(40, page_addr + 64 * (i % 32), False) for i in range(hammer_accesses)]
    k1 = Kernel(1, [
        Workgroup(2, 1, [WavefrontTrace([(0, 0x900040, False)])]),
        Workgroup(3, 1, [WavefrontTrace(hammer)]),
    ])
    return [k0, k1]


def test_dpc_migrates_hot_remote_page_between_gpus():
    hyper = GriffinHyperParams.calibrated().with_overrides(
        t_ac=500, migration_period=2000, min_pages_per_source=1
    )
    machine = Machine(tiny_system(), "griffin", hyper=hyper)
    addr = 0x100000
    machine.run(hot_remote_kernels(addr))
    # GPU1 hammered GPU0's page; DPC should have moved it to GPU1.
    assert machine.page_table.location(addr // 4096) == 1
    assert machine.page_table.gpu_to_gpu_migrations >= 1
    assert machine.shootdowns.gpu_shootdowns >= 1


def test_no_inter_gpu_migration_when_policy_disables_it():
    machine = Machine(tiny_system(), "griffin_no_dpc")
    addr = 0x100000
    machine.run(hot_remote_kernels(addr))
    assert machine.page_table.gpu_to_gpu_migrations == 0


def test_fault_batching_reduces_cpu_shootdowns():
    cfg = tiny_system()
    fcfs = run_workload("FIR", "griffin_no_batch", config=cfg, scale=0.005, seed=4)
    batched = run_workload("FIR", "griffin", config=cfg, scale=0.005, seed=4)
    assert batched.cpu_shootdowns < fcfs.cpu_shootdowns


def test_acud_not_slower_than_flush():
    cfg = tiny_system()
    acud = run_workload("SC", "griffin", config=cfg, scale=0.008, seed=5)
    flush = run_workload("SC", "griffin_flush", config=cfg, scale=0.008, seed=5)
    assert acud.cycles <= flush.cycles * 1.02  # allow sim noise


def test_migration_rounds_do_not_overlap_counters():
    hyper = GriffinHyperParams.calibrated().with_overrides(
        t_ac=500, migration_period=1500, min_pages_per_source=1
    )
    machine = Machine(tiny_system(), "griffin", hyper=hyper)
    machine.run(hot_remote_kernels(0x100000, hammer_accesses=200))
    # Rounds may be skipped while one is active, never doubled.
    assert machine.driver.stat("migration_rounds") >= 1


def test_driver_stops_periodic_events_at_end():
    machine = Machine(tiny_system(), "griffin")
    machine.run(hot_remote_kernels(0x100000))
    assert machine.finish_time is not None
    # After the run, the engine stopped; periodic events did not keep it alive.
    assert machine.engine.now == machine.finish_time


def test_waiters_on_migrating_page_are_released():
    hyper = GriffinHyperParams.calibrated().with_overrides(
        t_ac=500, migration_period=2000, min_pages_per_source=1
    )
    machine = Machine(tiny_system(), "griffin", hyper=hyper)
    machine.run(hot_remote_kernels(0x100000, hammer_accesses=300))
    # Completion of the run proves no access dead-locked on a migration.
    assert machine.driver._waiters == {}
