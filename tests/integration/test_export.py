"""Integration tests for CSV figure export."""

import csv

import pytest

from repro.config.presets import tiny_system
from repro.harness import experiments as ex
from repro.harness.export import (
    export_occupancy,
    export_shootdowns,
    export_speedups,
    export_timeline,
)

FAST = dict(config=tiny_system(), scale=0.006, seed=5)


@pytest.fixture(scope="module")
def comparison():
    return ex.fig12_overall_speedup(workloads=["ST", "MT"], **FAST)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_export_speedups(comparison, tmp_path):
    path = export_speedups(comparison, tmp_path / "sp.csv")
    rows = read_csv(path)
    assert rows[0] == ["workload", "baseline_cycles", "griffin_cycles", "speedup"]
    assert {r[0] for r in rows[1:]} == {"ST", "MT"}
    for row in rows[1:]:
        assert float(row[3]) == pytest.approx(float(row[1]) / float(row[2]), rel=1e-3)


def test_export_occupancy(comparison, tmp_path):
    path = export_occupancy(comparison, tmp_path / "occ.csv")
    rows = read_csv(path)
    assert rows[0][:2] == ["workload", "policy"]
    data = [r for r in rows[1:] if r]
    # 2 workloads x 2 policies.
    assert len(data) == 4
    for row in data:
        shares = [float(x) for x in row[2:]]
        assert sum(shares) == pytest.approx(100.0, abs=0.1) or sum(shares) == 0.0


def test_export_shootdowns(comparison, tmp_path):
    path = export_shootdowns(comparison, tmp_path / "sd.csv")
    rows = read_csv(path)
    assert rows[0][-1] == "total"
    for row in rows[1:]:
        assert int(row[4]) == int(row[2]) + int(row[3])


def test_export_timeline(tmp_path):
    result = ex.fig10_dpc_migration("SC", **FAST)
    path = export_timeline(result, tmp_path / "tl.csv")
    rows = read_csv(path)
    assert rows[0][0] == "cycle"
    assert any(r and r[0] == "migration_time" for r in rows)


def test_export_creates_parent_dirs(comparison, tmp_path):
    path = export_speedups(comparison, tmp_path / "nested" / "dir" / "sp.csv")
    assert path.exists()
