"""Integration tests: the assembled machine running whole workloads."""

import pytest

from repro.config.presets import tiny_system
from repro.harness.runner import run_workload
from repro.mem.access import AccessKind
from repro.system.machine import Machine
from repro.workloads.registry import get_workload, list_workloads


def test_baseline_run_completes(sc_baseline_tiny):
    r = sc_baseline_tiny
    assert r.cycles > 0
    assert r.transactions > 0
    assert r.policy == "baseline"


def test_griffin_run_completes(sc_griffin_tiny):
    r = sc_griffin_tiny
    assert r.cycles > 0
    assert r.policy == "griffin"


def test_same_trace_same_transaction_count(sc_baseline_tiny, sc_griffin_tiny):
    assert sc_baseline_tiny.transactions == sc_griffin_tiny.transactions


def test_every_transaction_is_serviced(sc_baseline_tiny):
    assert sum(sc_baseline_tiny.kind_counts.values()) == sc_baseline_tiny.transactions


def test_baseline_never_uses_cpu_dca(sc_baseline_tiny):
    # Without DFTM there are no denials, hence no CPU DCA accesses.
    assert sc_baseline_tiny.kind_counts[AccessKind.CPU_DCA] == 0
    assert sc_baseline_tiny.dftm_denials == 0


def test_baseline_never_migrates_between_gpus(sc_baseline_tiny):
    assert sc_baseline_tiny.gpu_to_gpu_migrations == 0


def test_griffin_uses_dftm(sc_griffin_tiny):
    assert sc_griffin_tiny.dftm_denials > 0
    assert sc_griffin_tiny.kind_counts[AccessKind.CPU_DCA] > 0


def test_pages_end_up_gpu_resident(sc_baseline_tiny):
    # The baseline migrates every touched page on first touch.
    assert sc_baseline_tiny.occupancy.total_gpu_pages > 0
    assert sc_baseline_tiny.occupancy.cpu_pages == 0


def test_shootdown_accounting_consistent(sc_baseline_tiny):
    # FCFS: one CPU shootdown round per migrated page.
    assert sc_baseline_tiny.cpu_shootdowns == sc_baseline_tiny.cpu_to_gpu_migrations
    assert sc_baseline_tiny.gpu_shootdowns == 0


def test_griffin_batches_cpu_shootdowns(sc_griffin_tiny):
    assert sc_griffin_tiny.cpu_shootdowns < sc_griffin_tiny.cpu_to_gpu_migrations


def test_migration_events_match_page_table_counts(sc_griffin_tiny):
    g2g = sum(1 for e in sc_griffin_tiny.migration_events if e.src >= 0)
    assert g2g == sc_griffin_tiny.gpu_to_gpu_migrations


@pytest.mark.parametrize("workload", list_workloads())
def test_all_workloads_run_under_both_policies(workload):
    cfg = tiny_system()
    base = run_workload(workload, "baseline", config=cfg, scale=0.004, seed=2)
    grif = run_workload(workload, "griffin", config=cfg, scale=0.004, seed=2)
    assert base.cycles > 0 and grif.cycles > 0
    assert base.transactions == grif.transactions


def test_machine_rejects_incomplete_run():
    cfg = tiny_system()
    machine = Machine(cfg, "baseline")
    w = get_workload("SC", scale=0.004, seed=2)
    with pytest.raises(RuntimeError, match="without completing"):
        machine.run(w.build_kernels(cfg.num_gpus), max_events=10)


def test_local_fraction_in_unit_range(sc_baseline_tiny, sc_griffin_tiny):
    for r in (sc_baseline_tiny, sc_griffin_tiny):
        assert 0.0 <= r.local_fraction <= 1.0


def test_three_gpu_system_works():
    cfg = tiny_system(num_gpus=3)
    r = run_workload("ST", "griffin", config=cfg, scale=0.004, seed=2)
    assert len(r.occupancy.pages_per_gpu) == 3
    assert r.cycles > 0


def test_single_gpu_system_works():
    # Degenerate NUMA: everything is local after first touch.
    cfg = tiny_system(num_gpus=1)
    r = run_workload("FIR", "baseline", config=cfg, scale=0.004, seed=2)
    assert r.kind_counts[AccessKind.REMOTE_DCA] == 0
