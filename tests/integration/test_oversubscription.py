"""Integration tests for capacity eviction (UM oversubscription)."""

from dataclasses import replace

import pytest

from repro.config.presets import tiny_system
from repro.harness.runner import run_workload


def capped(config, pages):
    return replace(config, gpu=replace(config.gpu, capacity_pages=pages))


def test_capacity_is_never_exceeded_at_end():
    cfg = capped(tiny_system(), 12)
    r = run_workload("KM", "baseline", config=cfg, scale=0.006, seed=5)
    assert max(r.occupancy.pages_per_gpu) <= 12


def test_evictions_send_pages_back_to_cpu():
    cfg = capped(tiny_system(), 12)
    r = run_workload("KM", "baseline", config=cfg, scale=0.006, seed=5)
    assert r.occupancy.cpu_pages > 0
    evictions = sum(1 for e in r.migration_events if e.dst < 0)
    assert evictions > 0


def test_oversubscription_increases_migration_traffic():
    free = run_workload("KM", "baseline", config=tiny_system(), scale=0.006, seed=5)
    tight = run_workload("KM", "baseline", config=capped(tiny_system(), 12),
                         scale=0.006, seed=5)
    assert tight.cpu_to_gpu_migrations > free.cpu_to_gpu_migrations
    assert tight.cycles > free.cycles


def test_unlimited_capacity_never_evicts():
    r = run_workload("KM", "baseline", config=tiny_system(), scale=0.006, seed=5)
    assert all(e.dst >= 0 for e in r.migration_events)


def test_runs_complete_under_pressure_for_all_policies():
    cfg = capped(tiny_system(), 10)
    for policy in ["baseline", "griffin", "griffin_flush"]:
        r = run_workload("ST", policy, config=cfg, scale=0.006, seed=5)
        assert r.cycles > 0
        assert max(r.occupancy.pages_per_gpu) <= 10


def test_deterministic_under_eviction():
    cfg = capped(tiny_system(), 12)
    a = run_workload("KM", "griffin", config=cfg, scale=0.006, seed=5)
    b = run_workload("KM", "griffin", config=cfg, scale=0.006, seed=5)
    assert a.cycles == b.cycles
    assert a.cpu_to_gpu_migrations == b.cpu_to_gpu_migrations
