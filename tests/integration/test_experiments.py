"""Integration tests for the experiment harness (tables and figures)."""

import pytest

from repro.config.presets import tiny_system
from repro.harness import experiments as ex

FAST = dict(config=tiny_system(), scale=0.006, seed=5)


class TestTables:
    def test_table1_renders_paper_values(self):
        out = ex.table1_hyperparameters().render()
        assert "N_PTW" in out and "8" in out
        assert "lambda_d" in out and "2" in out

    def test_table2_renders_components(self):
        out = ex.table2_system_config().render()
        assert "L2 Cache" in out
        assert "PCIe" in out

    def test_table3_lists_ten_workloads(self):
        out = ex.table3_workloads().render()
        for abbrev in ["BFS", "MT", "SC", "ST"]:
            assert abbrev in out
        assert "Scatter-Gather" in out


class TestFigures:
    def test_fig2_renders_distribution(self):
        res = ex.fig2_first_touch_imbalance(workloads=["FIR"], **FAST)
        out = ex.render_fig2(res)
        assert "FIR" in out and "GPU0" in out

    def test_fig8_shows_balancing(self):
        res = ex.fig8_occupancy_balance(workloads=["FIR"], **FAST)
        runs = res.runs["FIR"]
        assert runs["griffin"].imbalance() <= runs["baseline"].imbalance() + 0.05
        assert "imb" in ex.render_fig8(res)

    def test_fig9_shootdowns_normalized(self):
        res = ex.fig9_tlb_shootdowns(workloads=["FIR"], **FAST)
        runs = res.runs["FIR"]
        assert runs["griffin"].total_shootdowns < runs["baseline"].total_shootdowns
        assert "Normalized" in ex.render_fig9(res)

    def test_fig12_speedup_table(self):
        res = ex.fig12_overall_speedup(workloads=["MT"], **FAST)
        assert res.speedups("baseline", "griffin")["MT"] > 1.0
        assert "geomean" in ex.render_fig12(res)

    def test_fig11_acud_column(self):
        res = ex.fig11_acud_vs_flush(workloads=["SC"], **FAST)
        out = ex.render_fig11(res)
        assert "ACUD" in out

    def test_fig13_uses_faster_fabric(self):
        res = ex.fig13_high_bandwidth(workloads=["MT"], scale=0.006, seed=5)
        assert res.speedups("baseline", "griffin")["MT"] > 1.0

    def test_fig1_timeline(self):
        res = ex.fig1_page_access_timeline("SC", **FAST)
        assert res.series
        out = res.render()
        assert "GPU0 %" in out

    def test_fig10_records_migrations(self):
        res = ex.fig10_dpc_migration("SC", **FAST)
        assert res.migrations  # at least the CPU->GPU move
        assert "location changes" in res.render()


class TestHardwareCost:
    def test_report(self):
        report = ex.hardware_cost_report()
        assert report.dpc_bytes_per_gpu == 2200
