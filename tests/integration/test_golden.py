"""Golden-run regression: the simulator's numbers must not drift silently.

Every simulation is deterministic, so a fixed (config, workload, policy,
scale, seed) tuple has exactly one correct output.  ``golden_runs.json``
pins the canonical results; any change to timing models, workload
generators, or policy logic that moves a number must regenerate the file
*deliberately* (and re-justify the calibration in docs/calibration.md)::

    python -c "exec(open('tests/integration/test_golden.py').read()); regenerate()"
"""

import json
from pathlib import Path

import pytest

from repro.config.presets import tiny_system
from repro.harness.runner import run_workload
from repro.workloads.registry import list_workloads

GOLDEN_PATH = Path(__file__).parent.parent / "golden_runs.json"
SCALE = 0.005
SEED = 9


def current_results() -> dict:
    out = {}
    for wl in list_workloads():
        for policy in ["baseline", "griffin"]:
            r = run_workload(wl, policy, config=tiny_system(),
                             scale=SCALE, seed=SEED)
            out[f"{wl}/{policy}"] = {
                "cycles": r.cycles,
                "transactions": r.transactions,
                "total_shootdowns": r.total_shootdowns,
                "cpu_to_gpu": r.cpu_to_gpu_migrations,
                "gpu_to_gpu": r.gpu_to_gpu_migrations,
                "pages_per_gpu": list(r.occupancy.pages_per_gpu),
            }
    return out


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_PATH.write_text(json.dumps(current_results(), indent=1, sort_keys=True))
    print(f"regenerated {GOLDEN_PATH}")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return current_results()


def test_golden_file_covers_all_workloads(golden):
    assert len(golden) == 20


@pytest.mark.parametrize("workload", list_workloads())
@pytest.mark.parametrize("policy", ["baseline", "griffin"])
def test_run_matches_golden(golden, current, workload, policy):
    key = f"{workload}/{policy}"
    expected = golden[key]
    actual = current[key]
    assert actual == expected, (
        f"{key} drifted from the golden run; if the change is deliberate, "
        "regenerate tests/golden_runs.json and update docs/calibration.md"
    )
