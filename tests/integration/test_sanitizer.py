"""End-to-end sanitizer tests: parity, crash bundles, replay, bisection.

Three contracts from docs/resilience.md are pinned here:

1. **Parity** — monitors are pure observers: a fully-checked clean run
   serializes byte-identically to the committed goldens for every parity
   grid cell, snapshot staging included.
2. **Detection** — every seeded corruption kind trips its monitor, and
   the failure writes a crash bundle with the violation report, the event
   ring, and a warm snapshot.
3. **Replay** — ``replay_bundle`` re-executes the bundle's tail and
   reproduces the identical failure (violation report field-for-field,
   stall cycle, or exhaustion list); ``bisect_bundle`` narrows a late
   detection to a small introduction window.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.check import (
    CheckConfig,
    CorruptionSpec,
    InvariantViolation,
    bisect_bundle,
    load_bundle,
    replay_bundle,
)
from repro.config.faults import FaultConfig
from repro.config.presets import tiny_system
from repro.harness.io import load_result, result_to_dict, save_result
from repro.harness.runner import run_workload
from repro.harness.sweep import Sweep
from repro.sim.engine import SimulationStall

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from gen_golden_parity import PARITY_GRID, _CONFIGS, PARITY_FAULTS  # noqa: E402

_GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden_parity.json"
GOLDENS = json.loads(_GOLDEN_PATH.read_text())


def _run_cell(**kwargs):
    """The standard cell for failure scenarios: MT / griffin / tiny."""
    return run_workload("MT", "griffin", config=tiny_system(2),
                        scale=0.008, seed=5, **kwargs)


# ----------------------------------------------------------------------
# 1. Parity: checked clean runs are byte-identical and every monitor
#    stays silent (a violation would raise, so passing == silent).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_checked_run_matches_golden(key):
    spec = next(row for row in PARITY_GRID if row[0] == key)
    _, workload, policy, config_name, scale, seed, faulted = spec
    result = run_workload(
        workload, policy, config=_CONFIGS[config_name](),
        scale=scale, seed=seed,
        faults=PARITY_FAULTS if faulted else None,
        checks=CheckConfig(),
    )
    current = result_to_dict(result)
    assert current == GOLDENS[key], (
        f"checked run for {key} diverged from the unchecked golden; "
        "monitors must be pure observers"
    )
    assert (json.dumps(current, sort_keys=True)
            == json.dumps(GOLDENS[key], sort_keys=True))


def test_snapshot_staged_run_matches_golden():
    """The interval-staged drive loop (start/run_until/finish) is
    byte-identical to an uninterrupted run."""
    result = _run_cell(checks=CheckConfig(snapshot_interval=10_000))
    assert result_to_dict(result) == GOLDENS["MT/griffin/tiny/clean"]


def test_clean_checked_result_has_no_bundle_key():
    result = _run_cell(checks=CheckConfig())
    assert result.bundle_path is None
    assert "bundle" not in result_to_dict(result)


# ----------------------------------------------------------------------
# 2 + 3. Corruption drills -> violation + bundle -> deterministic replay.
# ----------------------------------------------------------------------


_KIND_TO_MONITOR = {
    "ownership_count": "ownership",
    "ownership_device": "ownership",
    "tlb_stale": "vm_coherence",
    "past_event": "event_queue",
}


def _corrupted_checks(kind):
    return CheckConfig(
        snapshot_interval=10_000,
        corruptions=(CorruptionSpec(kind, at_cycle=30_000),),
    )


@pytest.fixture(scope="module")
def violation_bundle(tmp_path_factory):
    """One ownership_count drill, shared by the replay/bisect/CLI tests."""
    tmp = tmp_path_factory.mktemp("violation")
    with pytest.raises(InvariantViolation) as info:
        _run_cell(checks=_corrupted_checks("ownership_count"),
                  bundle_dir=tmp)
    return info.value


def test_violation_bundle_contents(violation_bundle):
    exc = violation_bundle
    assert exc.report.monitor == "ownership"
    assert exc.bundle_path is not None
    bundle = load_bundle(exc.bundle_path)
    assert bundle.kind == "violation"
    assert bundle.manifest["violation"] == exc.report.to_dict()
    assert bundle.manifest["workload"] == "MT"
    assert bundle.manifest["ring"], "event ring buffer must not be empty"
    assert bundle.manifest["has_snapshot"]
    # The warm snapshot precedes the failure and is audit-clean by
    # construction (on_snapshot_point audits before every capture).
    assert bundle.snapshot.cycle <= exc.report.cycle
    assert bundle.manifest["monitor_state"]


def test_violation_replay_reproduces_identical_report(violation_bundle):
    outcome = replay_bundle(violation_bundle.bundle_path)
    assert outcome.kind == "violation"
    assert outcome.reproduced, outcome.render()
    assert outcome.observed == violation_bundle.report.to_dict()


@pytest.mark.parametrize("kind", ["ownership_device", "tlb_stale",
                                  "past_event"])
def test_other_corruption_kinds_fire_and_replay(tmp_path, kind):
    with pytest.raises(InvariantViolation) as info:
        _run_cell(checks=_corrupted_checks(kind), bundle_dir=tmp_path)
    exc = info.value
    assert exc.report.monitor == _KIND_TO_MONITOR[kind]
    assert exc.bundle_path is not None
    outcome = replay_bundle(exc.bundle_path)
    assert outcome.reproduced, outcome.render()


def test_bisect_narrows_the_violation_window(violation_bundle):
    result = bisect_bundle(violation_bundle.bundle_path, tolerance=2_000)
    assert result.clean_cycle <= result.violated_cycle
    assert result.window <= 2_000
    # The corruption fired at t=30000; the window must bracket it.
    assert result.clean_cycle < 30_000 <= result.violated_cycle
    assert result.report is not None
    assert result.report.monitor == "ownership"
    assert result.probes
    assert "bisected violation window" in result.render()


# ----------------------------------------------------------------------
# Stall bundles: the event budget trips mid-run and the tail replays.
# ----------------------------------------------------------------------


def test_stall_bundle_replays(tmp_path):
    with pytest.raises(SimulationStall) as info:
        _run_cell(checks=CheckConfig(snapshot_interval=5_000),
                  bundle_dir=tmp_path, max_events=500)
    exc = info.value
    assert exc.bundle_path is not None
    bundle = load_bundle(exc.bundle_path)
    assert bundle.kind == "stall"
    assert bundle.manifest["max_events"] == 500
    outcome = replay_bundle(exc.bundle_path)
    assert outcome.reproduced, outcome.render()


def test_failure_without_bundle_dir_still_raises(tmp_path):
    with pytest.raises(SimulationStall) as info:
        _run_cell(checks=CheckConfig(), max_events=500)
    assert getattr(info.value, "bundle_path", None) is None


# ----------------------------------------------------------------------
# Retry-exhaustion bundles: informational, attached to a completed run.
# ----------------------------------------------------------------------


def test_retry_exhaustion_bundle_and_io_round_trip(tmp_path):
    faults = FaultConfig(migration_drop_rate=1.0, max_migration_attempts=2)
    result = _run_cell(checks=CheckConfig(), bundle_dir=tmp_path,
                       faults=faults)
    assert result.pages_pinned > 0
    assert result.bundle_path is not None
    bundle = load_bundle(result.bundle_path)
    assert bundle.kind == "retry_exhaustion"
    assert bundle.manifest["exhaustions"]

    outcome = replay_bundle(result.bundle_path)
    assert outcome.reproduced, outcome.render()

    # The bundle path survives the result's JSON round trip ...
    assert result_to_dict(result)["bundle"] == result.bundle_path
    path = save_result(result, tmp_path / "result.json")
    assert load_result(path).bundle_path == result.bundle_path


# ----------------------------------------------------------------------
# Sweep integration: failures carry their bundle into the report.
# ----------------------------------------------------------------------


def test_sweep_failure_records_bundle_path(tmp_path):
    sweep = Sweep(workloads=["MT"], policies=["griffin"],
                  configs={"tiny": tiny_system(2)})
    result = sweep.run(scale=0.008, seed=5,
                       checks=_corrupted_checks("ownership_count"),
                       bundle_dir=tmp_path)
    assert not result.points
    (failure,) = result.failures.values()
    assert failure.error_type == "InvariantViolation"
    assert failure.bundle_path is not None
    assert Path(failure.bundle_path).is_dir()
    table = result.failure_table()
    assert "Bundle" in table
    assert failure.bundle_path in table


def test_checked_sweep_matches_unchecked_bytes():
    def dump(res):
        return [(str(k), json.dumps(result_to_dict(r), sort_keys=True))
                for k, r in res.points.items()]

    sweep = Sweep(workloads=["MT"], policies=["baseline", "griffin"],
                  configs={"tiny": tiny_system(2)})
    unchecked = sweep.run(scale=0.008, seed=5)
    checked = sweep.run(scale=0.008, seed=5, checks=CheckConfig())
    assert not checked.failures
    assert dump(checked) == dump(unchecked)
    # Checked cells run cold: the sanitizer tracks protocol state a
    # mid-run fork could not reconstruct.
    assert checked.forked_cells == 0
    assert checked.cold_cells == 2


# ----------------------------------------------------------------------
# CLI: --check / --bundle-dir on run, and the replay subcommand.
# ----------------------------------------------------------------------


def test_cli_checked_run_clean(capsys):
    rc = cli.main(["run", "MT", "--gpus", "2", "--scale", "0.008",
                   "--seed", "5", "--check"])
    assert rc == 0
    assert "MT under griffin" in capsys.readouterr().out


def test_cli_checked_stall_writes_bundle_then_replays(tmp_path, capsys):
    rc = cli.main(["run", "MT", "--gpus", "2", "--scale", "0.008",
                   "--seed", "5", "--check", "--max-events", "500",
                   "--bundle-dir", str(tmp_path),
                   "--check-snapshot-interval", "5000"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "crash bundle written to" in err
    assert "griffin-sim replay" in err
    bundles = [p for p in tmp_path.iterdir() if p.is_dir()]
    assert len(bundles) == 1
    assert "stall" in bundles[0].name

    rc = cli.main(["replay", str(bundles[0])])
    out = capsys.readouterr().out
    assert rc == 0
    assert "kind:     stall" in out
    assert "reproduced" in out


def test_cli_replay_bisect(violation_bundle, capsys):
    rc = cli.main(["replay", "--bisect", "--tolerance", "4000",
                   violation_bundle.bundle_path])
    assert rc == 0
    assert "bisected violation window" in capsys.readouterr().out


def test_cli_replay_missing_bundle(tmp_path, capsys):
    rc = cli.main(["replay", str(tmp_path / "no-such-bundle")])
    assert rc == 2
    assert "not a crash bundle" in capsys.readouterr().err
