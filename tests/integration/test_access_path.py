"""Integration tests for the memory access path through a real machine."""

import pytest

from repro.config.presets import tiny_system
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.mem.access import AccessKind
from repro.system.machine import Machine


def single_access_kernel(address, gpu_count=1, is_write=False, wg_id=0):
    wg = Workgroup(wg_id, 0, [WavefrontTrace([(0, address, is_write)])])
    return Kernel(0, [wg])


def two_wg_kernel(addr_a, addr_b):
    return Kernel(0, [
        Workgroup(0, 0, [WavefrontTrace([(0, addr_a, False)])]),
        Workgroup(1, 0, [WavefrontTrace([(0, addr_b, False)])]),
    ])


@pytest.fixture
def machine():
    return Machine(tiny_system(), "baseline")


def test_first_touch_triggers_fault_and_migration(machine):
    machine.run([single_access_kernel(0x100000)])
    page = 0x100000 // 4096
    assert machine.page_table.location(page) == 0
    assert machine.access_path.kind_counts[AccessKind.FAULT_MIGRATE] == 1
    assert machine.shootdowns.cpu_shootdowns == 1


def test_translation_cached_after_migration():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    wg = Workgroup(0, 0, [WavefrontTrace([(0, addr, False), (10, addr + 64, False)])])
    machine.run([Kernel(0, [wg])])
    # Second access to the same page hits the L1 TLB.
    assert machine.access_path.l1_tlb_hits == 1
    assert machine.access_path.iommu_trips == 1


def test_second_gpu_uses_remote_dca():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    # WG0 -> GPU0 first-touches the page; WG1 -> GPU1 must use DCA.
    k0 = Kernel(0, [Workgroup(0, 0, [WavefrontTrace([(0, addr, False)])]),
                    Workgroup(1, 0, [WavefrontTrace([(0, 0x900000, False)])])])
    k1 = Kernel(1, [Workgroup(2, 1, [WavefrontTrace([(0, 0x900000, False)])]),
                    Workgroup(3, 1, [WavefrontTrace([(0, addr, False)])])])
    machine.run([k0, k1])
    assert machine.access_path.kind_counts[AccessKind.REMOTE_DCA] >= 1
    # Page stays pinned where first touch put it.
    assert machine.page_table.location(addr // 4096) == 0


def test_remote_translations_are_not_cached():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    k0 = Kernel(0, [Workgroup(0, 0, [WavefrontTrace([(0, addr, False)])]),
                    Workgroup(1, 0, [WavefrontTrace([(0, 0x900000, False)])])])
    # GPU1 accesses GPU0's page twice; both must walk the IOMMU.
    k1 = Kernel(1, [Workgroup(2, 1, [WavefrontTrace([(0, 0x900000 + 64, False)])]),
                    Workgroup(3, 1, [WavefrontTrace([(0, addr, False), (10, addr + 64, False)])])])
    machine.run([k0, k1])
    gpu1 = machine.gpus[1]
    remote_page = addr // 4096
    assert not gpu1.l2_tlb.lookup(remote_page)


def test_concurrent_faults_on_same_page_share_one_migration():
    machine = Machine(tiny_system(), "baseline")
    addr = 0x100000
    kernel = two_wg_kernel(addr, addr + 64)  # both WGs fault the same page
    machine.run([kernel])
    assert machine.page_table.cpu_to_gpu_migrations == 1


def test_dftm_denial_serves_cpu_dca():
    machine = Machine(tiny_system(), "griffin")
    machine.run([single_access_kernel(0x100000)])
    page = 0x100000 // 4096
    # All GPUs tied at zero occupancy -> denied -> page stays on CPU.
    assert machine.page_table.location(page) == -1
    assert machine.page_table.entry(page).delayed_bit
    assert machine.access_path.kind_counts[AccessKind.CPU_DCA] == 1


def test_dftm_second_touch_migrates():
    machine = Machine(tiny_system(), "griffin")
    addr = 0x100000
    wg = Workgroup(0, 0, [WavefrontTrace([(0, addr, False), (10, addr + 64, False)])])
    machine.run([Kernel(0, [wg])])
    assert machine.page_table.location(addr // 4096) == 0


def test_kind_counts_total(machine):
    machine.run([two_wg_kernel(0x100000, 0x200000)])
    assert sum(machine.access_path.kind_counts.values()) == 2
