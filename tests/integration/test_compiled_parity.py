"""Golden-parity matrix for the compiled (C extension) engine backend.

Every pinned grid point of ``tests/golden_parity.json`` — the dumps
generated on the pure-Python heap oracle — must reproduce byte-for-byte
when the same cell runs with ``engine_backend="compiled"``.  This is the
contract that licenses the C event core: it may only be faster, never
different.

Skipped wholesale when ``repro.sim._ckernel`` is not built; the
extension-less leg of CI runs the same goldens on the heap backend via
``tests/property/test_perf_parity.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.harness.io import result_to_dict
from repro.harness.runner import run_workload
from repro.sim.backends import BACKEND_ENV
from repro.sim.compiled import is_available

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from gen_golden_parity import PARITY_GRID, _CONFIGS, PARITY_FAULTS  # noqa: E402

pytestmark = pytest.mark.skipif(
    not is_available(), reason="repro.sim._ckernel extension not built"
)

_GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden_parity.json"
GOLDENS = json.loads(_GOLDEN_PATH.read_text())


@pytest.fixture(autouse=True)
def _pin_backend_to_config(monkeypatch):
    """The env override must not turn the compiled leg into whatever
    backend an outer CI job selected — the config is the subject here."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_compiled_matches_heap_golden(key):
    """Each golden cell is byte-identical under the compiled backend."""
    spec = next(row for row in PARITY_GRID if row[0] == key)
    _, workload, policy, config_name, scale, seed, faulted = spec
    config = _CONFIGS[config_name]().with_engine_backend("compiled")
    result = run_workload(
        workload, policy, config=config, scale=scale, seed=seed,
        faults=PARITY_FAULTS if faulted else None,
    )
    current = result_to_dict(result)
    golden = GOLDENS[key]
    assert current == golden, (
        f"RunResult for {key} diverged between the compiled event core "
        "and the heap-oracle golden; the C kernel must be "
        "semantics-preserving (see docs/performance.md)"
    )
    assert (json.dumps(current, sort_keys=True)
            == json.dumps(golden, sort_keys=True))
