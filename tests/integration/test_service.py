"""End-to-end tests for ``repro serve``: parity, dedupe, robustness.

The contract: anything the service computes is byte-identical to serial
``Sweep.run()``; anything it has computed before is answered from the
fingerprint cache without touching the simulator; and every failure
mode (over-admission, deadlines, dying fleets, SIGTERM) degrades the
request or flips to cache-only mode — never wedges the service or
strands a lease.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.harness.io import SweepResultCache, sweep_result_to_dict
from repro.harness.queue import QueueSettings, SweepQueue
from repro.harness.sweep import plan_queue_cells, sweep_from_spec
from repro.harness.worker import _CTX
from repro.service.app import ExperimentService

SPEC4 = {
    "workloads": ["MT"],
    "policies": ["griffin", "griffin_flush"],
    "configs": {"tiny": {"preset": "tiny", "gpus": 2}},
    "hypers": {"default": {},
               "eager": {"min_pages_per_source": 1, "lambda_d": 1.5}},
    "scale": 0.008, "seed": 5,
}
SPEC2 = {
    "workloads": ["MT"],
    "policies": ["griffin", "griffin_flush"],
    "configs": {"tiny": {"preset": "tiny", "gpus": 2}},
    "scale": 0.008, "seed": 5,
}
SPEC1 = {
    "workloads": ["MT"],
    "policies": ["baseline"],
    "configs": {"tiny": {"preset": "tiny", "gpus": 2}},
    "scale": 0.008, "seed": 5,
}


def _run_serial(spec):
    sweep, params = sweep_from_spec(spec)
    return sweep.run(
        scale=params["scale"], seed=params["seed"],
        max_events_per_run=params["max_events_per_run"],
        stall_threshold=params["stall_threshold"],
    )


@pytest.fixture(scope="module")
def oracle4():
    return _run_serial(SPEC4)


@pytest.fixture(scope="module")
def oracle2():
    return _run_serial(SPEC2)


@pytest.fixture(scope="module")
def oracle1():
    return _run_serial(SPEC1)


def _start(root, **kwargs) -> ExperimentService:
    kwargs.setdefault("poll_interval", 0.05)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_duration", 10.0)
    service = ExperimentService(root, **kwargs)
    service.start_background()
    return service


def _request(port, method, path, body=None, timeout=600.0):
    """One HTTP request; NDJSON responses decode to an event list."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        head = {k.lower(): v for k, v in resp.getheaders()}
        if head.get("content-type", "").startswith("application/x-ndjson"):
            payload = [json.loads(line) for line in
                       raw.decode().splitlines()]
        else:
            try:
                payload = json.loads(raw)
            except (ValueError, UnicodeDecodeError):
                payload = raw
        return resp.status, payload, head
    finally:
        conn.close()


def _submit(port, spec, timeout=600.0):
    return _request(port, "POST", "/sweeps", body=json.dumps(spec),
                    timeout=timeout)


def _dump(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _queue_dirs(root) -> list:
    return sorted(p for p in Path(root).glob("queues/*/q*") if p.is_dir())


def _warm_cache(root, spec, oracle) -> None:
    """Pre-populate the service cache as a finished run would have."""
    from repro.perf.fingerprint import code_fingerprint

    sweep, params = sweep_from_spec(spec)
    grid = list(sweep._grid(params["scale"], params["seed"],
                            params["max_events_per_run"],
                            params["stall_threshold"], None, None))
    cache = SweepResultCache(Path(root) / "cache")
    for key, _args, fingerprint, _gfp in plan_queue_cells(
            grid, code_fingerprint()):
        cache.store(fingerprint, oracle.points[key])


def _noop() -> None:
    """Target for crash-fleet worker processes: exit immediately."""


def _crashing_worker_factory(queue_dir):
    proc = _CTX.Process(target=_noop)
    proc.start()
    return proc


class TestServiceParity:
    def test_stream_executes_then_cache_answers_identically(
            self, tmp_path, oracle4):
        service = _start(tmp_path / "root")
        try:
            status, events, _ = _submit(service.port, SPEC4)
            assert status == 200
            assert events[0]["event"] == "accepted"
            assert events[0]["total"] == 4
            assert events[0]["cached"] == 0 and events[0]["enqueued"] == 4
            cells = [e for e in events if e["event"] == "cell"]
            assert len(cells) == 4
            assert all(e["status"] == "done" for e in cells)
            assert events[-1] == {"event": "done", "state": "done",
                                  "cached": 0, "enqueued": 4}

            digest = events[0]["digest"]
            status, result, _ = _request(
                service.port, "GET", f"/sweeps/{digest}/result")
            assert status == 200
            assert _dump(result) == _dump(sweep_result_to_dict(oracle4))

            # Identical resubmission: answered entirely from cache —
            # nothing enqueued, no simulator involvement, same bytes.
            status, events2, _ = _submit(service.port, SPEC4)
            assert status == 200
            assert events2[0]["cached"] == 4 and events2[0]["enqueued"] == 0
            assert events2[0]["state"] == "done"
            status, result2, _ = _request(
                service.port, "GET", f"/sweeps/{digest}/result")
            assert _dump(result2) == _dump(sweep_result_to_dict(oracle4))
            assert len(_queue_dirs(tmp_path / "root")) == 1

            status, health, _ = _request(service.port, "GET", "/healthz")
            assert status == 200
            assert health["breaker"]["state"] == "closed"
            assert health["admission"]["in_flight_cells"] == 0
        finally:
            service.stop_background()

    def test_result_conflicts_while_running_and_404s_unknown(self, tmp_path):
        service = _start(tmp_path / "root")
        try:
            status, payload, _ = _request(
                service.port, "GET", "/sweeps/deadbeef/result")
            assert status == 404
            status, payload, _ = _request(service.port, "GET", "/nope")
            assert status == 404
            status, payload, _ = _request(
                service.port, "POST", "/sweeps", body=json.dumps(
                    {"workloads": ["MT"], "policies": ["warp_drive"]}))
            assert status == 400 and "warp_drive" in payload["error"]
        finally:
            service.stop_background()


class TestDuplicateSubmissions:
    def test_concurrent_identical_specs_share_one_execution(
            self, tmp_path, oracle2):
        service = _start(tmp_path / "root")
        try:
            results = [None, None]

            def submit(slot):
                results[slot] = _submit(service.port, SPEC2)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            for status, events, _ in results:
                assert status == 200
                assert events[-1]["state"] == "done"
            digests = {r[1][0]["digest"] for r in results}
            assert len(digests) == 1  # canonicalized to one submission

            # One execution total: a single queue directory, and every
            # cell ran exactly once (attempts == 1).
            dirs = _queue_dirs(tmp_path / "root")
            assert len(dirs) == 1
            rows = SweepQueue.open(dirs[0]).rows()
            assert [row[1] for row in rows] == ["done", "done"]
            assert [row[4] for row in rows] == [1, 1]

            (digest,) = digests
            status, result, _ = _request(
                service.port, "GET", f"/sweeps/{digest}/result")
            assert _dump(result) == _dump(sweep_result_to_dict(oracle2))
        finally:
            service.stop_background()


class TestBackpressure:
    def test_over_budget_submission_sheds_with_429(self, tmp_path):
        service = _start(tmp_path / "root", max_in_flight_cells=1,
                         retry_after=7.0)
        try:
            status, payload, headers = _submit(service.port, SPEC2)
            assert status == 429
            assert "retry-after" in headers
            assert int(headers["retry-after"]) >= 7
            assert "budget" in payload["error"]
            # The refusal held nothing: the budget is still free.
            status, health, _ = _request(service.port, "GET", "/healthz")
            assert health["admission"]["in_flight_cells"] == 0
        finally:
            service.stop_background()


class TestDeadline:
    def test_deadline_cancels_cleanly_then_resubmission_resumes(
            self, tmp_path, oracle4):
        service = _start(tmp_path / "root")
        try:
            spec = dict(SPEC4, deadline_s=0.01)
            status, events, _ = _submit(service.port, spec)
            assert status == 200
            assert any(e["event"] == "deadline" for e in events)
            assert events[-1]["state"] == "cancelled"
            assert events[-1]["reason"] == "deadline"

            # The cancelled fleet left nothing stranded: every lease was
            # committed or released during the graceful drain.
            for queue_dir in _queue_dirs(tmp_path / "root"):
                health = SweepQueue.open(queue_dir).health()
                assert health.stats.leased == 0

            # An identical resubmission (the deadline is not part of the
            # spec digest) resumes from whatever completed and finishes.
            status, events2, _ = _submit(service.port, SPEC4)
            assert status == 200
            assert events2[0]["digest"] == events[0]["digest"]
            assert events2[-1]["state"] == "done"
            assert events2[0]["cached"] + events2[0]["enqueued"] == 4

            status, result, _ = _request(
                service.port, "GET", f"/sweeps/{events[0]['digest']}/result")
            assert status == 200
            assert _dump(result) == _dump(sweep_result_to_dict(oracle4))
        finally:
            service.stop_background()


class TestCircuitBreaker:
    def test_dead_fleet_opens_breaker_to_cache_only_mode(
            self, tmp_path, oracle1):
        service = _start(tmp_path / "root", breaker_threshold=2,
                         breaker_reset=300.0,
                         worker_factory=_crashing_worker_factory)
        try:
            _warm_cache(tmp_path / "root", SPEC1, oracle1)

            # Workers die instantly: the submission degrades and the
            # repeated fleet failures open the circuit.
            status, events, _ = _submit(service.port, SPEC2)
            assert status == 200
            assert events[-1]["state"] == "degraded"
            status, health, _ = _request(service.port, "GET", "/healthz")
            assert health["breaker"]["state"] == "open"

            # Compute-needing submissions are refused with Retry-After...
            status, payload, headers = _submit(service.port, SPEC4)
            assert status == 503
            assert "retry-after" in headers
            assert "cache" in payload["error"]

            # ...but fully cached specs are still served, byte-identical.
            status, events2, _ = _submit(service.port, SPEC1)
            assert status == 200
            assert events2[0]["cached"] == 1 and events2[0]["enqueued"] == 0
            status, result, _ = _request(
                service.port, "GET",
                f"/sweeps/{events2[0]['digest']}/result")
            assert _dump(result) == _dump(sweep_result_to_dict(oracle1))
        finally:
            service.stop_background()


class TestGracefulShutdown:
    def test_sigterm_drain_releases_leases_and_resumes_after_restart(
            self, tmp_path, oracle2):
        root = tmp_path / "root"
        service = _start(root)
        response = {}

        def submit():
            response["value"] = _submit(service.port, SPEC2)

        thread = threading.Thread(target=submit)
        try:
            thread.start()
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _status, health, _ = _request(service.port, "GET", "/healthz")
                running = [s for s in health["submissions"].values()
                           if s["state"] == "running"]
                if running and health["worker_pids"]:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("submission never reached the running fleet")
        finally:
            service.stop_background()  # graceful drain, like SIGTERM
            thread.join(timeout=60)

        status, events, _ = response["value"]
        assert status == 200
        assert events[-1]["event"] == "done"
        assert events[-1]["state"] in ("cancelled", "done")
        if events[-1]["state"] == "cancelled":
            assert events[-1]["reason"] == "shutdown"

        for queue_dir in _queue_dirs(root):
            assert SweepQueue.open(queue_dir).health().stats.leased == 0

        # A fresh service on the same root resumes from the harvested
        # cache and converges to the serial bytes.
        service2 = _start(root)
        try:
            status, events2, _ = _submit(service2.port, SPEC2)
            assert status == 200
            assert events2[-1]["state"] == "done"
            status, result, _ = _request(
                service2.port, "GET",
                f"/sweeps/{events2[0]['digest']}/result")
            assert _dump(result) == _dump(sweep_result_to_dict(oracle2))
        finally:
            service2.stop_background()


def _quarantined_queue(queues_root: Path) -> Path:
    """Fabricate a drained queue with one quarantined cell + bundle."""
    from tests.unit.test_queue import make_cells, make_result

    queue_dir = queues_root / "feedc0defeedc0de" / "q000"
    queue = SweepQueue.create(
        queue_dir, make_cells(2),
        QueueSettings(lease_duration=10.0, max_attempts=3,
                      backoff_base=1.0, backoff_cap=4.0),
    )
    lease = queue.claim("w1", now=0.0)
    queue.complete(lease.idx, "w1", make_result())
    for now in (0.0, 10.0, 100.0):
        lease = queue.claim("w1", now=now)
        queue.fail(lease.idx, "w1", "RuntimeError", "flaky node",
                   retryable=True, now=now)
    assert queue.stats().quarantined == 1
    return queue_dir


class TestBundlesEndpoint:
    def test_quarantine_bundles_are_listed_and_retrievable(self, tmp_path):
        root = tmp_path / "root"
        (root / "queues").mkdir(parents=True)
        _quarantined_queue(root / "queues")
        service = _start(root)
        try:
            status, payload, _ = _request(service.port, "GET", "/bundles")
            assert status == 200
            assert len(payload["bundles"]) == 1
            bundle_id = payload["bundles"][0]
            assert bundle_id.startswith("feedc0defeedc0de/q000/cell-")

            status, bundle, _ = _request(
                service.port, "GET", f"/bundles/{bundle_id}")
            assert status == 200
            assert "manifest.json" in bundle["files"]
            assert bundle["manifest"]["kind"] == "quarantine"
            assert bundle["manifest"]["failure"]["attempts"] == 3

            status, raw, headers = _request(
                service.port, "GET", f"/bundles/{bundle_id}/manifest.json")
            assert status == 200
            assert headers["content-type"] == "application/octet-stream"
            assert raw == bundle["manifest"]  # same JSON, served verbatim

            status, _payload, _ = _request(
                service.port, "GET", "/bundles/a/../../../etc/passwd")
            assert status == 404
            status, _payload, _ = _request(
                service.port, "GET", "/bundles/nope/q000/cell-00000")
            assert status == 404
        finally:
            service.stop_background()


class TestQueueStatusCLI:
    def test_exit_codes_and_rendering(self, tmp_path, capsys):
        assert main(["queue", "status", str(tmp_path / "missing")]) == 2

        queue_dir = _quarantined_queue(tmp_path / "queues")
        assert main(["queue", "status", str(queue_dir)]) == 1
        out = capsys.readouterr().out
        assert "1 quarantined" in out and "1 done" in out

        assert main(["queue", "status", str(queue_dir), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"]["quarantined"] == 1
        assert payload["drained"] is True  # quarantined is terminal

    def test_healthy_leased_queue_exits_zero_and_shows_lease(
            self, tmp_path, capsys):
        from tests.unit.test_queue import make_cells

        queue = SweepQueue.create(
            tmp_path / "q", make_cells(1),
            QueueSettings(lease_duration=10.0, max_attempts=3),
        )
        queue.claim("host:1:abc")
        assert main(["queue", "status", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "1 leased" in out and "host:1:abc" in out
