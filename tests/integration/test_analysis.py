"""Integration tests for the post-run analysis package."""

import pytest

from repro.analysis import (
    MigrationVerdict,
    audit_migrations,
    detect_phases,
    profile_sharing,
)
from repro.config.presets import tiny_system
from repro.harness.runner import run_workload


@pytest.fixture(scope="module")
def sc_run():
    return run_workload("SC", "griffin", config=tiny_system(), scale=0.008,
                        seed=5, keep_timeline=True, watch_pages="all")


@pytest.fixture(scope="module")
def mt_run():
    return run_workload("MT", "griffin", config=tiny_system(), scale=0.008,
                        seed=5, keep_timeline=True, watch_pages="all")


class TestMigrationAudit:
    def test_requires_timeline(self):
        r = run_workload("ST", "griffin", config=tiny_system(), scale=0.004, seed=5)
        with pytest.raises(ValueError, match="keep_timeline"):
            audit_migrations(r)

    def test_counts_only_inter_gpu_moves(self, sc_run):
        audit = audit_migrations(sc_run)
        inter = sum(1 for e in sc_run.migration_events if e.src >= 0 and e.dst >= 0)
        assert audit.total == inter

    def test_verdicts_partition_the_total(self, sc_run):
        audit = audit_migrations(sc_run)
        assert sum(audit.verdicts.values()) == audit.total

    def test_sc_migrations_mostly_justified(self, sc_run):
        # SC's ownership epochs make its migrations pay off: the windowed
        # audit grades the clear majority as landing on the page's
        # post-move dominant accessor.
        audit = audit_migrations(sc_run)
        if audit.total:
            assert audit.justified_fraction >= 0.5

    def test_pr_migrations_mostly_not_justified(self):
        # PR's bursts do not recur; migrations chase them fruitlessly
        # (the paper's explanation of the PR slowdown).
        run = run_workload("PR", "griffin", config=tiny_system(),
                           scale=0.008, seed=5, keep_timeline=True,
                           watch_pages="all")
        audit = audit_migrations(run)
        if audit.total >= 10:
            assert audit.justified_fraction <= 0.5

    def test_render(self, sc_run):
        out = audit_migrations(sc_run).render()
        assert "migrations audited" in out
        assert "justified" in out

    def test_per_page_moves_sum(self, sc_run):
        audit = audit_migrations(sc_run)
        assert sum(audit.per_page_moves.values()) == audit.total


class TestSharingProfile:
    def test_requires_timeline(self):
        r = run_workload("ST", "griffin", config=tiny_system(), scale=0.004, seed=5)
        with pytest.raises(ValueError, match="keep_timeline"):
            profile_sharing(r)

    def test_fractions_are_consistent(self, sc_run):
        profile = profile_sharing(sc_run)
        assert profile.total_pages > 0
        assert sum(profile.pages_by_degree.values()) == profile.total_pages
        assert 0.0 <= profile.private_fraction <= 1.0
        assert 0.0 <= profile.fully_shared_fraction <= 1.0
        assert 0.0 <= profile.gini <= 1.0

    def test_mt_has_high_touch_once_fraction(self, mt_run):
        profile = profile_sharing(mt_run)
        assert profile.touch_once_fraction >= 0.2

    def test_render(self, sc_run):
        out = profile_sharing(sc_run).render()
        assert "Pages touched" in out
        assert "gini" in out


class TestPhaseDetection:
    def test_no_migrations_is_all_quiet(self):
        r = run_workload("FIR", "griffin_no_dpc", config=tiny_system(),
                         scale=0.004, seed=5)
        r2 = r
        # Remove CPU->GPU placements to simulate a migration-free run.
        r2.migration_events = []
        report = detect_phases(r2)
        assert report.num_bursts == 0
        assert report.quiet_fraction == 1.0

    def test_bursts_cover_all_events(self, sc_run):
        report = detect_phases(sc_run)
        covered = sum(count for _, _, count in report.bursts)
        assert covered == len(sc_run.migration_events)

    def test_bursts_are_time_ordered_and_disjoint(self, sc_run):
        report = detect_phases(sc_run)
        for (s1, e1, _), (s2, e2, _) in zip(report.bursts, report.bursts[1:]):
            assert e1 <= s2

    def test_small_gap_merges_everything(self, sc_run):
        report = detect_phases(sc_run, gap_cycles=float("inf"))
        assert report.num_bursts == 1

    def test_render(self, sc_run):
        out = detect_phases(sc_run).render()
        assert "burst" in out
