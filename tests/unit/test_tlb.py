"""Unit tests for the set-associative TLB."""

from repro.config.system import TLBConfig
from repro.vm.tlb import TLB


def make_tlb(sets=1, ways=4):
    return TLB("t", TLBConfig(sets, ways))


def test_miss_then_hit():
    tlb = make_tlb()
    assert not tlb.lookup(5)
    tlb.insert(5, 0)
    assert tlb.lookup(5)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_lru_eviction_on_overflow():
    tlb = make_tlb(1, 2)
    tlb.insert(1, 0)
    tlb.insert(2, 0)
    tlb.insert(3, 0)  # evicts 1
    assert not tlb.lookup(1)
    assert tlb.lookup(2)
    assert tlb.lookup(3)


def test_lookup_refreshes_lru_order():
    tlb = make_tlb(1, 2)
    tlb.insert(1, 0)
    tlb.insert(2, 0)
    tlb.lookup(1)          # 1 becomes MRU
    tlb.insert(3, 0)       # evicts 2
    assert tlb.lookup(1)
    assert not tlb.lookup(2)


def test_reinsert_updates_entry_without_eviction():
    tlb = make_tlb(1, 2)
    tlb.insert(1, 0)
    tlb.insert(2, 0)
    tlb.insert(1, 0)
    assert tlb.occupancy() == 2


def test_set_indexing_isolates_sets():
    tlb = make_tlb(2, 1)
    tlb.insert(0, 0)  # set 0
    tlb.insert(1, 0)  # set 1
    assert tlb.lookup(0)
    assert tlb.lookup(1)


def test_invalidate_pages_targeted():
    tlb = make_tlb(1, 8)
    for p in range(4):
        tlb.insert(p, 0)
    dropped = tlb.invalidate_pages([1, 3, 99])
    assert dropped == 2
    assert not tlb.lookup(1)
    assert tlb.lookup(0)
    assert tlb.invalidations == 2


def test_flush_all():
    tlb = make_tlb(2, 4)
    for p in range(6):
        tlb.insert(p, 0)
    dropped = tlb.flush_all()
    assert dropped == 6
    assert tlb.occupancy() == 0


def test_hit_rate():
    tlb = make_tlb()
    tlb.insert(1, 0)
    tlb.lookup(1)
    tlb.lookup(2)
    assert tlb.hit_rate() == 0.5
    assert tlb.accesses == 2


def test_hit_rate_zero_without_accesses():
    assert make_tlb().hit_rate() == 0.0


def test_paper_l1_geometry_capacity():
    tlb = TLB("l1", TLBConfig(1, 32))
    for p in range(40):
        tlb.insert(p, 0)
    assert tlb.occupancy() == 32
