"""Unit tests for the IOMMU translation path."""

import pytest

from repro.config.system import IOMMUConfig, LinkConfig
from repro.interconnect.arbiter import BiasedArbiter
from repro.interconnect.link import InterconnectFabric
from repro.mem.access import MemoryTransaction
from repro.sim.engine import Engine
from repro.vm.iommu import IOMMU


@pytest.fixture
def setup():
    engine = Engine()
    fabric = InterconnectFabric(LinkConfig(bandwidth_gbps=32.0, latency=100), 2)
    arbiter = BiasedArbiter(2)
    iommu = IOMMU(engine, IOMMUConfig(num_walkers=2, walk_latency=200),
                  fabric, arbiter)
    resolved = []
    iommu.resolver = lambda txn, walk_done, cb: resolved.append(
        (txn, walk_done, engine.now)
    )
    return engine, iommu, resolved


def txn(gpu=0, page=5):
    t = MemoryTransaction(gpu_id=gpu, se_id=0, cu_id=0,
                          address=page * 4096, is_write=False, issue_time=0.0)
    t.page = page
    return t


def test_requires_resolver():
    engine = Engine()
    fabric = InterconnectFabric(LinkConfig(), 2)
    iommu = IOMMU(engine, IOMMUConfig(), fabric, BiasedArbiter(2))
    with pytest.raises(RuntimeError, match="resolver"):
        iommu.translate(txn(), 0, lambda *a: None)


def test_translation_pays_link_and_walk(setup):
    engine, iommu, resolved = setup
    iommu.translate(txn(), 0, lambda *a: None)
    engine.run()
    assert len(resolved) == 1
    _, walk_done, fired_at = resolved[0]
    # 100 link latency + 200 walk at minimum.
    assert walk_done >= 300
    assert fired_at == pytest.approx(walk_done)


def test_walkers_limit_concurrency(setup):
    engine, iommu, resolved = setup
    for i in range(4):
        iommu.translate(txn(page=i), 0, lambda *a: None)
    engine.run()
    walk_dones = sorted(w for _, w, _ in resolved)
    # 2 walkers: jobs 3 and 4 queue behind 1 and 2.
    assert walk_dones[2] >= walk_dones[0] + 200
    assert walk_dones[3] >= walk_dones[1] + 200


def test_translation_request_counter(setup):
    engine, iommu, resolved = setup
    iommu.translate(txn(), 0, lambda *a: None)
    iommu.translate(txn(gpu=1), 0, lambda *a: None)
    engine.run()
    assert iommu.stat("translation_requests") == 2


def test_arbiter_grants_recorded(setup):
    engine, iommu, resolved = setup
    iommu.translate(txn(gpu=1), 0, lambda *a: None)
    engine.run()
    assert iommu.arbiter.grants[1] == 1


def test_request_time_respected(setup):
    engine, iommu, resolved = setup
    iommu.translate(txn(), 1000, lambda *a: None)
    engine.run()
    _, walk_done, _ = resolved[0]
    assert walk_done >= 1300


def test_reply_time_crosses_fabric_back(setup):
    engine, iommu, resolved = setup
    reply = iommu.reply_time(500, 1)
    assert reply >= 600  # 100 cycles of latency at least
