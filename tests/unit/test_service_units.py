"""Unit tests for the service guards and the sweep wire format.

Everything here runs without sockets or workers: the admission budget,
deadline, and circuit breaker take injectable clocks, and
``sweep_from_spec`` is pure validation.
"""

from __future__ import annotations

import pytest

from repro.harness.sweep import (
    SpecError,
    partition_cached_cells,
    sweep_from_spec,
)
from repro.service.admission import (
    AdmissionController,
    AdmissionLimitExceeded,
    CircuitBreaker,
    Deadline,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSweepFromSpec:
    def test_minimal_spec_builds_default_axes(self):
        sweep, params = sweep_from_spec(
            {"workloads": ["MT"], "policies": ["baseline"]}
        )
        assert sweep.workloads == ["MT"] and sweep.policies == ["baseline"]
        assert sweep.configs is None and sweep.size() == 1
        assert params["scale"] == pytest.approx(0.015)
        assert params["seed"] == 3
        assert params["max_events_per_run"] is None
        assert params["stall_threshold"] == 1_000_000

    def test_full_spec_round_trips_every_axis(self):
        sweep, params = sweep_from_spec({
            "workloads": ["MT", "SC"],
            "policies": ["baseline", "griffin"],
            "configs": {"tiny": {"preset": "tiny", "gpus": 2,
                                 "fabric": "pcie"}},
            "hypers": {"eager": {"min_pages_per_source": 1}},
            "faults": {"chaos": {"migration_drop_rate": 0.3}, "none": None},
            "scale": 0.008, "seed": 5, "max_events": 1000,
        })
        assert sweep.size() == 2 * 2 * 1 * 1 * 2
        assert sweep.configs["tiny"].num_gpus == 2
        assert sweep.hypers["eager"].min_pages_per_source == 1
        assert sweep.faults["chaos"].migration_drop_rate == pytest.approx(0.3)
        assert sweep.faults["none"] is None
        assert params["scale"] == pytest.approx(0.008)
        assert params["max_events_per_run"] == 1000

    @pytest.mark.parametrize("spec, fragment", [
        ("not a dict", "JSON object"),
        ({}, "'workloads'"),
        ({"workloads": ["MT"]}, "'policies'"),
        ({"workloads": ["NOPE"], "policies": ["baseline"]}, "NOPE"),
        ({"workloads": ["MT"], "policies": ["warp_drive"]}, "warp_drive"),
        ({"workloads": ["MT"], "policies": ["baseline"],
          "bogus_key": 1}, "bogus_key"),
        ({"workloads": ["MT"], "policies": ["baseline"],
          "configs": {"x": {"preset": "galactic"}}}, "galactic"),
        ({"workloads": ["MT"], "policies": ["baseline"],
          "hypers": {"h": {"warp_factor": 9}}}, "warp_factor"),
        ({"workloads": ["MT"], "policies": ["baseline"],
          "faults": {"f": {"gremlins": 3}}}, "gremlins"),
        ({"workloads": ["MT"], "policies": ["baseline"],
          "scale": -1.0}, "scale"),
        ({"workloads": ["MT"], "policies": ["baseline"],
          "seed": "five"}, "seed"),
    ])
    def test_bad_specs_rejected_with_named_field(self, spec, fragment):
        with pytest.raises(SpecError, match=fragment):
            sweep_from_spec(spec)

    def test_partition_against_empty_cache(self, tmp_path):
        from repro.harness.io import SweepResultCache
        from repro.harness.sweep import plan_queue_cells

        sweep, params = sweep_from_spec(
            {"workloads": ["MT"], "policies": ["baseline", "griffin"]}
        )
        grid = list(sweep._grid(params["scale"], params["seed"],
                                None, params["stall_threshold"], None, None))
        cells = plan_queue_cells(grid, "codefp")
        cached, missing = partition_cached_cells(
            cells, SweepResultCache(tmp_path)
        )
        assert cached == [] and missing == cells


class TestAdmissionController:
    def test_admits_until_budget_then_429s(self):
        ctl = AdmissionController(max_in_flight_cells=10, retry_after=2.5)
        ctl.admit(6)
        ctl.admit(4)
        assert ctl.in_flight == 10
        with pytest.raises(AdmissionLimitExceeded) as err:
            ctl.admit(1)
        assert err.value.retry_after == pytest.approx(2.5)
        assert ctl.in_flight == 10  # refusal holds nothing

    def test_release_reopens_budget(self):
        ctl = AdmissionController(max_in_flight_cells=4)
        ctl.admit(4)
        ctl.release(3)
        ctl.admit(2)
        assert ctl.in_flight == 3

    def test_release_never_goes_negative(self):
        ctl = AdmissionController(max_in_flight_cells=4)
        ctl.release(99)
        assert ctl.in_flight == 0

    def test_zero_cell_submission_always_admitted(self):
        ctl = AdmissionController(max_in_flight_cells=1)
        ctl.admit(1)
        ctl.admit(0)  # fully cached submissions cost nothing


class TestDeadline:
    def test_none_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        assert deadline.remaining == float("inf")

    def test_expires_on_schedule(self):
        clock = FakeClock(100.0)
        deadline = Deadline(5.0, clock=clock)
        clock.advance(4.9)
        assert not deadline.expired
        clock.advance(0.2)
        assert deadline.expired and deadline.remaining < 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=30.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              reset_after=reset, clock=clock), clock

    def test_closed_until_threshold(self):
        breaker, _clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN and not breaker.allow()

    def test_success_resets_the_count(self):
        breaker, _clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_trial(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()        # the trial
        assert not breaker.allow()    # everyone else still refused

    def test_trial_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() and breaker.allow()

    def test_trial_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after == pytest.approx(30.0)

    def test_aborted_trial_returns_to_half_open(self):
        # A deadline-cancelled trial is not a fleet verdict: the next
        # compute request must get its own trial rather than finding the
        # circuit pinned cache-only forever.
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.abort_trial()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()

    def test_retry_after_counts_down(self):
        breaker, clock = self.make(reset=10.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after == pytest.approx(6.0)
        assert breaker.to_dict()["state"] == "open"
