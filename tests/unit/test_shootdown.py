"""Unit tests for TLB-shootdown accounting."""

from repro.vm.shootdown import ShootdownAccounting


def test_starts_empty():
    acc = ShootdownAccounting()
    assert acc.total == 0


def test_cpu_batch_counts_as_one_round():
    acc = ShootdownAccounting()
    acc.record_cpu(batch_size=8)
    assert acc.cpu_shootdowns == 1
    assert acc.total == 1


def test_fcfs_counts_one_round_per_fault():
    acc = ShootdownAccounting()
    for _ in range(5):
        acc.record_cpu(batch_size=1)
    assert acc.cpu_shootdowns == 5


def test_gpu_rounds_and_entries():
    acc = ShootdownAccounting()
    acc.record_gpu(2, entries_invalidated=7)
    acc.record_gpu(2, entries_invalidated=3)
    acc.record_gpu(0, entries_invalidated=1)
    assert acc.gpu_shootdowns == 3
    assert acc.gpu_entries_invalidated == 11
    assert acc.per_gpu == {2: 2, 0: 1}


def test_total_sums_cpu_and_gpu():
    acc = ShootdownAccounting()
    acc.record_cpu()
    acc.record_gpu(1, 4)
    assert acc.total == 2


def test_cpu_pages_covered_accumulates_batch_sizes():
    acc = ShootdownAccounting()
    acc.record_cpu(batch_size=8)
    acc.record_cpu(batch_size=3)
    assert acc.cpu_shootdowns == 2
    assert acc.cpu_pages_covered == 11


def test_cpu_pages_covered_default_batch_is_one():
    acc = ShootdownAccounting()
    acc.record_cpu()
    assert acc.cpu_pages_covered == 1
    assert acc.gpu_shootdowns == 0
