"""Unit tests for the crossbar and the biased arbiter."""

from repro.interconnect.arbiter import BiasedArbiter
from repro.interconnect.xbar import Crossbar


class TestCrossbar:
    def test_traversal_pays_latency(self):
        x = Crossbar("x", latency=8)
        assert x.traverse(0) >= 8

    def test_traversal_counter(self):
        x = Crossbar("x", latency=8)
        x.traverse(0)
        x.traverse(10)
        assert x.traversals == 2

    def test_bandwidth_serializes_large_transfers(self):
        x = Crossbar("x", latency=0, bytes_per_cycle=64.0)
        a = x.traverse(0, 6400)
        b = x.traverse(0, 6400)
        assert b > a


class TestBiasedArbiter:
    def test_no_advantage_initially(self):
        arb = BiasedArbiter(4, bias=0.5)
        assert arb.advantage(0) == 0.0

    def test_winner_gains_head_start(self):
        arb = BiasedArbiter(4, bias=0.5)
        arb.grant(1)
        assert arb.advantage(1) < 0
        assert arb.advantage(0) == 0.0

    def test_momentum_reinforces(self):
        arb = BiasedArbiter(4, bias=0.5)
        for _ in range(10):
            arb.grant(2)
        heavy = arb.advantage(2)
        arb2 = BiasedArbiter(4, bias=0.5)
        arb2.grant(2)
        assert heavy < arb2.advantage(2)

    def test_momentum_decays_for_others(self):
        arb = BiasedArbiter(2, bias=1.0, decay=0.5)
        arb.grant(0)
        before = arb.advantage(0)
        arb.grant(1)
        after = arb.advantage(0)
        assert after > before  # advantage shrank (less negative)

    def test_effective_time_applies_advantage(self):
        arb = BiasedArbiter(2, bias=1.0)
        arb.grant(0)
        assert arb.effective_time(0, 100) < 100
        assert arb.effective_time(1, 100) == 100

    def test_grant_counters(self):
        arb = BiasedArbiter(2)
        arb.grant(0)
        arb.grant(0)
        arb.grant(1)
        assert arb.grants == [2, 1]
