"""Unit tests for the GPU-level drain controller (ACUD vs. flush)."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.gpu.gpu import GPU
from repro.gpu.wavefront import WavefrontTrace, Workgroup
from repro.sim.engine import Engine


@pytest.fixture
def gpu_setup():
    engine = Engine()
    cfg = tiny_system()
    holder = {}

    def issue_fn(txn, cb):
        txn.page = txn.address // cfg.page_size
        holder["gpu"].cu(txn.cu_id).note_translated(txn)
        engine.schedule(50, cb, txn, engine.now + 50)

    gpu = GPU(engine, 0, cfg.gpu, cfg.timing, GriffinHyperParams(),
              cfg.page_size, issue_fn, lambda wg: None)
    holder["gpu"] = gpu
    return engine, gpu


def start_access(engine, gpu, page, cu=0):
    wg = Workgroup(0, 0, [WavefrontTrace([(0, page * 4096, False)])])
    gpu.cu(cu).enqueue_workgroup(wg, 0)


def test_acud_drain_all_cus_report(gpu_setup):
    engine, gpu = gpu_setup
    drained = []
    gpu.drain_controller.drain_acud({99}, drained.append)
    engine.run()
    assert len(drained) == 1
    assert drained[0] >= gpu.timing.drain_request_cycles


def test_acud_waits_for_page_overlap(gpu_setup):
    engine, gpu = gpu_setup
    drained = []
    start_access(engine, gpu, page=5)
    engine.schedule(1, gpu.drain_controller.drain_acud, {5}, drained.append)
    engine.run()
    assert drained[0] >= 50  # waited for the in-flight access to land


def test_acud_ignores_unrelated_pages(gpu_setup):
    engine, gpu = gpu_setup
    drained = []
    start_access(engine, gpu, page=5)
    engine.schedule(1, gpu.drain_controller.drain_acud, {77}, drained.append)
    engine.run(until=40)
    assert drained  # completed before the unrelated access landed


def test_resume_all_lifts_pause(gpu_setup):
    engine, gpu = gpu_setup
    gpu.drain_controller.drain_acud(set(), lambda t: None)
    engine.run()
    assert all(cu.issue_paused for cu in gpu.all_cus())
    gpu.drain_controller.resume_all()
    assert not any(cu.issue_paused for cu in gpu.all_cus())


def test_flush_completes_and_counts(gpu_setup):
    engine, gpu = gpu_setup
    flushed = []
    gpu.drain_controller.drain_flush(flushed.append)
    engine.run()
    assert flushed
    assert gpu.drain_controller.stat("pipeline_flushes") == 1


def test_flush_costs_more_than_acud_with_inflight_work(gpu_setup):
    engine, gpu = gpu_setup
    times = {}
    start_access(engine, gpu, page=5, cu=0)
    start_access(engine, gpu, page=6, cu=1)
    engine.schedule(1, gpu.drain_controller.drain_flush,
                    lambda t: times.setdefault("flush", t))
    engine.run()

    engine2, gpu2 = gpu_setup[0], gpu_setup[1]  # fresh not needed; compare magnitudes
    assert times["flush"] >= 50 + gpu.timing.gpu_flush_cycles


def test_acud_stat_counter(gpu_setup):
    engine, gpu = gpu_setup
    gpu.drain_controller.drain_acud(set(), lambda t: None)
    engine.run()
    assert gpu.drain_controller.stat("acud_drains") == 1
