"""Unit tests for the ASCII chart renderers."""

from repro.metrics.chart import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_empty_returns_title(self):
        assert bar_chart({}, "T") == "T"

    def test_bars_scale_to_max(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.split("\n")
        assert lines[1].count("#") == 10  # b is the max
        assert lines[0].count("#") == 5

    def test_values_printed(self):
        out = bar_chart({"x": 1.234}, fmt="{:.1f}")
        assert "1.2" in out

    def test_labels_aligned(self):
        out = bar_chart({"a": 1.0, "long": 1.0})
        lines = out.split("\n")
        assert lines[0].index("#") == lines[1].index("#")

    def test_reference_marker_in_empty_region(self):
        out = bar_chart({"a": 0.5, "b": 2.0}, width=10, reference=1.0)
        a_line = out.split("\n")[0]
        assert "|" in a_line

    def test_zero_values_are_safe(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out and "b" in out

    def test_title_included(self):
        assert bar_chart({"a": 1.0}, title="Speedup").startswith("Speedup")


class TestGroupedBarChart:
    def test_empty(self):
        assert grouped_bar_chart({}, "T") == "T"

    def test_groups_and_series_rendered(self):
        out = grouped_bar_chart(
            {"MT": {"base": 1.0, "griffin": 2.5},
             "PR": {"base": 1.0, "griffin": 0.9}},
            width=10,
        )
        assert "MT:" in out and "PR:" in out
        assert "griffin" in out

    def test_shared_scale_across_groups(self):
        out = grouped_bar_chart(
            {"g1": {"s": 2.0}, "g2": {"s": 1.0}}, width=10
        )
        lines = [l for l in out.split("\n") if "#" in l]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
