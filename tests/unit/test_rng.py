"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import make_rng, stream_seed


def test_same_labels_same_seed():
    assert stream_seed(7, "a", 1) == stream_seed(7, "a", 1)


def test_different_labels_different_seed():
    assert stream_seed(7, "a") != stream_seed(7, "b")


def test_different_base_seed_different_stream():
    assert stream_seed(1, "a") != stream_seed(2, "a")


def test_make_rng_reproducible():
    a = make_rng(42, "wl", 3).integers(0, 1000, size=10)
    b = make_rng(42, "wl", 3).integers(0, 1000, size=10)
    assert (a == b).all()


def test_make_rng_streams_independent():
    a = make_rng(42, "x").integers(0, 1_000_000, size=4)
    b = make_rng(42, "y").integers(0, 1_000_000, size=4)
    assert (a != b).any()


def test_label_types_are_stringified():
    assert stream_seed(7, 1, "1") == stream_seed(7, "1", 1)
