"""Unit tests for the adaptive migration throttle."""

from repro.config.hyperparams import GriffinHyperParams
from repro.core.adaptive import AdaptiveMigrationController
from repro.core.classification import MigrationCandidate, PageClass
from repro.core.dpc import DynamicPageClassifier

NUM_GPUS = 4


def make():
    dpc = DynamicPageClassifier(GriffinHyperParams.calibrated(), NUM_GPUS)
    ctl = AdaptiveMigrationController(accumulate_periods=2)
    return dpc, ctl


def plan_for(pages_dsts):
    return {
        0: [MigrationCandidate(p, 0, d, PageClass.MOSTLY_DEDICATED, 1.0)
            for p, d in pages_dsts]
    }


def feed(dpc, page_counts):
    """page_counts: {page: {gpu: count}}."""
    rounds = [{} for _ in range(NUM_GPUS)]
    for page, per_gpu in page_counts.items():
        for g, c in per_gpu.items():
            rounds[g][page] = c
    dpc.update(rounds)


def test_starts_at_full_cadence():
    _, ctl = make()
    assert ctl.backoff == 1
    assert ctl.should_run_round()


def test_probation_budget_until_first_audit():
    _, ctl = make()
    assert ctl.page_budget() is not None
    ctl.rounds_audited = 1
    assert ctl.page_budget() is None


def test_hits_keep_full_cadence():
    dpc, ctl = make()
    ctl.note_round(plan_for([(1, 2)]))
    # The destination GPU keeps accessing the page.
    feed(dpc, {1: {2: 50}})
    ctl.audit(dpc)
    feed(dpc, {1: {2: 50}})
    ctl.audit(dpc)
    assert ctl.rounds_audited == 1
    assert ctl.hit_rate == 1.0
    assert ctl.backoff == 1
    assert ctl.corrections == []


def test_misses_double_backoff_and_issue_corrections():
    dpc, ctl = make()
    ctl.note_round(plan_for([(1, 2)]))
    # A different GPU dominates the page after the move.
    feed(dpc, {1: {0: 50}})
    ctl.audit(dpc)
    feed(dpc, {1: {0: 50}})
    ctl.audit(dpc)
    assert ctl.backoff == 2
    assert ctl.take_corrections() == [(1, 0)]
    assert ctl.take_corrections() == []  # drained


def test_untouched_pages_are_ungraded():
    dpc, ctl = make()
    ctl.note_round(plan_for([(1, 2)]))
    feed(dpc, {})
    ctl.audit(dpc)
    feed(dpc, {})
    ctl.audit(dpc)
    assert ctl.rounds_audited == 0
    assert ctl.backoff == 1


def test_backoff_skips_rounds():
    _, ctl = make()
    ctl.backoff = 4
    decisions = [ctl.should_run_round() for _ in range(8)]
    assert decisions == [True, False, False, False, True, False, False, False]
    assert ctl.rounds_skipped == 6


def test_recovery_halves_backoff():
    dpc, ctl = make()
    ctl.backoff = 4
    ctl.note_round(plan_for([(1, 2)]))
    feed(dpc, {1: {2: 50}})
    ctl.audit(dpc)
    feed(dpc, {1: {2: 50}})
    ctl.audit(dpc)
    assert ctl.backoff == 2


def test_backoff_capped():
    dpc, ctl = make()
    ctl.max_backoff = 4
    for _ in range(5):
        ctl.note_round(plan_for([(1, 2)]))
        feed(dpc, {1: {0: 50}})
        ctl.audit(dpc)
        feed(dpc, {1: {0: 50}})
        ctl.audit(dpc)
    assert ctl.backoff == 4


def test_backed_off_controller_keeps_probation_budget():
    _, ctl = make()
    ctl.rounds_audited = 3
    ctl.backoff = 4
    assert ctl.page_budget() is not None
