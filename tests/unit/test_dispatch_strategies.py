"""Unit tests for dispatcher assignment strategies."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import tiny_system
from repro.gpu.dispatcher import DISPATCH_STRATEGIES, Dispatcher
from repro.gpu.gpu import GPU
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.sim.engine import Engine


def make_system(strategy):
    engine = Engine()
    cfg = tiny_system()
    issued = []

    def issue_fn(txn, cb):
        txn.page = txn.address // cfg.page_size
        issued.append(txn)
        engine.schedule(10, cb, txn, engine.now + 10)

    gpus = []
    dispatcher = Dispatcher(engine, gpus, 0, None, strategy=strategy)
    for g in range(cfg.num_gpus):
        gpus.append(GPU(engine, g, cfg.gpu, cfg.timing, GriffinHyperParams(),
                        cfg.page_size, issue_fn, dispatcher.workgroup_complete))
    return engine, dispatcher, issued


def make_kernel(num_wgs):
    wgs = [Workgroup(i, 0, [WavefrontTrace([(1, i * 4096, False)])])
           for i in range(num_wgs)]
    return Kernel(0, wgs)


def test_strategy_registry():
    assert "round_robin" in DISPATCH_STRATEGIES
    assert "chunked" in DISPATCH_STRATEGIES


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="strategy"):
        make_system("zigzag")


def test_round_robin_interleaves():
    engine, dispatcher, issued = make_system("round_robin")
    dispatcher.run_kernels([make_kernel(6)])
    engine.run()
    by_wg = {t.workgroup_id: t.gpu_id for t in issued}
    assert [by_wg[i] for i in range(6)] == [0, 1, 0, 1, 0, 1]


def test_chunked_keeps_blocks_together():
    engine, dispatcher, issued = make_system("chunked")
    dispatcher.run_kernels([make_kernel(6)])
    engine.run()
    by_wg = {t.workgroup_id: t.gpu_id for t in issued}
    assert [by_wg[i] for i in range(6)] == [0, 0, 0, 1, 1, 1]


def test_chunked_uneven_counts_stay_in_range():
    engine, dispatcher, issued = make_system("chunked")
    dispatcher.run_kernels([make_kernel(5)])
    engine.run()
    gpus = {t.gpu_id for t in issued}
    assert gpus <= {0, 1}
    assert len(issued) == 5


def test_both_strategies_complete_all_work():
    for strategy in DISPATCH_STRATEGIES:
        engine, dispatcher, issued = make_system(strategy)
        dispatcher.run_kernels([make_kernel(8)])
        engine.run()
        assert len(issued) == 8
        assert dispatcher.finish_time is not None
