"""Unit tests for kernels, workgroups, wavefront traces."""

from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup


def test_wavefront_len():
    w = WavefrontTrace([(1, 0x0, False), (2, 0x40, True)])
    assert len(w) == 2


def test_workgroup_total_accesses():
    wg = Workgroup(0, 0, [WavefrontTrace([(1, 0, False)]), WavefrontTrace([(1, 0, False), (1, 64, True)])])
    assert wg.total_accesses() == 3


def test_kernel_total_accesses():
    wg1 = Workgroup(0, 0, [WavefrontTrace([(1, 0, False)])])
    wg2 = Workgroup(1, 0, [WavefrontTrace([(1, 0, False)] * 4)])
    k = Kernel(0, [wg1, wg2])
    assert k.total_accesses() == 5


def test_empty_kernel():
    assert Kernel(0).total_accesses() == 0
