"""Unit tests for address-space conventions."""

from repro.vm.address import CPU_DEVICE, Translation, page_base, page_id, page_shift


def test_cpu_device_is_negative():
    assert CPU_DEVICE == -1


def test_page_shift_4kb():
    assert page_shift(4096) == 12


def test_page_id_and_base_roundtrip():
    addr = 5 * 4096 + 123
    page = page_id(addr, 4096)
    assert page == 5
    assert page_base(page, 4096) == 5 * 4096


def test_page_id_2mb_pages():
    two_mb = 2 * 1024 * 1024
    assert page_id(3 * two_mb + 1, two_mb) == 3


def test_translation_locality():
    t = Translation(page=10, device=2, cacheable=True)
    assert t.is_local_to(2)
    assert not t.is_local_to(1)


def test_cpu_translation_not_local_to_any_gpu():
    t = Translation(page=10, device=CPU_DEVICE, cacheable=False)
    assert not t.is_local_to(0)
