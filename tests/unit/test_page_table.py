"""Unit tests for the system page table."""

from repro.vm.address import CPU_DEVICE
from repro.vm.page_table import PageTable


def make_pt(num_gpus=4):
    return PageTable(num_gpus, 4096)


def test_pages_start_cpu_resident():
    pt = make_pt()
    assert pt.location(42) == CPU_DEVICE


def test_entry_created_on_first_reference():
    pt = make_pt()
    entry = pt.entry(7)
    assert entry.page == 7
    assert not entry.delayed_bit
    assert entry.migrations == 0


def test_entry_is_cached():
    pt = make_pt()
    assert pt.entry(7) is pt.entry(7)


def test_migrate_cpu_to_gpu_updates_counts():
    pt = make_pt()
    pt.migrate(1, 2)
    assert pt.location(1) == 2
    assert pt.gpu_page_count(2) == 1
    assert pt.cpu_to_gpu_migrations == 1
    assert pt.gpu_to_gpu_migrations == 0


def test_migrate_gpu_to_gpu_updates_counts():
    pt = make_pt()
    pt.migrate(1, 2)
    pt.migrate(1, 3)
    assert pt.gpu_page_count(2) == 0
    assert pt.gpu_page_count(3) == 1
    assert pt.gpu_to_gpu_migrations == 1
    assert pt.total_migrations == 2


def test_migrate_to_same_device_is_noop():
    pt = make_pt()
    pt.migrate(1, 2)
    entry = pt.migrate(1, 2)
    assert entry.migrations == 1
    assert pt.total_migrations == 1


def test_migrate_clears_migrating_flag():
    pt = make_pt()
    entry = pt.entry(1)
    entry.migrating = True
    pt.migrate(1, 0)
    assert not entry.migrating


def test_migrate_back_to_cpu():
    pt = make_pt()
    pt.migrate(1, 2)
    pt.migrate(1, CPU_DEVICE)
    assert pt.gpu_page_count(2) == 0
    assert pt.location(1) == CPU_DEVICE


def test_occupancy_fractions():
    pt = make_pt(2)
    pt.migrate(1, 0)
    pt.migrate(2, 0)
    pt.migrate(3, 1)
    assert pt.occupancy(0) == 2 / 3
    assert pt.occupancy(1) == 1 / 3


def test_occupancy_zero_when_no_gpu_pages():
    pt = make_pt()
    assert pt.occupancy(0) == 0.0
    assert pt.total_gpu_pages() == 0


def test_highest_occupancy_gpus_handles_ties():
    pt = make_pt(3)
    assert pt.highest_occupancy_gpus() == [0, 1, 2]
    pt.migrate(1, 1)
    assert pt.highest_occupancy_gpus() == [1]
    pt.migrate(2, 0)
    assert pt.highest_occupancy_gpus() == [0, 1]


def test_pages_on_device():
    pt = make_pt()
    pt.migrate(1, 0)
    pt.migrate(2, 0)
    pt.migrate(3, 1)
    assert sorted(pt.pages_on(0)) == [1, 2]
    assert pt.pages_on(1) == [3]


def test_known_pages_tracks_references():
    pt = make_pt()
    pt.entry(5)
    pt.entry(9)
    assert sorted(pt.known_pages()) == [5, 9]


def test_first_touch_gpu_recorded_manually():
    pt = make_pt()
    entry = pt.entry(5)
    assert entry.first_touch_gpu is None
    entry.first_touch_gpu = 2
    assert pt.entry(5).first_touch_gpu == 2


def test_gpu_page_counts_list_copy():
    pt = make_pt(2)
    counts = pt.gpu_page_counts()
    counts[0] = 999
    assert pt.gpu_page_count(0) == 0
