"""Unit tests for the fault-injection config and injector."""

import math

import pytest

from repro.config.faults import (
    NO_FAULTS,
    FaultConfig,
    LinkFaultSpec,
    ThrottleSpec,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.retry import ExponentialBackoff
from repro.sim.engine import Engine


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled
        assert not NO_FAULTS.enabled

    @pytest.mark.parametrize("overrides", [
        {"migration_drop_rate": 0.1},
        {"shootdown_ack_delay": 100},
        {"shootdown_timeout_rate": 0.2},
        {"link_faults": (LinkFaultSpec(device=0, bandwidth_factor=0.5),)},
        {"throttles": (ThrottleSpec(gpu=1, issue_delay_factor=2.0),)},
    ])
    def test_any_axis_enables(self, overrides):
        assert FaultConfig(**overrides).enabled

    def test_with_overrides(self):
        cfg = NO_FAULTS.with_overrides(migration_drop_rate=0.3)
        assert cfg.migration_drop_rate == 0.3
        assert not NO_FAULTS.enabled  # original untouched

    @pytest.mark.parametrize("kwargs", [
        {"migration_drop_rate": -0.1},
        {"migration_drop_rate": 1.5},
        {"shootdown_timeout_rate": 2.0},
        {"shootdown_ack_delay": -1},
        {"max_migration_attempts": -1},
        {"retry_backoff_cycles": -5},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_link_fault_validation(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(device=0, bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            LinkFaultSpec(device=0, bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            LinkFaultSpec(device=0, extra_latency=-1)
        with pytest.raises(ValueError):
            LinkFaultSpec(device=0, start=100, end=50)

    def test_throttle_validation(self):
        with pytest.raises(ValueError):
            ThrottleSpec(gpu=0, issue_delay_factor=0.5)

    def test_fault_windows(self):
        spec = LinkFaultSpec(device=0, bandwidth_factor=0.5,
                             start=100, end=200)
        assert not spec.active(50)
        assert spec.active(150)
        assert not spec.active(250)
        assert LinkFaultSpec(device=0, bandwidth_factor=0.5).active(1e12)

    def test_describe_mentions_active_axes(self):
        text = FaultConfig(migration_drop_rate=0.25).describe()
        assert "25%" in text
        assert FaultConfig().describe() == "no faults"


class TestExponentialBackoff:
    def test_delay_grows_geometrically(self):
        b = ExponentialBackoff(base=100, multiplier=2.0, max_attempts=4)
        assert b.delay(1) == 100
        assert b.delay(2) == 200
        assert b.delay(3) == 400

    def test_exhaustion_boundary(self):
        b = ExponentialBackoff(base=100, multiplier=2.0, max_attempts=3)
        assert not b.exhausted(2)
        assert b.exhausted(3)

    def test_zero_attempts_never_exhausts(self):
        b = ExponentialBackoff(max_attempts=0)
        assert not b.exhausted(10_000)

    def test_from_config(self):
        cfg = FaultConfig(retry_backoff_cycles=500,
                          retry_backoff_multiplier=3.0,
                          max_migration_attempts=7)
        b = ExponentialBackoff.from_config(cfg)
        assert (b.base, b.multiplier, b.max_attempts) == (500, 3.0, 7)

    def test_delay_is_whole_cycles_for_fractional_multipliers(self):
        # Retries land on the engine clock, where every latency is an
        # integer cycle count; a 1.5x multiplier must not schedule
        # events at fractional timestamps.
        b = ExponentialBackoff(base=100, multiplier=1.5, max_attempts=0)
        assert b.delay(2) == 150
        assert b.delay(3) == 225
        for attempt in range(1, 10):
            assert isinstance(b.delay(attempt), int)

    def test_delay_never_below_one_cycle(self):
        b = ExponentialBackoff(base=1, multiplier=0.5, max_attempts=0)
        assert b.delay(10) == 1

    def test_delay_rejects_zero_attempt(self):
        with pytest.raises(ValueError):
            ExponentialBackoff().delay(0)


def make_injector(faults, seed=0):
    return FaultInjector(Engine(), faults, seed)


class TestFaultInjector:
    def test_zero_rate_never_drops_and_draws_no_rng(self):
        inj = make_injector(FaultConfig(shootdown_ack_delay=1))
        state_before = inj._rng_migration.bit_generator.state
        assert all(inj.migration_transfer_ok(p, -1, 0) for p in range(200))
        assert inj._rng_migration.bit_generator.state == state_before
        assert inj.stat("transfers_dropped") == 0

    def test_drop_rate_one_always_drops(self):
        inj = make_injector(FaultConfig(migration_drop_rate=1.0))
        assert not inj.migration_transfer_ok(3, -1, 0)
        assert inj.stat("transfers_dropped") == 1

    def test_drop_sequence_is_seed_deterministic(self):
        cfg = FaultConfig(migration_drop_rate=0.5)
        inj1, inj2 = make_injector(cfg, 42), make_injector(cfg, 42)
        seq1 = [inj1.migration_transfer_ok(p, -1, 0) for p in range(100)]
        seq2 = [inj2.migration_transfer_ok(p, -1, 0) for p in range(100)]
        assert seq1 == seq2
        inj3 = make_injector(cfg, 43)
        seq3 = [inj3.migration_transfer_ok(p, -1, 0) for p in range(100)]
        assert seq1 != seq3

    def test_shootdown_penalty_fixed_delay(self):
        inj = make_injector(FaultConfig(shootdown_ack_delay=250))
        delay, timed_out = inj.shootdown_penalty()
        assert delay == 250 and not timed_out
        assert inj.stat("shootdown_ack_delay_cycles") == 250

    def test_shootdown_timeout(self):
        inj = make_injector(FaultConfig(shootdown_timeout_rate=1.0,
                                        shootdown_timeout_cycles=900))
        delay, timed_out = inj.shootdown_penalty()
        assert timed_out and delay >= 900
        assert inj.stat("shootdown_timeouts") == 1

    def test_link_factor_window_and_min(self):
        cfg = FaultConfig(link_faults=(
            LinkFaultSpec(device=0, bandwidth_factor=0.5, start=0, end=100),
            LinkFaultSpec(device=0, bandwidth_factor=0.25, start=50, end=150),
        ))
        inj = make_injector(cfg)
        assert inj.link_bandwidth_factor(0, 10) == 0.5
        assert inj.link_bandwidth_factor(0, 75) == 0.25  # min wins
        assert inj.link_bandwidth_factor(0, 200) == 1.0
        assert inj.link_bandwidth_factor(1, 75) == 1.0  # other device clean

    def test_link_extra_latency(self):
        cfg = FaultConfig(link_faults=(
            LinkFaultSpec(device=-1, bandwidth_factor=1.0, extra_latency=40),
        ))
        inj = make_injector(cfg)
        assert inj.link_extra_latency(-1, 0) == 40
        assert inj.link_extra_latency(0, 0) == 0

    def test_throttle_factor(self):
        cfg = FaultConfig(throttles=(
            ThrottleSpec(gpu=1, issue_delay_factor=3.0, start=0, end=math.inf),
        ))
        inj = make_injector(cfg)
        assert inj.has_throttle(1) and not inj.has_throttle(0)
        assert inj.throttle_factor(1, 5.0) == 3.0
        assert inj.throttle_factor(0, 5.0) == 1.0
