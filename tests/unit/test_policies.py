"""Unit tests for policy compositions."""

import pytest

from repro.core.acud import DrainStrategy
from repro.core.policies import (
    baseline_policy,
    get_policy,
    griffin_flush_policy,
    griffin_policy,
    list_policies,
)


def test_baseline_disables_everything():
    p = baseline_policy()
    assert not p.dftm
    assert not p.batch_cpu_faults
    assert not p.inter_gpu_migration


def test_griffin_enables_everything_with_acud():
    p = griffin_policy()
    assert p.dftm and p.batch_cpu_faults and p.inter_gpu_migration
    assert p.drain == DrainStrategy.ACUD


def test_griffin_flush_differs_only_in_drain():
    g = griffin_policy()
    f = griffin_flush_policy()
    assert f.drain == DrainStrategy.FLUSH
    assert (f.dftm, f.batch_cpu_faults, f.inter_gpu_migration) == (
        g.dftm, g.batch_cpu_faults, g.inter_gpu_migration
    )


def test_registry_lookup():
    assert get_policy("baseline").name == "baseline"
    assert get_policy("griffin").name == "griffin"


def test_unknown_policy_raises_with_choices():
    with pytest.raises(KeyError, match="baseline"):
        get_policy("nope")


def test_list_policies_contains_ablations():
    names = list_policies()
    for expected in ["baseline", "griffin", "griffin_flush", "griffin_no_dftm",
                     "griffin_no_dpc", "griffin_no_batch", "dftm_only"]:
        assert expected in names


def test_ablation_policies_toggle_single_components():
    assert not get_policy("griffin_no_dftm").dftm
    assert not get_policy("griffin_no_dpc").inter_gpu_migration
    assert not get_policy("griffin_no_batch").batch_cpu_faults
    d = get_policy("dftm_only")
    assert d.dftm and not d.inter_gpu_migration and not d.batch_cpu_faults


def test_describe_mentions_mechanisms():
    text = griffin_policy().describe()
    assert "DFTM" in text and "acud" in text
    assert "first-touch" in baseline_policy().describe()


def test_drain_strategy_parse():
    assert DrainStrategy.parse("acud") == DrainStrategy.ACUD
    assert DrainStrategy.parse("FLUSH") == DrainStrategy.FLUSH
    assert DrainStrategy.parse(DrainStrategy.ACUD) == DrainStrategy.ACUD
    with pytest.raises(ValueError):
        DrainStrategy.parse("bogus")
