"""Unit tests for the workload generators (Table III)."""

import pytest

from repro.workloads.base import AddressSpace, WorkloadSpec
from repro.workloads.registry import WORKLOAD_SPECS, get_workload, list_workloads

PAPER_TABLE_III = {
    "BFS": ("SHOC", "Random", 32),
    "BS": ("AMDAPPSDK", "Random", 36),
    "FIR": ("Hetero-Mark", "Adjacent", 64),
    "FLW": ("AMDAPPSDK", "Distributed", 44),
    "FW": ("AMDAPPSDK", "Adjacent", 40),
    "KM": ("Hetero-Mark", "Partition", 51),
    "MT": ("AMDAPPSDK", "Scatter-Gather", 44),
    "PR": ("Hetero-Mark", "Random", 38),
    "SC": ("AMDAPPSDK", "Adjacent", 41),
    "ST": ("SHOC", "Adjacent", 33),
}


def test_registry_has_all_ten_workloads():
    assert list_workloads() == sorted(PAPER_TABLE_III)


@pytest.mark.parametrize("abbrev", sorted(PAPER_TABLE_III))
def test_specs_match_paper_table3(abbrev):
    suite, pattern, mb = PAPER_TABLE_III[abbrev]
    spec = WORKLOAD_SPECS[abbrev]
    assert spec.suite == suite
    assert spec.pattern == pattern
    assert spec.memory_mb == mb


def test_unknown_workload_raises():
    with pytest.raises(KeyError, match="BFS"):
        get_workload("NOPE")


def test_lookup_is_case_insensitive():
    assert get_workload("sc").spec.abbrev == "SC"


@pytest.mark.parametrize("abbrev", sorted(PAPER_TABLE_III))
def test_workloads_build_valid_kernels(abbrev):
    w = get_workload(abbrev, scale=0.005, seed=1)
    kernels = w.build_kernels(4)
    assert kernels, abbrev
    total = sum(k.total_accesses() for k in kernels)
    assert total > 0
    for kernel in kernels:
        for wg in kernel.workgroups:
            for wf in wg.wavefronts:
                for delay, address, is_write in wf.accesses:
                    assert delay >= 0
                    assert address >= 0
                    assert isinstance(is_write, bool)


@pytest.mark.parametrize("abbrev", sorted(PAPER_TABLE_III))
def test_workload_generation_is_deterministic(abbrev):
    a = get_workload(abbrev, scale=0.005, seed=9).build_kernels(4)
    b = get_workload(abbrev, scale=0.005, seed=9).build_kernels(4)
    flat_a = [wf.accesses for k in a for wg in k.workgroups for wf in wg.wavefronts]
    flat_b = [wf.accesses for k in b for wg in k.workgroups for wf in wg.wavefronts]
    assert flat_a == flat_b


def test_different_seed_different_trace():
    a = get_workload("BFS", scale=0.005, seed=1).build_kernels(4)
    b = get_workload("BFS", scale=0.005, seed=2).build_kernels(4)
    flat_a = [wf.accesses for k in a for wg in k.workgroups for wf in wg.wavefronts]
    flat_b = [wf.accesses for k in b for wg in k.workgroups for wf in wg.wavefronts]
    assert flat_a != flat_b


def test_scale_controls_footprint():
    small = get_workload("SC", scale=0.005).footprint_pages()
    large = get_workload("SC", scale=0.02).footprint_pages()
    assert large > small


def test_pages_at_scale_floor():
    spec = WorkloadSpec("X", "x", "s", "p", 1)
    assert spec.pages_at_scale(1e-9) == 16


def test_footprint_respects_published_mb():
    # 4 KB pages: 256 pages per MB at scale 1.0.
    assert WORKLOAD_SPECS["BFS"].pages_at_scale(1.0) == 32 * 256


def test_mt_is_single_kernel_touch_once_heavy():
    w = get_workload("MT", scale=0.01, seed=1)
    kernels = w.build_kernels(4)
    assert len(kernels) == 1


def test_sc_has_multiple_passes():
    w = get_workload("SC", scale=0.01, seed=1)
    assert len(w.build_kernels(4)) == w.num_passes


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = AddressSpace()
        a = space.alloc("a", 10)
        b = space.alloc("b", 5)
        assert set(a).isdisjoint(set(b))

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 1)
        with pytest.raises(ValueError):
            space.alloc("a", 1)

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("a", 0)

    def test_total_pages(self):
        space = AddressSpace()
        space.alloc("a", 10)
        space.alloc("b", 5)
        assert space.total_pages() == 15


class TestTraceHelpers:
    def test_chunks_cover_region_without_overlap(self):
        w = get_workload("SC", scale=0.01)
        region = range(0, 103)
        chunks = [w.chunk(region, 10, i) for i in range(10)]
        flat = [p for c in chunks for p in c]
        assert flat == list(region)

    def test_page_accesses_touch_count(self):
        w = get_workload("SC", scale=0.01)
        accesses = w.page_accesses([1, 2], w.rng("t"), touches_per_page=3)
        assert len(accesses) == 6
        pages = [a[1] // 4096 for a in accesses]
        assert pages.count(1) == 3 and pages.count(2) == 3

    def test_page_accesses_empty_pages(self):
        w = get_workload("SC", scale=0.01)
        assert w.page_accesses([], w.rng("t")) == []

    def test_interleave_shuffles_order(self):
        w = get_workload("SC", scale=0.01)
        pages = list(range(50))
        ordered = w.page_accesses(pages, w.rng("a"), touches_per_page=1)
        shuffled = w.page_accesses(pages, w.rng("b"), touches_per_page=1, interleave=True)
        assert [a[1] // 4096 for a in ordered] == pages
        assert [a[1] // 4096 for a in shuffled] != pages

    def test_contended_sweep_same_pages_for_all_wgs(self):
        w = get_workload("SC", scale=0.01)
        region = range(100, 200)
        s1 = w.contended_sweep(region, w.rng("x"), 0.5)
        s2 = w.contended_sweep(region, w.rng("y"), 0.5)
        assert [a[1] // 4096 for a in s1] == [a[1] // 4096 for a in s2]

    def test_contended_sweep_fraction(self):
        w = get_workload("SC", scale=0.01)
        region = range(0, 100)
        sweep = w.contended_sweep(region, w.rng("x"), 0.25)
        assert len(sweep) == 25

    def test_make_workgroup_splits_lanes(self):
        w = get_workload("SC", scale=0.01)
        accesses = [(1, i * 64, False) for i in range(10)]
        wg = w.make_workgroup(0, accesses, lanes=4)
        assert len(wg.wavefronts) == 4
        assert wg.total_accesses() == 10

    def test_workgroup_ids_monotonic(self):
        w = get_workload("SC", scale=0.01)
        a = w.make_workgroup(0, [(1, 0, False)])
        b = w.make_workgroup(0, [(1, 0, False)])
        assert b.wg_id == a.wg_id + 1

    def test_compute_scale_multiplies_delays(self):
        lo = get_workload("SC", scale=0.01, compute_scale=1.0)
        hi = get_workload("SC", scale=0.01, compute_scale=10.0)
        a = lo.page_accesses([1], lo.rng("t"), touches_per_page=5)
        b = hi.page_accesses([1], hi.rng("t"), touches_per_page=5)
        assert sum(x[0] for x in b) == 10 * sum(x[0] for x in a)
