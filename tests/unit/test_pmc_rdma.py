"""Unit tests for the Page Migration Controller and RDMA engine."""

import pytest

from repro.config.presets import tiny_system
from repro.config.system import LinkConfig
from repro.gpu.pmc import PageMigrationController
from repro.gpu.rdma import RdmaEngine
from repro.interconnect.link import CPU_PORT, InterconnectFabric
from repro.mem.hierarchy import GPUMemoryHierarchy
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def fabric():
    return InterconnectFabric(LinkConfig(bandwidth_gbps=32.0, latency=100), 2)


class TestPMC:
    def test_pages_arrive_in_order(self, engine, fabric):
        pmc = PageMigrationController(engine, fabric, 4096)
        arrivals = []
        pmc.transfer_pages(0, [1, 2, 3], 0, 1, lambda p, t: arrivals.append((p, t)))
        engine.run()
        assert [p for p, _ in arrivals] == [1, 2, 3]
        times = [t for _, t in arrivals]
        assert times == sorted(times)

    def test_transfer_serializes_on_source_tx(self, engine, fabric):
        pmc = PageMigrationController(engine, fabric, 4096)
        arrivals = []
        pmc.transfer_pages(0, [1, 2], 0, 1, lambda p, t: arrivals.append(t))
        engine.run()
        # Each page is 4096/32 = 128 cycles of serialization.
        assert arrivals[1] - arrivals[0] >= 128

    def test_batch_done_fires_at_last_arrival(self, engine, fabric):
        pmc = PageMigrationController(engine, fabric, 4096)
        done = []
        arrivals = []
        pmc.transfer_pages(
            0, [1, 2], 0, 1,
            lambda p, t: arrivals.append(t),
            on_batch_done=lambda t: done.append(t),
        )
        engine.run()
        assert done == [max(arrivals)]

    def test_cpu_to_gpu_transfer(self, engine, fabric):
        pmc = PageMigrationController(engine, fabric, 4096)
        arrivals = []
        pmc.transfer_pages(0, [7], CPU_PORT, 1, lambda p, t: arrivals.append((p, t)))
        engine.run()
        assert arrivals[0][0] == 7
        assert arrivals[0][1] >= 4096 / 32 + 100

    def test_stats(self, engine, fabric):
        pmc = PageMigrationController(engine, fabric, 4096)
        pmc.transfer_pages(0, [1, 2], 0, 1, lambda p, t: None)
        engine.run()
        assert pmc.stat("pages_transferred") == 2
        assert pmc.stat("bytes_transferred") == 8192


class TestRdma:
    def test_service_goes_through_l2(self, engine):
        cfg = tiny_system()
        hier = GPUMemoryHierarchy(0, cfg.gpu, cfg.timing, cfg.page_size)
        rdma = RdmaEngine(engine, 0, hier)
        t = rdma.service(0, 0x1000, False)
        assert t > 0
        assert hier.remote_services == 1

    def test_requests_serialize_on_pipe(self, engine):
        cfg = tiny_system()
        hier = GPUMemoryHierarchy(0, cfg.gpu, cfg.timing, cfg.page_size)
        rdma = RdmaEngine(engine, 0, hier, bytes_per_cycle=1.0)
        rdma.service(0, 0x1000, False)
        rdma.service(0, 0x1000, False)
        # Two 64-byte requests at 1 B/cycle occupy the pipe back to back.
        assert rdma.pipe.busy_until == 128

    def test_request_counter(self, engine):
        cfg = tiny_system()
        hier = GPUMemoryHierarchy(0, cfg.gpu, cfg.timing, cfg.page_size)
        rdma = RdmaEngine(engine, 0, hier)
        rdma.service(0, 0x0, False)
        rdma.service(10, 0x40, True)
        assert rdma.stat("requests") == 2
