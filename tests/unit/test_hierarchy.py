"""Unit tests for the per-GPU memory hierarchy."""

import pytest

from repro.config.presets import tiny_system
from repro.mem.hierarchy import GPUMemoryHierarchy


@pytest.fixture
def hierarchy():
    cfg = tiny_system()
    return GPUMemoryHierarchy(0, cfg.gpu, cfg.timing, cfg.page_size)


def test_l1_hit_is_fast(hierarchy):
    cold = hierarchy.local_access(0, 0, 0x1000, False)
    warm = hierarchy.local_access(cold, 0, 0x1000, False)
    assert warm - cold == hierarchy.config.l1v.latency


def test_l1_miss_goes_to_l2_then_dram(hierarchy):
    cold = hierarchy.local_access(0, 0, 0x2000, False)
    # Cold access must at least pay L1 + xbar + L2 + DRAM latency.
    min_cost = (
        hierarchy.config.l1v.latency
        + hierarchy.config.xbar_latency
        + hierarchy.config.l2.latency
        + hierarchy.config.dram.latency
    )
    assert cold >= min_cost


def test_l2_hit_after_other_cu_warmed_it(hierarchy):
    hierarchy.local_access(0, 0, 0x3000, False)   # CU0 warms L1(0) + L2
    t = hierarchy.local_access(1000, 1, 0x3000, False)  # CU1: L1 miss, L2 hit
    assert t - 1000 < hierarchy.config.dram.latency


def test_per_cu_l1_caches_are_private(hierarchy):
    hierarchy.local_access(0, 0, 0x4000, False)
    assert hierarchy.l1v[0].contains(0x4000)
    assert not hierarchy.l1v[1].contains(0x4000)


def test_remote_service_skips_l1(hierarchy):
    hierarchy.remote_service(0, 0x5000, False)
    assert not any(c.contains(0x5000) for c in hierarchy.l1v)
    assert any(c.contains(0x5000) for c in hierarchy.l2)


def test_remote_service_counter(hierarchy):
    hierarchy.remote_service(0, 0x5000, False)
    assert hierarchy.remote_services == 1
    assert hierarchy.local_accesses == 0


def test_flush_pages_clears_l1_and_l2(hierarchy):
    page = 0x6000 // 4096
    hierarchy.local_access(0, 0, 0x6000, True)
    lines, dirty = hierarchy.flush_pages([page])
    assert lines >= 2  # the line exists in both L1 and L2
    assert dirty >= 1
    assert not hierarchy.l1v[0].contains(0x6000)


def test_flush_all(hierarchy):
    hierarchy.local_access(0, 0, 0x7000, False)
    assert hierarchy.flush_all() >= 2
    assert not any(c.occupancy() for c in hierarchy.l1v)
    assert not any(c.occupancy() for c in hierarchy.l2)


def test_targeted_flush_cost_scales_with_lines(hierarchy):
    assert hierarchy.targeted_flush_cost(10) == 10 * hierarchy.timing.l2_flush_per_line


def test_l2_slices_interleave_by_line(hierarchy):
    a = hierarchy._l2_slice(0)
    b = hierarchy._l2_slice(64)
    assert a is not b


class TestMshrMerging:
    def test_concurrent_same_line_misses_merge(self, hierarchy):
        a = hierarchy.local_access(0, 0, 0x8000, False)
        # A second CU misses the same line while the fill is in flight.
        b = hierarchy.local_access(1, 1, 0x8000, False)
        assert b == a
        assert hierarchy.mshr_merges == 1

    def test_merge_does_not_reissue_dram_access(self, hierarchy):
        before = hierarchy.dram.accesses
        hierarchy.local_access(0, 0, 0x8000, False)
        hierarchy.local_access(1, 1, 0x8000, False)
        assert hierarchy.dram.accesses == before + 1

    def test_fill_completed_misses_do_not_merge(self, hierarchy):
        first = hierarchy.local_access(0, 0, 0x8000, False)
        # Long after the fill landed (and the line was evicted from the
        # small caches), a new miss issues its own fill.
        hierarchy.flush_all()
        second = hierarchy.local_access(first + 10_000, 0, 0x8000, False)
        assert second > first
        assert hierarchy.mshr_merges == 0

    def test_different_lines_do_not_merge(self, hierarchy):
        hierarchy.local_access(0, 0, 0x8000, False)
        hierarchy.local_access(0, 1, 0x8040, False)
        assert hierarchy.mshr_merges == 0

    def test_remote_service_merges_with_local_fill(self, hierarchy):
        a = hierarchy.local_access(0, 0, 0x8000, False)
        b = hierarchy.remote_service(0, 0x8000, False)
        assert b == a
        assert hierarchy.mshr_merges == 1
