"""Unit tests for the set-associative cache."""

from repro.config.system import CacheConfig
from repro.mem.cache import Cache


def make_cache(size=1024, ways=2, line=64, page=4096):
    return Cache("c", CacheConfig(size, ways, line), page)


def test_miss_installs_line():
    c = make_cache()
    assert not c.access(0, False)
    assert c.access(0, False)
    assert c.hits == 1
    assert c.misses == 1


def test_same_line_different_offsets_hit():
    c = make_cache()
    c.access(0, False)
    assert c.access(63, False)
    assert not c.access(64, False)


def test_lru_eviction_within_set():
    c = make_cache(size=256, ways=2, line=64)  # 2 sets
    set_stride = 2 * 64  # same set every 2 lines
    c.access(0 * set_stride, False)
    c.access(1 * set_stride, False)
    c.access(2 * set_stride, False)  # evicts first
    assert not c.contains(0)
    assert c.evictions == 1


def test_contains_does_not_update_stats():
    c = make_cache()
    c.access(0, False)
    hits, misses = c.hits, c.misses
    assert c.contains(0)
    assert not c.contains(4096)
    assert (c.hits, c.misses) == (hits, misses)


def test_flush_pages_targeted():
    c = make_cache()
    c.access(0, False)            # page 0
    c.access(4096, False)         # page 1
    flushed, dirty = c.flush_pages([0])
    assert flushed == 1
    assert dirty == 0
    assert not c.contains(0)
    assert c.contains(4096)


def test_flush_reports_dirty_lines():
    c = make_cache()
    c.access(0, True)             # write -> dirty
    c.access(64, False)
    flushed, dirty = c.flush_pages([0])
    assert flushed == 2
    assert dirty == 1


def test_write_marks_existing_line_dirty():
    c = make_cache()
    c.access(0, False)
    c.access(0, True)
    _, dirty = c.flush_pages([0])
    assert dirty == 1


def test_flush_missing_page_is_noop():
    c = make_cache()
    c.access(0, False)
    flushed, dirty = c.flush_pages([99])
    assert flushed == 0 and dirty == 0


def test_flush_all():
    c = make_cache()
    for i in range(4):
        c.access(i * 64, False)
    assert c.flush_all() == 4
    assert c.occupancy() == 0


def test_page_index_consistent_after_eviction():
    c = make_cache(size=128, ways=1, line=64)  # 2 sets, direct-mapped
    c.access(0, False)          # set 0, page 0
    c.access(128, False)        # set 0 again, evicts line 0
    flushed, _ = c.flush_pages([0])
    assert flushed == 1  # only line 128's entry remains for page 0


def test_hit_rate():
    c = make_cache()
    c.access(0, False)
    c.access(0, False)
    c.access(64, False)
    assert c.hit_rate() == 1 / 3


def test_hit_rate_empty():
    assert make_cache().hit_rate() == 0.0


def test_flushed_lines_counter():
    c = make_cache()
    c.access(0, False)
    c.flush_pages([0])
    c.access(64, False)
    c.flush_all()
    assert c.flushed_lines == 2
