"""Unit tests for the ring event core and backend selection."""

import pickle

import pytest

from repro.config.system import SimConfig, SystemConfig
from repro.sim.engine import Engine, SimulationError
from repro.sim.event import _COMPACT_LIMIT, Event
from repro.sim.ring import (
    BACKEND_ENV,
    EventRing,
    RingEngine,
    build_engine,
    resolve_backend,
)


def _noop():
    pass


def test_ring_pops_in_time_priority_seq_order():
    ring = EventRing()
    ring.push(Event(5.0, _noop))
    ring.push(Event(1.0, _noop, priority=1))
    ring.push(Event(1.0, _noop))
    ring.push(Event(1.0, _noop, priority=-1))
    keys = []
    while True:
        event = ring.pop()
        if event is None:
            break
        keys.append((event.time, event.priority))
    assert keys == [(1.0, -1), (1.0, 0), (1.0, 1), (5.0, 0)]


def test_ring_cancel_skips_and_len_counts_live():
    ring = EventRing()
    keep = ring.push(Event(1.0, _noop))
    drop = ring.push(Event(0.5, _noop))
    drop.cancel()
    assert len(ring) == 1
    assert ring.peek_time() == 1.0
    assert ring.pop() is keep
    assert ring.pop() is None


def test_ring_grows_past_initial_capacity():
    ring = EventRing()
    n = 3000  # > _RING_CAP
    for i in range(n):
        ring.push_entry(float(i), 0, _noop, (i,))
    assert len(ring) == n
    args = [ring.pop().args[0] for _ in range(n)]
    assert args == list(range(n))


def test_ring_heavy_cancellation_keeps_slots_bounded():
    """Ring analogue of the heap's compaction-ceiling regression: with a
    large live population, retained cancelled slots are bounded by the
    absolute ceiling, so the slot array never grows without bound."""
    ring = EventRing()
    live = 5000
    for i in range(live):
        ring.push(Event(1e9 + i, _noop))
    worst = 0
    for i in range(3 * _COMPACT_LIMIT):
        ring.push(Event(float(i), _noop)).cancel()
        occupied = len(ring._slots) - len(ring._free)
        worst = max(worst, occupied)
    assert worst <= live + _COMPACT_LIMIT + 1
    assert len(ring) == live
    # Capacity is the next power-of-two step above the occupancy bound,
    # not proportional to total cancel traffic.
    assert len(ring._slots) <= 16384


def test_ring_pickle_round_trip():
    ring = EventRing()
    handle = ring.push(Event(2.0, _noop, (1,)))
    ring.push_entry(1.0, 0, _noop, (2,))
    ring.push_entry(3.0, -1, _noop, (3,))
    handle.cancel()
    restored = pickle.loads(pickle.dumps(ring))
    assert len(restored) == 2
    assert [e.args[0] for e in (restored.pop(), restored.pop())] == [2, 3]
    assert restored.pop() is None


def test_bucket_pool_recycles_retired_buckets():
    engine = RingEngine()
    for i in range(10):
        engine.post(float(i + 1), _noop)
    engine.run()
    ring = engine._queue
    assert ring._bucket_pool  # retired buckets were pooled, not dropped
    before = len(ring._bucket_pool)
    engine.post(5.0, _noop)
    assert len(ring._bucket_pool) == before - 1  # and are reused


def test_resolve_backend_env_override(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend("heap") == "heap"
    assert resolve_backend("ring") == "ring"
    monkeypatch.setenv(BACKEND_ENV, "ring")
    assert resolve_backend("heap") == "ring"
    monkeypatch.setenv(BACKEND_ENV, "bogus")
    with pytest.raises(SimulationError):
        resolve_backend("heap")


def test_build_engine_types():
    assert type(build_engine("heap")) is Engine
    assert type(build_engine("ring")) is RingEngine


def test_sim_config_validates_backend():
    assert SimConfig().engine_backend == "heap"
    assert SimConfig(engine_backend="ring").engine_backend == "ring"
    with pytest.raises(ValueError):
        SimConfig(engine_backend="bogus")


def test_with_engine_backend_helper():
    config = SystemConfig(num_gpus=2)
    ringed = config.with_engine_backend("ring")
    assert ringed.sim.engine_backend == "ring"
    assert config.sim.engine_backend == "heap"
    assert ringed.num_gpus == 2
