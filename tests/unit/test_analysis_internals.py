"""Unit tests for analysis internals (gini, phase clustering, verdicts)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.migration import MigrationVerdict
from repro.analysis.phases import PhaseReport, detect_phases
from repro.analysis.sharing import SharingProfile, _gini
from repro.harness.results import RunResult
from repro.mem.access import AccessKind
from repro.metrics.occupancy import OccupancySnapshot
from repro.metrics.timeline import MigrationEvent


class TestGini:
    def test_empty_is_zero(self):
        assert _gini([]) == 0.0

    def test_uniform_is_zero(self):
        assert _gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentration_raises_gini(self):
        assert _gini([1, 1, 1, 100]) > _gini([10, 10, 10, 10])

    def test_single_value_is_zero(self):
        assert _gini([42]) == pytest.approx(0.0, abs=1e-9)

    @given(st.lists(st.integers(min_value=1, max_value=1000),
                    min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_gini_in_unit_interval(self, values):
        g = _gini(values)
        assert -1e-9 <= g <= 1.0

    @given(st.lists(st.integers(min_value=1, max_value=1000),
                    min_size=1, max_size=50),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=60)
    def test_gini_is_scale_invariant(self, values, factor):
        assert _gini(values) == pytest.approx(_gini([v * factor for v in values]))


def make_result(events, cycles=100_000):
    return RunResult(
        workload="X", policy="griffin", cycles=cycles, transactions=1,
        occupancy=OccupancySnapshot((1, 1)), cpu_shootdowns=0,
        gpu_shootdowns=0, cpu_to_gpu_migrations=0, gpu_to_gpu_migrations=0,
        dftm_denials=0, kind_counts={k: 0 for k in AccessKind},
        local_fraction=0.0,
        migration_events=[MigrationEvent(t, 1, 0, 1) for t in events],
    )


class TestPhaseClustering:
    def test_single_event_single_burst(self):
        report = detect_phases(make_result([500.0]))
        assert report.bursts == [(500.0, 500.0, 1)]

    def test_gap_splits_bursts(self):
        report = detect_phases(make_result([0, 10, 20, 90_000]), gap_cycles=1000)
        assert report.num_bursts == 2
        assert report.bursts[0][2] == 3
        assert report.bursts[1][2] == 1

    def test_events_within_gap_merge(self):
        report = detect_phases(make_result([0, 500, 1000]), gap_cycles=1000)
        assert report.num_bursts == 1

    def test_quiet_fraction_bounds(self):
        report = detect_phases(make_result([0, 50_000]), gap_cycles=1000)
        assert 0.0 <= report.quiet_fraction <= 1.0

    def test_unsorted_events_are_handled(self):
        report = detect_phases(make_result([50_000, 0, 25_000]),
                               gap_cycles=1000)
        covered = sum(c for _, _, c in report.bursts)
        assert covered == 3
        starts = [s for s, _, _ in report.bursts]
        assert starts == sorted(starts)


class TestVerdictEnum:
    def test_three_verdicts(self):
        assert {v.value for v in MigrationVerdict} == {
            "justified", "neutral", "wasted"
        }
