"""Unit tests for RunResult helpers and result serialization internals."""

import pytest

from repro.harness.io import result_from_dict, result_to_dict
from repro.harness.results import RunResult
from repro.mem.access import AccessKind
from repro.metrics.occupancy import OccupancySnapshot
from repro.metrics.timeline import MigrationEvent


def make_result(**overrides):
    defaults = dict(
        workload="XX",
        policy="baseline",
        cycles=1000.0,
        transactions=10,
        occupancy=OccupancySnapshot((4, 3, 2, 1), cpu_pages=2),
        cpu_shootdowns=5,
        gpu_shootdowns=2,
        cpu_to_gpu_migrations=8,
        gpu_to_gpu_migrations=3,
        dftm_denials=1,
        kind_counts={k: 0 for k in AccessKind},
        local_fraction=0.5,
        migration_events=[MigrationEvent(10.0, 7, -1, 0)],
        seed=1,
        scale=0.01,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


def test_total_shootdowns():
    assert make_result().total_shootdowns == 7


def test_total_migrations():
    assert make_result().total_migrations == 11


def test_imbalance_uses_occupancy():
    balanced = make_result(occupancy=OccupancySnapshot((5, 5, 5, 5)))
    skewed = make_result(occupancy=OccupancySnapshot((20, 0, 0, 0)))
    assert balanced.imbalance() == pytest.approx(0.0)
    assert skewed.imbalance() == pytest.approx(1.0)


def test_summary_row_fields():
    row = make_result().summary_row()
    assert row[0] == "XX"
    assert row[1] == "baseline"
    assert int(row[3]) == 10


def test_round_trip_preserves_every_field():
    original = make_result()
    rebuilt = result_from_dict(result_to_dict(original))
    assert rebuilt.workload == original.workload
    assert rebuilt.cycles == original.cycles
    assert rebuilt.occupancy == original.occupancy
    assert rebuilt.kind_counts == original.kind_counts
    assert rebuilt.migration_events[0].page == 7
    assert rebuilt.seed == original.seed and rebuilt.scale == original.scale


def test_serialized_dict_is_plain_data():
    data = result_to_dict(make_result())
    import json

    json.dumps(data)  # must not raise
    assert data["kind_counts"]["local"] == 0


def test_timeline_and_detail_not_serialized():
    data = result_to_dict(make_result())
    assert "timeline" not in data
    assert "detail" not in data
