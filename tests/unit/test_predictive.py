"""Unit tests for the predictive-migration extension."""

from repro.config.hyperparams import GriffinHyperParams
from repro.core.dpc import DynamicPageClassifier
from repro.core.predictive import PredictiveMigration

NUM_GPUS = 4


def make():
    hyper = GriffinHyperParams.calibrated()
    dpc = DynamicPageClassifier(hyper, NUM_GPUS)
    predictor = PredictiveMigration(hyper, NUM_GPUS)
    return dpc, predictor


def feed_owner(dpc, predictor, page, owner, rounds):
    """Feed `rounds` periods with `owner` dominating `page`."""
    for _ in range(rounds):
        counts = [{page: 100} if g == owner else {} for g in range(NUM_GPUS)]
        dpc.update(counts)
        predictor.observe(dpc)


def rotate(dpc, predictor, page, owners, rounds_each):
    for owner in owners:
        feed_owner(dpc, predictor, page, owner, rounds_each)


def test_no_prediction_without_history():
    dpc, predictor = make()
    feed_owner(dpc, predictor, 1, 0, 10)
    assert predictor.speculative_candidates(lambda p: 0) == []


def test_regular_rotation_is_predicted():
    dpc, predictor = make()
    # Ownership advances +1 every 20 periods: 0 -> 1 -> 2.
    rotate(dpc, predictor, 1, [0, 1, 2], 20)
    # Near the end of GPU2's epoch the predictor nominates GPU3.
    feed_owner(dpc, predictor, 1, 2, 12)
    cands = predictor.speculative_candidates(lambda p: 2)
    assert cands
    assert cands[0].page == 1
    assert cands[0].dst == 3
    assert cands[0].src == 2


def test_prediction_not_fired_too_early():
    dpc, predictor = make()
    rotate(dpc, predictor, 1, [0, 1], 30)
    # Only a few periods into GPU2's epoch: hand-off not imminent.
    feed_owner(dpc, predictor, 1, 2, 3)
    assert predictor.speculative_candidates(lambda p: 2) == []


def test_page_already_at_predicted_owner_is_skipped():
    dpc, predictor = make()
    rotate(dpc, predictor, 1, [0, 1, 2], 20)
    feed_owner(dpc, predictor, 1, 2, 12)
    assert predictor.speculative_candidates(lambda p: 3) == []


def test_cpu_resident_pages_are_skipped():
    dpc, predictor = make()
    rotate(dpc, predictor, 1, [0, 1, 2], 20)
    feed_owner(dpc, predictor, 1, 2, 12)
    assert predictor.speculative_candidates(lambda p: -1) == []


def test_irregular_stride_is_not_predicted():
    dpc, predictor = make()
    rotate(dpc, predictor, 1, [0, 2, 1], 20)  # strides +2 then +3 (mod 4)
    feed_owner(dpc, predictor, 1, 1, 12)
    assert predictor.speculative_candidates(lambda p: 1) == []


def test_irregular_cadence_is_not_predicted():
    dpc, predictor = make()
    feed_owner(dpc, predictor, 1, 0, 6)
    feed_owner(dpc, predictor, 1, 1, 60)  # wildly different epoch length
    feed_owner(dpc, predictor, 1, 2, 6)
    cands = predictor.speculative_candidates(lambda p: 2)
    assert cands == []


def test_speculative_cap():
    dpc, predictor = make()
    predictor.max_speculative_per_round = 2
    for page in range(5):
        rotate(dpc, predictor, page, [0, 1, 2], 20)
        feed_owner(dpc, predictor, page, 2, 12)
    cands = predictor.speculative_candidates(lambda p: 2)
    assert len(cands) == 2


def test_quiet_pages_do_not_pollute_history():
    dpc, predictor = make()
    feed_owner(dpc, predictor, 1, 0, 3)
    # Page goes quiet: below the streaming floor, no history appended.
    for _ in range(5):
        dpc.update([{} for _ in range(NUM_GPUS)])
        predictor.observe(dpc)
    history = predictor._history[1]
    assert history.owners == [0]
