"""Unit tests for timeline windowing and watch-all mode."""

from repro.metrics.timeline import PageAccessTimeline


def test_watch_all_records_series_for_every_page():
    tl = PageAccessTimeline(2, bucket_cycles=100, watch_pages="all")
    tl.record(10, 0, 5)
    tl.record(20, 1, 9)
    assert tl.series(5) == [(0, [1, 0])]
    assert tl.series(9) == [(0, [0, 1])]


def test_watch_all_flag():
    assert PageAccessTimeline(2, watch_pages="all").watch_all
    assert not PageAccessTimeline(2).watch_all
    assert not PageAccessTimeline(2, watch_pages=[1]).watch_all


def test_window_counts_bucket_alignment():
    tl = PageAccessTimeline(2, bucket_cycles=100, watch_pages="all")
    tl.record(50, 0, 7)    # bucket 0
    tl.record(150, 1, 7)   # bucket 1
    tl.record(250, 1, 7)   # bucket 2
    assert tl.window_counts(7, 0, 100) == [1, 0]
    assert tl.window_counts(7, 100, 300) == [0, 2]
    assert tl.window_counts(7, 0, 300) == [1, 2]


def test_window_counts_empty_window():
    tl = PageAccessTimeline(2, bucket_cycles=100, watch_pages="all")
    tl.record(50, 0, 7)
    assert tl.window_counts(7, 1000, 2000) == [0, 0]


def test_window_counts_unwatched_page_is_zero():
    tl = PageAccessTimeline(2, bucket_cycles=100)
    tl.record(50, 0, 7)
    assert tl.window_counts(7, 0, 100) == [0, 0]


def test_window_boundaries_are_half_open():
    tl = PageAccessTimeline(2, bucket_cycles=100, watch_pages="all")
    tl.record(100, 0, 7)   # exactly at bucket 1 start
    assert tl.window_counts(7, 100, 200) == [1, 0]
    assert tl.window_counts(7, 0, 100) == [0, 0]
