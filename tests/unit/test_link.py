"""Unit tests for the inter-device fabric."""

import pytest

from repro.config.system import LinkConfig
from repro.interconnect.link import CPU_PORT, InterconnectFabric


def make_fabric(bw=32.0, latency=500, num_gpus=4):
    return InterconnectFabric(LinkConfig(bandwidth_gbps=bw, latency=latency), num_gpus)


def test_transfer_pays_latency_and_serialization():
    f = make_fabric()
    # 64 B at 32 B/cy: 2 cy tx + 2 cy rx + 500 latency.
    assert f.transfer(0, 0, 1, 64) == pytest.approx(504.0)


def test_transfer_to_self_is_free():
    f = make_fabric()
    assert f.transfer(100, 2, 2, 4096) == 100


def test_sender_tx_serializes():
    f = make_fabric()
    a = f.transfer(0, 0, 1, 64)
    b = f.transfer(0, 0, 2, 64)
    assert b > a


def test_different_senders_do_not_serialize_on_tx():
    f = make_fabric()
    a = f.transfer(0, 0, 2, 64)
    b = f.transfer(0, 1, 3, 64)
    assert a == b


def test_receiver_rx_serializes():
    f = make_fabric()
    a = f.transfer(0, 0, 2, 6400)
    b = f.transfer(0, 1, 2, 6400)
    assert b > a


def test_cpu_port_exists():
    f = make_fabric()
    assert f.port(CPU_PORT).name == "link.cpu"


def test_round_trip():
    f = make_fabric()
    t = f.round_trip(0, 0, CPU_PORT, 64, 64)
    # Two crossings: at least 2 * latency.
    assert t >= 1000


def test_bandwidth_affects_page_transfer_time():
    slow = make_fabric(bw=32.0)
    fast = make_fabric(bw=128.0)
    assert slow.transfer(0, 0, 1, 4096) > fast.transfer(0, 0, 1, 4096)


def test_stats_counters():
    f = make_fabric()
    f.transfer(0, 0, 1, 4096)
    assert f.transfers == 1
    assert f.total_bytes == 4096


def test_port_utilization():
    f = make_fabric()
    f.transfer(0, 0, 1, 3200)  # 100 cycles of tx serialization
    tx, rx = f.port_utilization(0, 1000)
    assert tx == pytest.approx(0.1)
    assert rx == 0.0
