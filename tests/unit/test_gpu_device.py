"""Unit tests for the assembled GPU device."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system, tiny_system
from repro.gpu.gpu import GPU
from repro.sim.engine import Engine


@pytest.fixture
def gpu():
    cfg = tiny_system()
    return GPU(Engine(), 0, cfg.gpu, cfg.timing, GriffinHyperParams(),
               cfg.page_size, lambda txn, cb: None, lambda wg: None)


def test_cu_count_matches_config(gpu):
    assert len(gpu.all_cus()) == gpu.config.num_cus


def test_cu_lookup_by_global_index(gpu):
    for i in range(gpu.config.num_cus):
        assert gpu.cu(i).cu_id == i


def test_se_of_cu_mapping():
    cfg = small_system()
    g = GPU(Engine(), 1, cfg.gpu, cfg.timing, GriffinHyperParams(),
            cfg.page_size, lambda txn, cb: None, lambda wg: None)
    assert g.se_of_cu(0) == 0
    assert g.se_of_cu(cfg.gpu.cus_per_se) == 1


def test_one_l1_tlb_per_cu(gpu):
    assert len(gpu.l1_tlbs) == gpu.config.num_cus


def test_record_and_collect_access_counts(gpu):
    gpu.record_se_access(0, 42)
    gpu.record_se_access(0, 42)
    gpu.record_se_access(1, 42)
    counts = gpu.collect_access_counts()
    assert counts[42] >= 2
    assert gpu.collect_access_counts() == {}  # reset after collection


def test_counts_merge_across_shader_engines():
    cfg = small_system()  # 2 SEs x 4 CUs
    g = GPU(Engine(), 0, cfg.gpu, cfg.timing, GriffinHyperParams(),
            cfg.page_size, lambda txn, cb: None, lambda wg: None)
    g.record_se_access(0, 7)      # SE 0
    g.record_se_access(4, 7)      # SE 1
    assert g.collect_access_counts()[7] == 2


def test_counter_message_bytes_paper_sizing(gpu):
    # The paper: a message covering 20 pages takes 110 bytes.
    for p in range(20):
        gpu.record_se_access(0, p)
    assert gpu.counter_message_bytes() == 110
    for p in range(20, 25):
        gpu.record_se_access(0, p)
    assert gpu.counter_message_bytes() == 220


def test_invalidate_tlb_pages_counts_entries(gpu):
    gpu.l2_tlb.insert(1, 0)
    gpu.l1_tlbs[0].insert(1, 0)
    gpu.l1_tlbs[1].insert(2, 0)
    assert gpu.invalidate_tlb_pages([1]) == 2


def test_flush_all_tlbs(gpu):
    gpu.l2_tlb.insert(1, 0)
    gpu.l1_tlbs[0].insert(2, 0)
    assert gpu.flush_all_tlbs() == 2
    assert gpu.l2_tlb.occupancy() == 0


def test_idle_initially(gpu):
    assert gpu.idle()
