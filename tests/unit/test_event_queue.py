"""Unit tests for the event queue."""

from repro.sim.event import _COMPACT_LIMIT, Event, EventQueue


def _noop():
    pass


def test_push_pop_orders_by_time():
    q = EventQueue()
    q.push(Event(5.0, _noop))
    q.push(Event(1.0, _noop))
    q.push(Event(3.0, _noop))
    times = [q.pop().time for _ in range(3)]
    assert times == [1.0, 3.0, 5.0]


def test_priority_breaks_time_ties():
    q = EventQueue()
    a = Event(2.0, _noop, priority=1)
    b = Event(2.0, _noop, priority=0)
    q.push(a)
    q.push(b)
    assert q.pop() is b
    assert q.pop() is a


def test_fifo_among_equal_time_and_priority():
    q = EventQueue()
    events = [Event(1.0, _noop) for _ in range(5)]
    for e in events:
        q.push(e)
    popped = [q.pop() for _ in range(5)]
    assert popped == events


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = Event(1.0, _noop)
    drop = Event(0.5, _noop)
    q.push(keep)
    q.push(drop)
    drop.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    drop = Event(0.5, _noop)
    q.push(drop)
    q.push(Event(2.0, _noop))
    drop.cancel()
    assert q.peek_time() == 2.0


def test_len_counts_live_events_only():
    q = EventQueue()
    e1 = q.push(Event(1.0, _noop))
    q.push(Event(2.0, _noop))
    e1.cancel()
    assert len(q) == 1


def test_empty_queue_behaviour():
    q = EventQueue()
    assert q.pop() is None
    assert q.peek_time() is None
    assert not q
    assert len(q) == 0


def test_bool_true_when_live_events():
    q = EventQueue()
    q.push(Event(1.0, _noop))
    assert q


def test_event_repr_contains_time():
    e = Event(7.0, _noop)
    assert "7" in repr(e)


def test_heavy_cancellation_keeps_backing_store_bounded():
    """Regression: with a large live population, the relative compaction
    trigger (cancelled > live) never fires, so only the absolute ceiling
    (_COMPACT_LIMIT) stops cancelled entries from accumulating without
    bound under sustained cancel traffic."""
    q = EventQueue()
    live = 5000
    for i in range(live):
        q.push(Event(1e9 + i, _noop))
    worst = 0
    for i in range(3 * _COMPACT_LIMIT):
        q.push(Event(float(i), _noop)).cancel()
        worst = max(worst, len(q._heap))
    # Backing store never exceeds live + ceiling (+1 for the entry that
    # trips the compaction).
    assert worst <= live + _COMPACT_LIMIT + 1
    assert len(q) == live
