"""Unit tests for the centralized workgroup dispatcher."""

import pytest

from repro.config.presets import tiny_system
from repro.gpu.gpu import GPU
from repro.config.hyperparams import GriffinHyperParams
from repro.gpu.dispatcher import Dispatcher
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.sim.engine import Engine


@pytest.fixture
def machine_parts():
    engine = Engine()
    cfg = tiny_system()
    issued = []

    def issue_fn(txn, cb):
        txn.page = txn.address // cfg.page_size
        issued.append(txn)
        engine.schedule(10, cb, txn, engine.now + 10)

    gpus = []
    dispatcher = Dispatcher(engine, gpus, cfg.dispatch_skew_cycles, None)
    for g in range(cfg.num_gpus):
        gpu = GPU(engine, g, cfg.gpu, cfg.timing, GriffinHyperParams(),
                  cfg.page_size, issue_fn, dispatcher.workgroup_complete)
        # note_translated is called by real access path; patch for fake.
        gpus.append(gpu)
    return engine, dispatcher, gpus, issued


def make_kernel(kid, num_wgs, accesses=1):
    wgs = [
        Workgroup(kid * 100 + i, kid,
                  [WavefrontTrace([(1, (kid * 100 + i) * 4096, False)] * accesses)])
        for i in range(num_wgs)
    ]
    return Kernel(kid, wgs)


def test_round_robin_across_gpus(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    dispatcher.run_kernels([make_kernel(0, 4)])
    engine.run()
    assert sorted(t.gpu_id for t in issued) == [0, 0, 1, 1]


def test_dispatch_skew_staggers_gpu_starts(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    dispatcher.run_kernels([make_kernel(0, 2)])
    engine.run()
    by_gpu = {t.gpu_id: t.issue_time for t in issued}
    assert by_gpu[1] - by_gpu[0] == dispatcher.dispatch_skew_cycles


def test_kernels_are_bulk_synchronous(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    dispatcher.run_kernels([make_kernel(0, 2), make_kernel(1, 2)])
    engine.run()
    k0_complete = max(t.issue_time + 10 for t in issued if t.workgroup_id < 100)
    k1_start = min(t.issue_time for t in issued if t.workgroup_id >= 100)
    assert k1_start >= k0_complete


def test_finish_time_and_callback(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    finished = []
    dispatcher.on_all_done = finished.append
    dispatcher.run_kernels([make_kernel(0, 2)])
    engine.run()
    assert dispatcher.finish_time is not None
    assert finished == [dispatcher.finish_time]


def test_empty_kernel_list_rejected(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    with pytest.raises(ValueError):
        dispatcher.run_kernels([])


def test_kernel_with_empty_workgroups_skips(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    empty = Kernel(0, [Workgroup(0, 0, [])])
    dispatcher.run_kernels([empty, make_kernel(1, 2)])
    engine.run()
    assert dispatcher.finish_time is not None
    assert len(issued) == 2


def test_workgroups_spread_across_cus(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    dispatcher.run_kernels([make_kernel(0, 8)])
    engine.run()
    cus_used = {(t.gpu_id, t.cu_id) for t in issued}
    assert len(cus_used) == 4  # 2 GPUs x 2 CUs


def test_kernel_start_times_recorded(machine_parts):
    engine, dispatcher, gpus, issued = machine_parts
    dispatcher.run_kernels([make_kernel(0, 2), make_kernel(1, 2)])
    engine.run()
    assert len(dispatcher.kernel_start_times) == 2
    assert dispatcher.kernel_start_times[0] < dispatcher.kernel_start_times[1]
