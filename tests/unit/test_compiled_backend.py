"""Unit tests for the compiled (C extension) event core and backend seam.

The oracle-parity tests run only when ``repro.sim._ckernel`` is built
(``make ext``); the backend-registry validation tests run everywhere,
including on extension-less hosts — that fallback leg is itself part of
the contract.
"""

import logging
import pickle

import pytest

from repro.config.system import SimConfig, SystemConfig
from repro.sim import compiled as compiled_mod
from repro.sim.backends import (
    BACKEND_ENV,
    ConfigError,
    available_backends,
    build_engine,
    resolve_backend,
)
from repro.sim.compiled import CompiledEngine, CompiledQueue, is_available
from repro.sim.engine import Engine, SimulationError, SimulationStall
from repro.sim.event import Event, EventQueue

needs_ckernel = pytest.mark.skipif(
    not is_available(), reason="repro.sim._ckernel extension not built"
)


def _noop():
    pass


def _tick(engine, i):
    """Module-level (hence picklable) self-rescheduling callback."""
    engine.trace.append((engine.now, i))
    if i < 6:
        engine.post(1.5, _tick, engine, i + 1)


# ----------------------------------------------------------------------
# Queue parity with the heap oracle
# ----------------------------------------------------------------------

@needs_ckernel
def test_compiled_pops_in_time_priority_seq_order():
    q = CompiledQueue()
    q.push(Event(5.0, _noop))
    q.push(Event(1.0, _noop, priority=1))
    q.push(Event(1.0, _noop))
    q.push(Event(1.0, _noop, priority=-1))
    keys = []
    while True:
        event = q.pop()
        if event is None:
            break
        keys.append((event.time, event.priority))
    assert keys == [(1.0, -1), (1.0, 0), (1.0, 1), (5.0, 0)]


@needs_ckernel
def test_compiled_ties_break_by_insertion_seq():
    q = CompiledQueue()
    oracle = EventQueue()
    for i in range(20):
        q.push_entry(1.0, 0, _noop, (i,))
        oracle.push_entry(1.0, 0, _noop, (i,))
    got = [q.pop().args[0] for _ in range(20)]
    want = [oracle.pop().args[0] for _ in range(20)]
    assert got == want == list(range(20))


@needs_ckernel
def test_compiled_cancel_skips_and_len_counts_live():
    q = CompiledQueue()
    keep = q.push(Event(1.0, _noop))
    drop = q.push(Event(0.5, _noop))
    drop.cancel()
    assert len(q) == 1
    assert q.peek_time() == 1.0
    assert q.pop() is keep
    assert q.pop() is None


@needs_ckernel
def test_compiled_time_objects_preserved():
    """Integer times stay ints: the engine clock must not drift to float."""
    q = CompiledQueue()
    q.push_entry(3, 0, _noop, ())
    event = q.pop()
    assert event.time == 3 and type(event.time) is int


@needs_ckernel
def test_compiled_heavy_cancellation_compacts():
    """Cancelled-entry bookkeeping matches the oracle's lazy compaction:
    the cancelled counter is driven back down instead of growing without
    bound under cancel-heavy traffic."""
    from repro.sim.event import _COMPACT_LIMIT

    q = CompiledQueue()
    live = 100
    for i in range(live):
        q.push(Event(1e9 + i, _noop))
    for i in range(3 * _COMPACT_LIMIT):
        q.push(Event(float(i), _noop)).cancel()
        assert q._cancelled <= max(q._live, _COMPACT_LIMIT) + 1
    assert len(q) == live


@needs_ckernel
def test_compiled_snapshot_matches_oracle():
    def build(q):
        q.push(Event(2.0, _noop, (1,)))
        q.push_entry(1.0, 0, _noop, (2,))
        q.push_entry(1.0, -1, _noop, (3,))
        q.push(Event(0.5, _noop, (4,))).cancel()
        q.push_lane(1.0, _noop, (5,))

    cq, oq = CompiledQueue(), EventQueue()
    build(cq)
    build(oq)
    got = [(e.time, e.priority, e.seq, e.args) for e in cq.snapshot()]
    want = [(e.time, e.priority, e.seq, e.args) for e in oq.snapshot()]
    assert got == want


# ----------------------------------------------------------------------
# Pickling / snapshot state
# ----------------------------------------------------------------------

@needs_ckernel
def test_compiled_queue_pickle_round_trip():
    q = CompiledQueue()
    handle = q.push(Event(2.0, _noop, (1,)))
    q.push_entry(1.0, 0, _noop, (2,))
    q.push_entry(3.0, -1, _noop, (3,))
    handle.cancel()
    restored = pickle.loads(pickle.dumps(q))
    assert type(restored) is CompiledQueue
    assert len(restored) == 2
    assert [e.args[0] for e in (restored.pop(), restored.pop())] == [2, 3]
    assert restored.pop() is None


@needs_ckernel
def test_compiled_getstate_is_oracle_layout():
    """One state format for every backend: the compiled queue captures
    in the exact ``EventQueue.__getstate__`` layout, so a snapshot can
    rebuild either class."""
    q = CompiledQueue()
    q.push(Event(1.0, _noop))
    state = q.__getstate__()
    assert sorted(state) == sorted(
        ["_heap", "_lane", "_seq", "_live", "_cancelled", "_pool"]
    )
    assert state["_pool"] == []

    fallback = EventQueue.__new__(EventQueue)
    fallback.__setstate__(state)
    assert len(fallback) == 1
    assert fallback.pop().time == 1.0


@needs_ckernel
def test_compiled_engine_pickle_requires_pause():
    engine = CompiledEngine()

    def reentrant():
        with pytest.raises(SimulationError, match="running engine"):
            pickle.dumps(engine)

    engine.post(1.0, reentrant)
    engine.run()


@needs_ckernel
def test_compiled_engine_restores_onto_heap_when_unavailable(
    monkeypatch, caplog
):
    """A snapshot taken under the compiled backend restores on an
    extension-less host as the pure-Python heap engine — with a logged
    warning, and byte-identical behaviour from the pause point on."""
    compiled_engine = CompiledEngine()
    compiled_engine.trace = []
    compiled_engine.post(0.5, _tick, compiled_engine, 0)
    compiled_engine.run(until=3.0)
    blob = pickle.dumps(compiled_engine)

    monkeypatch.setattr(compiled_mod, "_ckernel", None)
    with caplog.at_level(logging.WARNING, logger="repro.sim.compiled"):
        restored = pickle.loads(blob)
    assert type(restored) is Engine
    assert type(restored._queue) is EventQueue
    assert any("pure-Python heap" in r.message for r in caplog.records)

    # The prefix trace travelled with the snapshot; continue to the end.
    assert restored.trace == compiled_engine.trace
    restored.run()

    # Oracle reference: the same program run uninterrupted on the heap.
    heap_engine = Engine()
    heap_engine.trace = []
    heap_engine.post(0.5, _tick, heap_engine, 0)
    heap_engine.run()
    assert restored.trace == heap_engine.trace
    assert restored.now == heap_engine.now
    assert restored.events_executed == heap_engine.events_executed


# ----------------------------------------------------------------------
# Engine error-message parity
# ----------------------------------------------------------------------

@needs_ckernel
@pytest.mark.parametrize("call", ["schedule", "schedule_at", "post", "post_at"])
def test_compiled_rejects_past_with_oracle_message(call):
    heap, comp = Engine(), CompiledEngine()
    for engine in (heap, comp):
        engine.post(10.0, _noop)
        engine.run()
        assert engine.now == 10.0
    errors = {}
    for name, engine in (("heap", heap), ("compiled", comp)):
        with pytest.raises(SimulationError) as exc:
            if call in ("schedule", "post"):
                getattr(engine, call)(-1.0, _noop)
            else:
                getattr(engine, call)(5.0, _noop)
        errors[name] = str(exc.value)
    assert errors["heap"] == errors["compiled"]


@needs_ckernel
def test_compiled_rejected_post_still_consumes_seq():
    """Like the oracle, a rejected post burns a sequence number, so the
    tie-break ordering of every later event matches exactly."""
    def burn(engine):
        with pytest.raises(SimulationError):
            engine.post(-1.0, _noop)
        engine.post(1.0, _noop)

    heap, comp = Engine(), CompiledEngine()
    burn(heap)
    burn(comp)
    assert comp._queue.pop().seq == heap._queue.pop().seq


@needs_ckernel
def test_compiled_stall_error_matches_oracle():
    def build(engine):
        def spin():
            engine.post(0.0, spin)
        engine.post(1.0, spin)

    messages = {}
    for name, engine in (("heap", Engine()), ("compiled", CompiledEngine())):
        build(engine)
        with pytest.raises(SimulationStall) as exc:
            engine.run(stall_threshold=50)
        messages[name] = (str(exc.value), exc.value.diagnostics)
    assert messages["heap"] == messages["compiled"]


@needs_ckernel
def test_compiled_budget_error_matches_oracle():
    def build(engine):
        def tick():
            engine.post(1.0, tick)
        engine.post(1.0, tick)

    messages = {}
    for name, engine in (("heap", Engine()), ("compiled", CompiledEngine())):
        build(engine)
        with pytest.raises(SimulationStall) as exc:
            engine.run(max_events=5, strict_budget=True)
        messages[name] = (str(exc.value), exc.value.diagnostics)
        assert engine.exhausted
        assert engine.events_executed == 5
    assert messages["heap"] == messages["compiled"]


@needs_ckernel
def test_compiled_run_parks_clock_at_bound():
    heap, comp = Engine(), CompiledEngine()
    for engine in (heap, comp):
        engine.post(1.0, _noop)
        engine.post(10.0, _noop)
        engine.run(until=4)
    assert comp.now == heap.now == 4
    assert len(comp._queue) == len(heap._queue) == 1


# ----------------------------------------------------------------------
# Backend registry validation (runs on extension-less hosts too)
# ----------------------------------------------------------------------

def test_resolve_backend_unknown_name_is_config_error(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    with pytest.raises(ConfigError, match="unknown engine backend"):
        resolve_backend("bogus")
    with pytest.raises(ConfigError, match="heap, ring, compiled"):
        resolve_backend("bogus")
    # The dual inheritance existing callers rely on.
    assert issubclass(ConfigError, SimulationError)
    assert issubclass(ConfigError, ValueError)


def test_resolve_backend_env_override_validated(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "bogus")
    with pytest.raises(ConfigError, match="bogus"):
        resolve_backend("heap")


def test_resolve_compiled_without_extension_names_alternatives(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.setattr(compiled_mod, "_ckernel", None)
    assert available_backends() == ("heap", "ring")
    with pytest.raises(ConfigError, match="not built") as exc:
        resolve_backend("compiled")
    assert "available backends: heap, ring" in str(exc.value)
    # ...and via the env override, same eager refusal.
    monkeypatch.setenv(BACKEND_ENV, "compiled")
    with pytest.raises(ConfigError, match="make ext"):
        resolve_backend("heap")


def test_sim_config_accepts_compiled_name(monkeypatch):
    """Name validity is checked at config time; extension availability
    only at engine-build time — so a config naming ``compiled`` can be
    constructed (and shipped to a build host) anywhere."""
    monkeypatch.setattr(compiled_mod, "_ckernel", None)
    assert SimConfig(engine_backend="compiled").engine_backend == "compiled"
    with pytest.raises(ConfigError):
        SimConfig(engine_backend="bogus")


@needs_ckernel
def test_build_engine_compiled_type(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend("compiled") == "compiled"
    assert type(build_engine("compiled")) is CompiledEngine


def test_with_engine_backend_compiled():
    config = SystemConfig(num_gpus=2)
    compiled = config.with_engine_backend("compiled")
    assert compiled.sim.engine_backend == "compiled"
    assert config.sim.engine_backend == "heap"
