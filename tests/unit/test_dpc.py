"""Unit tests for Dynamic Page Classification (EWMA filter + 5 classes)."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import PageClass
from repro.core.dpc import DynamicPageClassifier


def make(num_gpus=4, **overrides):
    hyper = GriffinHyperParams.calibrated().with_overrides(**overrides)
    return DynamicPageClassifier(hyper, num_gpus), hyper


def feed(dpc, num_gpus, rounds):
    """rounds: list of dict gpu -> {page: count}."""
    for r in rounds:
        dpc.update([r.get(g, {}) for g in range(num_gpus)])


class TestFilter:
    def test_ewma_formula(self):
        dpc, hyper = make()
        dpc.update([{1: 100}, {}, {}, {}])
        assert dpc.filtered_counts(1)[0] == pytest.approx(hyper.alpha * 100)

    def test_ewma_converges_to_steady_rate(self):
        dpc, hyper = make()
        for _ in range(200):
            dpc.update([{1: 50}, {}, {}, {}])
        assert dpc.filtered_counts(1)[0] == pytest.approx(50, rel=0.01)

    def test_ewma_decays_when_page_goes_cold(self):
        dpc, hyper = make()
        dpc.update([{1: 100}, {}, {}, {}])
        hot = dpc.filtered_counts(1)[0]
        dpc.update([{}, {}, {}, {}])
        assert dpc.filtered_counts(1)[0] == pytest.approx(hot * (1 - hyper.alpha))

    def test_cold_pages_are_forgotten(self):
        dpc, hyper = make(alpha=0.5)
        dpc.update([{1: 2}, {}, {}, {}])
        for _ in range(50):
            dpc.update([{}, {}, {}, {}])
        assert dpc.tracked_pages() == 0

    def test_unknown_page_has_zero_counts(self):
        dpc, _ = make()
        assert dpc.filtered_counts(999) == [0.0] * 4

    def test_wrong_gpu_count_rejected(self):
        dpc, _ = make()
        with pytest.raises(ValueError):
            dpc.update([{}, {}])

    def test_updates_counter(self):
        dpc, _ = make()
        dpc.update([{}, {}, {}, {}])
        assert dpc.updates == 1


class TestClassification:
    def _steady(self, dpc, per_gpu_counts, rounds=60):
        for _ in range(rounds):
            dpc.update([{1: c} if c else {} for c in per_gpu_counts])

    def test_mostly_dedicated(self):
        dpc, _ = make()
        self._steady(dpc, [100, 10, 0, 0])
        assert dpc.classify(1, 1) == PageClass.MOSTLY_DEDICATED

    def test_shared(self):
        dpc, _ = make()
        self._steady(dpc, [50, 45, 48, 47])
        assert dpc.classify(1, 0) == PageClass.SHARED

    def test_streaming_low_rate(self):
        dpc, hyper = make()
        # One small burst, then silence: the filtered count decays below
        # the streaming floor while the page is still tracked.
        dpc.update([{1: 3}, {}, {}, {}])
        dpc.update([{}, {}, {}, {}])
        top = max(dpc.filtered_counts(1))
        assert 0 < top < hyper.lambda_t * hyper.t_ac
        assert dpc.classify(1, 0) == PageClass.STREAMING

    def test_untracked_page_out_of_interest(self):
        dpc, _ = make()
        assert dpc.classify(42, 0) == PageClass.OUT_OF_INTEREST

    def test_dedicated_boundary_respects_lambda_d(self):
        dpc, hyper = make()
        # ratio just below lambda_d (=2.0): not dedicated.
        self._steady(dpc, [100, 51, 0, 0])
        assert dpc.classify(1, 0) != PageClass.MOSTLY_DEDICATED
        dpc2, _ = make()
        self._steady(dpc2, [100, 49, 0, 0])
        assert dpc2.classify(1, 0) == PageClass.MOSTLY_DEDICATED

    def test_shared_boundary_respects_lambda_s(self):
        dpc, hyper = make()
        # ratio just above lambda_s (=1.3): not shared.
        self._steady(dpc, [140, 100, 0, 0])
        assert dpc.classify(1, 0) != PageClass.SHARED

    def test_owner_shifting_detected(self):
        dpc, _ = make()
        # Owner (GPU0) hot for a while, then GPU2 takes over.  During the
        # early crossover the count ratio still exceeds lambda_d (the page
        # classifies Mostly Dedicated, per the paper's precedence); once
        # the ratio falls between lambda_s and lambda_d with opposing
        # trends, the page is Owner-Shifting.
        self._steady(dpc, [100, 0, 0, 0], rounds=40)
        dpc.update([{1: 20}, {}, {1: 80}, {}])
        dpc.update([{1: 10}, {}, {1: 90}, {}])
        assert dpc.classify(1, 0) == PageClass.MOSTLY_DEDICATED
        dpc.update([{1: 10}, {}, {1: 90}, {}])
        assert dpc.classify(1, 0) == PageClass.OWNER_SHIFTING

    def test_stable_page_is_not_owner_shifting(self):
        dpc, _ = make()
        self._steady(dpc, [100, 60, 0, 0], rounds=60)
        assert dpc.classify(1, 0) != PageClass.OWNER_SHIFTING

    def test_cpu_located_page_never_owner_shifting(self):
        dpc, _ = make()
        self._steady(dpc, [100, 0, 0, 0], rounds=40)
        dpc.update([{1: 10}, {1: 90}, {}, {}])
        assert dpc._is_owner_shifting(dpc._index[1], -1) is False


class TestCandidates:
    def _steady(self, dpc, counts_by_page, rounds=60):
        for _ in range(rounds):
            dpc.update([
                {p: counts[g] for p, counts in counts_by_page.items() if counts[g]}
                for g in range(4)
            ])

    def test_dedicated_page_on_wrong_gpu_is_candidate(self):
        dpc, _ = make()
        self._steady(dpc, {1: [100, 5, 0, 0]})
        cands = dpc.select_candidates(lambda p: 3)
        assert len(cands) == 1
        assert cands[0].page == 1
        assert cands[0].src == 3
        assert cands[0].dst == 0
        assert cands[0].page_class == PageClass.MOSTLY_DEDICATED

    def test_dedicated_page_on_right_gpu_stays(self):
        dpc, _ = make()
        self._steady(dpc, {1: [100, 5, 0, 0]})
        assert dpc.select_candidates(lambda p: 0) == []

    def test_cpu_resident_pages_are_not_dpc_business(self):
        dpc, _ = make()
        self._steady(dpc, {1: [100, 5, 0, 0]})
        assert dpc.select_candidates(lambda p: -1) == []

    def test_shared_page_on_cold_gpu_moves(self):
        dpc, _ = make()
        self._steady(dpc, {1: [50, 45, 48, 0]})
        cands = dpc.select_candidates(lambda p: 3)  # resident share 0
        assert cands and cands[0].dst == 0

    def test_shared_page_on_reasonably_hot_gpu_stays(self):
        dpc, _ = make()
        self._steady(dpc, {1: [50, 45, 48, 40]})
        assert dpc.select_candidates(lambda p: 3) == []

    def test_streaming_page_never_candidate(self):
        dpc, hyper = make()
        rate = max(0, int(hyper.lambda_t * hyper.t_ac) - 1)
        self._steady(dpc, {1: [rate, 0, 0, 0]})
        assert dpc.select_candidates(lambda p: 2) == []

    def test_candidates_sorted_by_benefit(self):
        dpc, _ = make()
        self._steady(dpc, {1: [100, 0, 0, 0], 2: [30, 0, 0, 0]})
        cands = dpc.select_candidates(lambda p: 1)
        assert [c.page for c in cands] == [1, 2]
        assert cands[0].benefit > cands[1].benefit

    def test_class_counts_accumulate(self):
        dpc, _ = make()
        self._steady(dpc, {1: [100, 5, 0, 0]})
        dpc.select_candidates(lambda p: 0)
        assert dpc.class_counts[PageClass.MOSTLY_DEDICATED] >= 1
