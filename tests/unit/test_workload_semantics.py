"""Structural semantics of each workload generator.

These pin down the per-benchmark properties the reproduction relies on:
MT's touch-once purity, KM's hot shared centroids, SC's epochal band
rotation, PR's non-recurring gathers, the halo sharing of the adjacent
workloads — so a refactor of a generator cannot silently change the
behaviours the figures depend on.
"""

from collections import Counter, defaultdict

from repro.workloads.registry import get_workload

NUM_GPUS = 4


def page_touches(kernels, page_size=4096):
    """page -> total touches across the whole run."""
    touches = Counter()
    for kernel in kernels:
        for wg in kernel.workgroups:
            for wf in wg.wavefronts:
                for _, addr, _ in wf.accesses:
                    touches[addr // page_size] += 1
    return touches


def page_gpus(kernels, page_size=4096):
    """page -> set of GPUs that touch it (round-robin WG mapping)."""
    gpus = defaultdict(set)
    for kernel in kernels:
        for index, wg in enumerate(kernel.workgroups):
            gpu = index % NUM_GPUS
            for wf in wg.wavefronts:
                for _, addr, _ in wf.accesses:
                    gpus[addr // page_size].add(gpu)
    return gpus


def kernel_page_gpu_touches(kernel, page_size=4096):
    """(page, gpu) -> touches within one kernel."""
    touches = Counter()
    for index, wg in enumerate(kernel.workgroups):
        gpu = index % NUM_GPUS
        for wf in wg.wavefronts:
            for _, addr, _ in wf.accesses:
                touches[(addr // page_size, gpu)] += 1
    return touches


def build(abbrev, **kwargs):
    return get_workload(abbrev, scale=0.01, seed=3, **kwargs).build_kernels(NUM_GPUS)


def test_mt_large_fraction_of_pages_touched_exactly_once():
    # The property behind MT's DFTM win: many pages (the whole output and
    # the un-gathered input) are touched exactly once, ever.
    touches = page_touches(build("MT"))
    once = sum(1 for c in touches.values() if c == 1)
    assert once / len(touches) >= 0.4


def test_mt_output_pages_written_exactly_once():
    kernels = build("MT")
    writes = Counter()
    reads = Counter()
    for wg in kernels[0].workgroups:
        for wf in wg.wavefronts:
            for _, addr, is_write in wf.accesses:
                (writes if is_write else reads)[addr // 4096] += 1
    write_only = [p for p in writes if p not in reads]
    assert write_only
    assert all(writes[p] == 1 for p in write_only)


def test_km_centroid_pages_are_hot_and_fully_shared():
    kernels = build("KM")
    touches = page_touches(kernels)
    gpus = page_gpus(kernels)
    fully_shared = [p for p, g in gpus.items() if len(g) == NUM_GPUS]
    assert fully_shared
    hottest = max(touches, key=touches.get)
    assert hottest in fully_shared  # the centroids are the hottest pages


def test_km_point_pages_are_single_gpu():
    gpus = page_gpus(build("KM"))
    dedicated = sum(1 for g in gpus.values() if len(g) == 1)
    assert dedicated / len(gpus) > 0.5


def test_sc_band_ownership_rotates_between_epochs():
    w = get_workload("SC", scale=0.01, seed=3)
    kernels = w.build_kernels(NUM_GPUS)
    first = kernel_page_gpu_touches(kernels[0])
    later = kernel_page_gpu_touches(kernels[w.rotate_every])

    def dominant_gpu(touch_map):
        per_page = defaultdict(dict)
        for (page, gpu), count in touch_map.items():
            per_page[page][gpu] = count
        return {p: max(c, key=c.get) for p, c in per_page.items()}

    dom_first = dominant_gpu(first)
    dom_later = dominant_gpu(later)
    common = set(dom_first) & set(dom_later)
    moved = sum(1 for p in common if dom_first[p] != dom_later[p])
    assert moved / len(common) > 0.5


def test_sc_no_rotation_within_an_epoch():
    w = get_workload("SC", scale=0.01, seed=3)
    kernels = w.build_kernels(NUM_GPUS)
    a = {k for k, _ in kernel_page_gpu_touches(kernels[0])}
    assert kernels[1].kernel_id == 1
    # Kernels 0..rotate_every-1 share the same band assignment.
    dom0 = kernel_page_gpu_touches(kernels[0])
    dom1 = kernel_page_gpu_touches(kernels[1])
    shared_keys = set(dom0) & set(dom1)
    assert shared_keys  # identical (page, gpu) pairs appear in both


def test_pr_gathers_do_not_repeat_per_gpu():
    w = get_workload("PR", scale=0.01, seed=3)
    kernels = w.build_kernels(NUM_GPUS)
    # For each iteration, the rank chunk gathered by WG i rotates.
    first = kernel_page_gpu_touches(kernels[1])
    second = kernel_page_gpu_touches(kernels[2])
    # Hot (page, gpu) pairs of one iteration mostly differ from the next.
    hot1 = {k for k, v in first.items() if v >= 4}
    hot2 = {k for k, v in second.items() if v >= 4}
    if hot1 and hot2:
        overlap = len(hot1 & hot2) / min(len(hot1), len(hot2))
        assert overlap < 0.8


def test_adjacent_workloads_share_halo_pages():
    for abbrev in ["ST", "FIR"]:
        gpus = page_gpus(build(abbrev))
        shared = sum(1 for g in gpus.values() if len(g) >= 2)
        assert shared > 0, abbrev


def test_sweeping_wgs_are_one_per_gpu():
    kernels = build("FW")
    sizes = [wg.total_accesses() for wg in kernels[0].workgroups]
    # The first num_gpus WGs carry the contended sweep and are much
    # larger than the rest.
    sweepers = sizes[:NUM_GPUS]
    others = sizes[NUM_GPUS:]
    assert min(sweepers) > max(others)


def test_bfs_levels_grow_and_shrink():
    kernels = build("BFS")
    # Level 0 carries the graph-load sweep; the frontier profile is the
    # rest: it grows to an interior peak and then shrinks.
    totals = [k.total_accesses() for k in kernels[1:]]
    peak = totals.index(max(totals))
    assert 0 < peak < len(totals) - 1
    assert totals[-1] < max(totals)
