"""Unit tests for Delayed First-Touch Migration."""

from repro.core.dftm import DelayedFirstTouchMigration, FaultDecision
from repro.vm.page_table import PageTable


def make(num_gpus=4, enabled=True, deny_on_tie=True):
    pt = PageTable(num_gpus, 4096)
    return pt, DelayedFirstTouchMigration(pt, enabled=enabled, deny_on_tie=deny_on_tie)


def test_disabled_always_migrates():
    pt, dftm = make(enabled=False)
    assert dftm.decide(0, pt.entry(1)) == FaultDecision.MIGRATE
    assert dftm.first_touch_migrations == 1


def test_highest_occupancy_gpu_is_denied():
    pt, dftm = make()
    pt.migrate(100, 0)
    pt.migrate(101, 0)
    pt.migrate(102, 1)
    assert dftm.decide(0, pt.entry(1)) == FaultDecision.DCA
    assert dftm.denials == 1


def test_low_occupancy_gpu_migrates_on_first_touch():
    pt, dftm = make()
    pt.migrate(100, 0)
    pt.migrate(101, 0)
    assert dftm.decide(1, pt.entry(1)) == FaultDecision.MIGRATE
    assert dftm.first_touch_migrations == 1


def test_denial_sets_delayed_bit():
    pt, dftm = make()
    entry = pt.entry(1)
    dftm.decide(0, entry)  # all tied at zero -> denied
    assert entry.delayed_bit


def test_second_touch_always_migrates():
    pt, dftm = make()
    entry = pt.entry(1)
    dftm.decide(0, entry)
    # Even from the same (still highest-occupancy) GPU.
    assert dftm.decide(0, entry) == FaultDecision.MIGRATE
    assert dftm.second_touch_migrations == 1


def test_second_touch_from_other_gpu_migrates():
    pt, dftm = make()
    entry = pt.entry(1)
    dftm.decide(0, entry)
    assert dftm.decide(2, entry) == FaultDecision.MIGRATE


def test_all_zero_tie_denies_everyone():
    pt, dftm = make()
    for g in range(4):
        assert dftm.decide(g, pt.entry(g + 10)) == FaultDecision.DCA


def test_tie_not_denied_when_configured():
    pt, dftm = make(deny_on_tie=False)
    assert dftm.decide(0, pt.entry(1)) == FaultDecision.MIGRATE


def test_unique_peak_denied_even_without_tie_denial():
    pt, dftm = make(deny_on_tie=False)
    pt.migrate(100, 2)
    assert dftm.decide(2, pt.entry(1)) == FaultDecision.DCA
    assert dftm.decide(0, pt.entry(2)) == FaultDecision.MIGRATE


def test_touch_once_pages_never_migrate():
    # The MT property: a page touched once by the top GPU stays on the CPU.
    pt, dftm = make()
    pt.migrate(100, 3)
    entry = pt.entry(1)
    assert dftm.decide(3, entry) == FaultDecision.DCA
    assert pt.location(1) == -1  # caller never migrates it
