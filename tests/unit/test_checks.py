"""Unit tests for the sanitizer: config, reports, and monitor state machines.

The monitors are exercised here against minimal stub machines (they only
need ``engine.now`` and ``num_gpus``); end-to-end behavior on real runs —
silence on clean cells, firing under seeded corruption, bundle replay —
lives in ``tests/integration/test_sanitizer.py``.
"""

import json
from types import SimpleNamespace

import pytest

from repro.check.config import CheckConfig, CorruptionSpec
from repro.check.monitors import (
    DrainMonitor,
    EventQueueMonitor,
    OwnershipMonitor,
    RetryMonitor,
    ViolationReport,
)
from repro.check.runtime import CheckRuntime


def stub_machine(num_gpus=2, now=0.0):
    engine = SimpleNamespace(now=now, _running=False)
    return SimpleNamespace(engine=engine, num_gpus=num_gpus)


class TestCheckConfig:
    def test_default_enables_every_monitor(self):
        cfg = CheckConfig()
        assert cfg.enabled
        assert (cfg.ownership and cfg.vm_coherence and cfg.drain
                and cfg.event_queue and cfg.retry)

    def test_all_monitors_off_is_disabled(self):
        cfg = CheckConfig(ownership=False, vm_coherence=False, drain=False,
                          event_queue=False, retry=False)
        assert not cfg.enabled

    def test_one_monitor_suffices(self):
        cfg = CheckConfig(ownership=False, vm_coherence=False, drain=False,
                          event_queue=False, retry=True)
        assert cfg.enabled

    @pytest.mark.parametrize("kwargs", [
        {"ring_size": -1},
        {"snapshot_interval": 0},
        {"snapshot_interval": -100},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CheckConfig(**kwargs)

    def test_round_trip_drops_corruptions(self):
        """from_dict never re-arms drills: a replayed snapshot already
        carries the pending corruption event inside its queue."""
        cfg = CheckConfig(
            drain=False, ring_size=64, snapshot_interval=10_000,
            corruptions=(CorruptionSpec("tlb_stale", at_cycle=500),),
        )
        data = json.loads(json.dumps(cfg.to_dict()))  # manifest round trip
        back = CheckConfig.from_dict(data)
        assert back.drain is False
        assert back.ring_size == 64
        assert back.snapshot_interval == 10_000
        assert back.corruptions == ()

    def test_from_dict_ignores_unknown_keys(self):
        data = CheckConfig().to_dict()
        data["future_knob"] = True
        assert CheckConfig.from_dict(data) == CheckConfig()


class TestCorruptionSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            CorruptionSpec("frobnicate", at_cycle=100)

    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError, match="at_cycle"):
            CorruptionSpec("tlb_stale", at_cycle=-1)

    def test_to_dict(self):
        spec = CorruptionSpec("ownership_count", at_cycle=250, gpu=1, page=7)
        assert spec.to_dict() == {
            "kind": "ownership_count", "at_cycle": 250, "gpu": 1, "page": 7,
        }


class TestViolationReport:
    def test_round_trip(self):
        report = ViolationReport("drain", 123.5, "overlapping drains",
                                 {"gpu": 1, "state": "draining"})
        back = ViolationReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert back == report

    def test_render_carries_monitor_cycle_and_details(self):
        text = ViolationReport("retry", 42.0, "lost page",
                               {"page": 9}).render()
        assert "[retry]" in text and "t=42" in text
        assert "lost page" in text and "page: 9" in text


class TestDrainMonitor:
    def make(self):
        return DrainMonitor(stub_machine(num_gpus=2))

    def test_legal_cycle_is_silent(self):
        m = self.make()
        assert m.on_drain_start(0) is None
        assert m.on_drain_complete(0) is None
        assert m.on_resume(0) is None
        assert m.state(0) == "idle"

    def test_overlapping_drain(self):
        m = self.make()
        m.on_drain_start(0)
        report = m.on_drain_start(0)
        assert report is not None and report.monitor == "drain"
        assert "overlapping" in report.message

    def test_complete_without_start(self):
        report = self.make().on_drain_complete(1)
        assert report is not None and "completion" in report.message

    def test_continue_before_drain_completes(self):
        m = self.make()
        m.on_drain_start(0)
        report = m.on_resume(0)
        assert report is not None and "Continue" in report.message

    def test_issue_during_drain(self):
        m = self.make()
        m.on_drain_start(1)
        txn = SimpleNamespace(gpu_id=1, cu_id=3, page=77)
        report = m.check_issue(txn)
        assert report is not None and report.details["cu"] == 3
        assert m.check_issue(SimpleNamespace(gpu_id=0, cu_id=0, page=1)) is None

    def test_copy_must_start_from_drained(self):
        m = self.make()
        assert m.check_copy_start(0, [1, 2]) is not None  # still idle
        m.on_drain_start(0)
        assert m.check_copy_start(0, [1, 2]) is not None  # still draining
        m.on_drain_complete(0)
        assert m.check_copy_start(0, [1, 2]) is None


class TestEventQueueMonitor:
    def make(self):
        engine = SimpleNamespace(now=0.0, _running=False)
        return EventQueueMonitor(engine), engine

    def test_monotonic_time_is_silent(self):
        m, _ = self.make()
        assert m.check_time(10.0) is None
        assert m.check_time(10.0) is None  # equal is fine
        assert m.check_time(25.0) is None

    def test_time_moving_backwards_fires(self):
        m, _ = self.make()
        m.check_time(100.0)
        report = m.check_time(99.0)
        assert report is not None and report.monitor == "event_queue"
        assert "backwards" in report.message

    def test_schedule_after_finish_fires(self):
        m, engine = self.make()
        assert m.check_schedule(lambda: None) is None  # not finished yet
        m.on_finish(500.0)
        report = m.check_schedule(lambda: None)
        assert report is not None and "finished engine" in report.message

    def test_schedule_from_final_callback_stack_is_legal(self):
        m, engine = self.make()
        m.on_finish(500.0)
        engine._running = True  # still unwinding the final event
        assert m.check_schedule(lambda: None) is None


class TestRetryMonitor:
    def make(self):
        return RetryMonitor(stub_machine())

    def test_drop_retry_arrive_cycle_is_silent(self):
        m = self.make()
        assert m.on_dropped(5) is None
        assert m.on_retry(5) is None
        m.on_arrived(5)
        assert m.check_boundary() is None
        assert m.finalize() is None

    def test_drop_exhaust_pin_cycle_is_silent(self):
        m = self.make()
        m.on_dropped(5)
        assert m.on_exhausted(5) is None
        assert m.on_pinned(5) is None
        assert m.check_boundary() is None

    def test_retry_without_drop_fires(self):
        report = self.make().on_retry(9)
        assert report is not None and "without a preceding" in report.message

    def test_exhausted_without_drop_fires(self):
        assert self.make().on_exhausted(9) is not None

    def test_pin_from_dropped_phase_fires(self):
        m = self.make()
        m.on_dropped(5)
        report = m.on_pinned(5)  # must exhaust before pinning
        assert report is not None and report.details["phase"] == "dropped"

    def test_unresolved_drop_fires_at_boundary(self):
        m = self.make()
        m.on_dropped(7)
        report = m.check_boundary()
        assert report is not None and "forgotten" in report.message
        assert report.details["unresolved"] == {7: "dropped"}


class TestOwnershipBatchTracking:
    def make(self):
        return OwnershipMonitor(stub_machine())

    def test_queued_faults_flush_cleanly(self):
        m = self.make()
        m.note_fault_queued(4)
        m.note_fault_queued(6)
        batch = [SimpleNamespace(page=4), SimpleNamespace(page=6)]
        assert m.check_batch(batch) is None
        assert m._queued_faults == {}

    def test_fabricated_fault_fires(self):
        m = self.make()
        report = m.check_batch([SimpleNamespace(page=4)])
        assert report is not None and report.monitor == "ownership"
        assert "never queued" in report.message

    def test_duplicate_queueing_needs_two_flushes(self):
        m = self.make()
        m.note_fault_queued(4)
        m.note_fault_queued(4)
        assert m.check_batch([SimpleNamespace(page=4)]) is None
        assert m.check_batch([SimpleNamespace(page=4)]) is None
        assert m.check_batch([SimpleNamespace(page=4)]) is not None


class TestMonitorStateRoundTrip:
    """Bundle manifests carry monitor state so replay's fresh monitors
    resume mid-protocol; the round trip must survive JSON (str keys)."""

    def test_round_trip_through_json(self):
        cfg = CheckConfig()
        rt = CheckRuntime(stub_machine(num_gpus=2), cfg)
        rt.ownership._queued_faults = {17: 2, 99: 1}
        rt.drain._state = ["draining", "idle"]
        rt.events._last_time = 123.5
        rt.events._finished_at = None
        rt.retry._open = {4: "dropped"}
        rt.retry._awaiting_retry = {8, 3}

        state = json.loads(json.dumps(rt.monitor_state()))

        rt2 = CheckRuntime(stub_machine(num_gpus=2), cfg)
        rt2.load_monitor_state(state)
        assert rt2.ownership._queued_faults == {17: 2, 99: 1}
        assert rt2.drain._state == ["draining", "idle"]
        assert rt2.events._last_time == 123.5
        assert rt2.events._finished_at is None
        assert rt2.retry._open == {4: "dropped"}
        assert rt2.retry._awaiting_retry == {3, 8}

    def test_disabled_monitors_are_absent(self):
        cfg = CheckConfig(drain=False, retry=False)
        rt = CheckRuntime(stub_machine(), cfg)
        state = rt.monitor_state()
        assert "drain" not in state and "retry" not in state
        assert "ownership" in state and "events" in state
        # Loading a full state into a partial runtime ignores the extras.
        rt.load_monitor_state({"drain": ["drained", "idle"],
                               "ownership": {"queued": {"5": 1}}})
        assert rt.ownership._queued_faults == {5: 1}
