"""Unit tests for the hot-path machinery behind the perf work.

Covers the surfaces the fast paths added or changed:

* ``Engine.post`` / ``post_at`` — the no-handle scheduling fast path.
* Event-queue internals: the same-cycle FIFO lane, the entry pool, O(1)
  ``len``/``bool``, and lazy compaction of cancelled events.
* Power-of-two set indexing (``set_mask``) validated at config time.
* The perf harness: report save/load round-trip and regression compare.
"""

import pytest

from repro.config.system import CacheConfig, TLBConfig
from repro.perf.bench import (
    BenchReport, CaseResult, compare_reports, load_report, save_report,
)
from repro.sim.engine import Engine, SimulationError
from repro.sim.event import _POOL_MAX, EventQueue


def _noop(*args):
    pass


# ---------------------------------------------------------------------------
# Engine.post / post_at
# ---------------------------------------------------------------------------

class TestPostFastPath:
    def test_post_runs_callback_after_delay(self):
        engine = Engine()
        fired = []
        engine.post(5.0, fired.append, "x")
        assert engine.run() == 5.0
        assert fired == ["x"]

    def test_post_zero_delay_runs_this_cycle(self):
        engine = Engine()
        order = []

        def outer():
            order.append("outer")
            engine.post(0, order.append, "inner")

        engine.post(1.0, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 1.0

    def test_post_interleaves_fifo_with_schedule(self):
        # post and schedule at the same (time, priority) fire in call order.
        engine = Engine()
        order = []
        engine.schedule(2.0, order.append, "a")
        engine.post(2.0, order.append, "b")
        engine.schedule(2.0, order.append, "c")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_post_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.post(-1.0, _noop)

    def test_post_at_past_rejected(self):
        engine = Engine()
        engine.post(3.0, _noop)
        engine.run()
        with pytest.raises(SimulationError):
            engine.post_at(1.0, _noop)

    def test_post_at_now_runs_before_later_heap_events(self):
        engine = Engine()
        order = []

        def now_and_later():
            engine.schedule(1.0, order.append, "later")
            engine.post_at(engine.now, order.append, "now")

        engine.post(4.0, now_and_later)
        engine.run()
        assert order == ["now", "later"]

    def test_posted_events_count_toward_events_executed(self):
        engine = Engine()
        for i in range(7):
            engine.post(float(i), _noop)
        engine.run()
        assert engine.events_executed == 7


# ---------------------------------------------------------------------------
# EventQueue internals: lane, pool, O(1) len, compaction
# ---------------------------------------------------------------------------

class TestQueueInternals:
    def test_len_is_tracked_not_recounted(self):
        q = EventQueue()
        for i in range(10):
            q.push_entry(float(i), 0, _noop, ())
        assert len(q) == 10 == q._live
        q.pop()
        assert len(q) == 9 == q._live

    def test_pool_recycles_executed_entries(self):
        engine = Engine()
        for i in range(20):
            engine.post(float(i), _noop)
        engine.run()
        pool = engine._queue._pool
        assert len(pool) == 20
        # Recycled entries must not pin callbacks/args/events alive.
        assert all(e[3] is None and e[4] is None and e[5] is None
                   for e in pool)

    def test_pool_is_bounded(self):
        engine = Engine()
        n = _POOL_MAX + 100
        for i in range(n):
            engine.post(float(i), _noop)
        engine.run()
        assert engine.events_executed == n
        assert len(engine._queue._pool) <= _POOL_MAX

    def test_pooled_entries_are_reused(self):
        engine = Engine()
        engine.post(1.0, _noop)
        engine.run()
        recycled = engine._queue._pool[-1]
        fired = []
        engine.post(1.0, fired.append, "again")
        assert engine._queue._heap[0] is recycled
        engine.run()
        assert fired == ["again"]

    def test_cancelled_backlog_is_compacted(self):
        from repro.sim.event import Event
        q = EventQueue()
        events = [Event(float(i), _noop) for i in range(64)]
        for e in events:
            q.push(e)
        for e in events[1:]:  # cancel everything except the head
            e.cancel()
        # Lazy compaction keeps the heap from growing without bound.
        assert len(q) == 1
        assert len(q._heap) < 64
        assert q.pop() is events[0]
        assert q.pop() is None

    def test_snapshot_orders_and_skips_cancelled(self):
        from repro.sim.event import Event
        q = EventQueue()
        keep = Event(2.0, _noop)
        drop = Event(1.0, _noop)
        q.push(keep)
        q.push(drop)
        q.push_entry(3.0, 0, _noop, ())
        drop.cancel()
        times = [e.time for e in q.snapshot(10)]
        assert times == [2.0, 3.0]


# ---------------------------------------------------------------------------
# Config-time set-mask validation
# ---------------------------------------------------------------------------

class TestSetMask:
    def test_cache_power_of_two_sets_get_a_mask(self):
        cfg = CacheConfig(size_bytes=16 * 1024, ways=4, line_bytes=64)
        assert cfg.num_sets == 64
        assert cfg.set_mask == 63

    def test_cache_non_power_of_two_falls_back_to_modulo(self):
        cfg = CacheConfig(size_bytes=12 * 1024, ways=4, line_bytes=64)
        assert cfg.num_sets == 48
        assert cfg.set_mask == -1

    def test_tlb_masks(self):
        assert TLBConfig(num_sets=32, ways=16).set_mask == 31
        assert TLBConfig(num_sets=1, ways=32).set_mask == 0
        assert TLBConfig(num_sets=3, ways=4).set_mask == -1


# ---------------------------------------------------------------------------
# Perf harness: save/load round-trip and comparison gate
# ---------------------------------------------------------------------------

def _report(label, e2e_per_sec, cal_per_sec, created="2026-08-05T00:00:00"):
    # One calibration micro plus one e2e case; wall chosen so the
    # aggregate e2e throughput equals ``e2e_per_sec``.
    work = 100_000
    cases = [
        CaseResult("calibration", "micro", 1.0, work, "ops",
                   cal_per_sec, 0, 1),
        CaseResult("sc_griffin", "e2e", work / e2e_per_sec, work,
                   "events", e2e_per_sec, 0, 1),
    ]
    return BenchReport(
        suite="test", label=label, created=created, fingerprint="f00d",
        python="3.12", platform="linux", repeats=1, cases=cases,
        peak_rss_kb=1234,
    )


class TestBenchHarness:
    def test_save_load_round_trip(self, tmp_path):
        report = _report("alpha", 200_000.0, 600_000.0)
        path = save_report(report, tmp_path)
        assert path.name == "BENCH_2026-08-05_alpha.json"
        loaded = load_report(path)
        assert loaded.label == "alpha"
        assert loaded.fingerprint == report.fingerprint
        assert loaded.e2e_events_per_sec == pytest.approx(200_000.0)
        assert loaded.normalized_e2e == pytest.approx(report.normalized_e2e)

    def test_compare_speedup_and_gate_ok(self):
        base = _report("base", 100_000.0, 500_000.0)
        cur = _report("fast", 200_000.0, 500_000.0)
        cmp = compare_reports(base, cur, fail_factor=2.0)
        assert cmp.speedup_e2e == pytest.approx(2.0)
        assert cmp.speedup_normalized == pytest.approx(2.0)
        assert cmp.same_fingerprint
        assert not cmp.regressed

    def test_compare_normalizes_away_machine_speed(self):
        # Half the raw throughput on a half-speed machine: not a regression.
        base = _report("base", 100_000.0, 500_000.0)
        cur = _report("slow-host", 50_000.0, 250_000.0)
        cmp = compare_reports(base, cur, fail_factor=2.0)
        assert cmp.speedup_normalized == pytest.approx(1.0)
        assert not cmp.regressed

    def test_compare_flags_real_regression(self):
        base = _report("base", 100_000.0, 500_000.0)
        cur = _report("regressed", 40_000.0, 500_000.0)
        cmp = compare_reports(base, cur, fail_factor=2.0)
        assert cmp.regressed

    def test_old_schema_reports_still_load(self, tmp_path):
        """A v2 report (no ``median_wall_seconds``) loads with the new
        field defaulted — committed baselines stay comparable."""
        import json

        report = _report("legacy", 100_000.0, 500_000.0)
        path = save_report(report, tmp_path)
        data = json.loads(path.read_text())
        data["schema"] = 2
        for case in data["cases"]:
            del case["median_wall_seconds"]
        path.write_text(json.dumps(data))
        loaded = load_report(path)
        assert loaded.e2e_events_per_sec == pytest.approx(100_000.0)
        assert all(c.median_wall_seconds == 0.0 for c in loaded.cases)

    def test_unsupported_schema_rejected(self, tmp_path):
        import json

        path = save_report(_report("future", 1.0, 1.0), tmp_path)
        data = json.loads(path.read_text())
        data["schema"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_report(path)

    def test_median_round_trips_and_renders(self, tmp_path):
        report = _report("med", 100_000.0, 500_000.0)
        report.cases[1].median_wall_seconds = 1.25
        loaded = load_report(save_report(report, tmp_path))
        assert loaded.case("sc_griffin").median_wall_seconds == 1.25
        assert "Median (s)" in loaded.render()

    def test_render_summarizes_ring_and_batch_cases(self):
        report = _report("rb", 100_000.0, 500_000.0)
        report.cases.append(CaseResult(
            "ring_vs_heap", "ring", 0.5, 50_000, "events", 100_000.0, 0, 1,
            extra={"ring_speedup": 1.29, "ring_events_per_sec": 100_000.0,
                   "heap_events_per_sec": 77_000.0,
                   "results_identical": True},
        ))
        report.cases.append(CaseResult(
            "batched_replicas", "batch", 0.05, 4, "replicas", 80.0, 0, 1,
            extra={"batch_speedup": 20.7, "batched_replicas_per_sec": 80.0,
                   "proc_replicas_per_sec": 3.9, "replicas": 4},
        ))
        rendered = report.render()
        assert "1.29x" in rendered and "results identical: True" in rendered
        assert "20.70x" in rendered and "process-per-replica" in rendered
