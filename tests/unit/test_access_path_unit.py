"""Direct unit tests of MemoryAccessPath behaviors on a tiny machine."""

from dataclasses import replace

import pytest

from repro.config.presets import tiny_system
from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.mem.access import AccessKind
from repro.system.machine import Machine


def run_kernels(machine, accesses_by_wg, kernels=1):
    ks = []
    wg_id = 0
    for k in range(kernels):
        wgs = []
        for acc in accesses_by_wg[k] if kernels > 1 else accesses_by_wg:
            wgs.append(Workgroup(wg_id, k, [WavefrontTrace(acc)]))
            wg_id += 1
        ks.append(Kernel(k, wgs))
    machine.run(ks)
    return machine


def test_kind_counts_partition_transactions():
    machine = Machine(tiny_system(), "griffin")
    run_kernels(machine, [[(0, 0x100000, False), (10, 0x100040, False)],
                          [(0, 0x200000, True)]])
    counts = machine.access_path.kind_counts
    assert sum(counts.values()) == machine.access_path.total_issued == 3


def test_l1_tlb_hit_counter():
    machine = Machine(tiny_system(), "baseline")
    run_kernels(machine, [[(0, 0x100000, False), (5, 0x100040, False),
                           (5, 0x100080, False)]])
    assert machine.access_path.l1_tlb_hits == 2
    assert machine.access_path.iommu_trips == 1


def test_l2_tlb_hit_after_cu_switch():
    machine = Machine(tiny_system(), "baseline")
    # WG0 on GPU0/CU0 faults the page in kernel 0.
    k0 = Kernel(0, [Workgroup(0, 0, [WavefrontTrace([(0, 0x100000, False)])])])
    # Kernel 1's first workgroup also lands on GPU0, but the dispatcher's
    # CU rotation puts it on the *other* CU: L1 TLB cold, L2 TLB warm.
    k1 = Kernel(1, [Workgroup(1, 1, [WavefrontTrace([(0, 0x100040, False)])])])
    machine.run([k0, k1])
    assert machine.access_path.l2_tlb_hits >= 1


def test_remote_cache_write_invalidates_local_copy():
    cfg = tiny_system()
    cfg = replace(cfg, gpu=cfg.gpu.with_remote_cache(16))
    machine = Machine(cfg, "baseline")
    addr = 0x100000
    k0 = Kernel(0, [Workgroup(0, 0, [WavefrontTrace([(0, addr, False)])]),
                    Workgroup(1, 0, [WavefrontTrace([(0, 0x900000, False)])])])
    # GPU1: read (fills carve), write (invalidates), read (refills remotely).
    k1 = Kernel(1, [Workgroup(2, 1, [WavefrontTrace([(0, 0x900040, False)])]),
                    Workgroup(3, 1, [WavefrontTrace([
                        (0, addr, False), (10, addr, True), (10, addr, False),
                    ])])])
    machine.run([k0, k1])
    counts = machine.access_path.kind_counts
    # GPU1's read/write/read of GPU0's page all go remote (the write
    # dropped the cached copy), plus GPU0's one access to GPU1's page.
    assert counts[AccessKind.REMOTE_DCA] == 4
    assert counts[AccessKind.REMOTE_CACHE] == 0


def test_remote_cache_read_hit_counts_once():
    cfg = tiny_system()
    cfg = replace(cfg, gpu=cfg.gpu.with_remote_cache(16))
    machine = Machine(cfg, "baseline")
    addr = 0x100000
    k0 = Kernel(0, [Workgroup(0, 0, [WavefrontTrace([(0, addr, False)])]),
                    Workgroup(1, 0, [WavefrontTrace([(0, 0x900000, False)])])])
    k1 = Kernel(1, [Workgroup(2, 1, [WavefrontTrace([(0, 0x900040, False)])]),
                    Workgroup(3, 1, [WavefrontTrace([
                        (0, addr, False), (10, addr, False),
                    ])])])
    machine.run([k0, k1])
    counts = machine.access_path.kind_counts
    # GPU1's first read goes remote and fills the carve-out; its second
    # read hits it.  GPU0's access to GPU1's page is the other remote.
    assert counts[AccessKind.REMOTE_DCA] == 2
    assert counts[AccessKind.REMOTE_CACHE] == 1


def test_local_fraction_counts_remote_cache_as_local():
    cfg = tiny_system()
    cfg = replace(cfg, gpu=cfg.gpu.with_remote_cache(16))
    machine = Machine(cfg, "baseline")
    addr = 0x100000
    k0 = Kernel(0, [Workgroup(0, 0, [WavefrontTrace([(0, addr, False)])]),
                    Workgroup(1, 0, [WavefrontTrace([(0, 0x900000, False)])])])
    k1 = Kernel(1, [Workgroup(2, 1, [WavefrontTrace([(0, 0x900040, False)])]),
                    Workgroup(3, 1, [WavefrontTrace([
                        (0, addr, False), (10, addr, False),
                    ])])])
    machine.run([k0, k1])
    ap = machine.access_path
    counted_local = (
        ap.kind_counts[AccessKind.LOCAL]
        + ap.kind_counts[AccessKind.FAULT_MIGRATE]
        + ap.kind_counts[AccessKind.REMOTE_CACHE]
    )
    assert ap.local_fraction() == pytest.approx(counted_local / ap.total_issued)


def test_timeline_records_every_issue():
    machine = Machine(tiny_system(), "baseline")
    run_kernels(machine, [[(0, 0x100000, False), (5, 0x100040, True)]])
    page = 0x100000 // 4096
    assert machine.timeline.total_accesses(page) == 2
