"""Unit tests for the CARVE-style remote cache extension."""

import pytest

from dataclasses import replace

from repro.config.presets import tiny_system
from repro.mem.hierarchy import GPUMemoryHierarchy


def make_hierarchy(kb=16):
    cfg = tiny_system()
    gpu_cfg = cfg.gpu.with_remote_cache(kb)
    return GPUMemoryHierarchy(0, gpu_cfg, cfg.timing, cfg.page_size)


def test_disabled_by_default():
    cfg = tiny_system()
    h = GPUMemoryHierarchy(0, cfg.gpu, cfg.timing, cfg.page_size)
    assert h.remote_cache is None
    assert h.remote_cache_lookup(0, 0x1000) == -1.0
    h.remote_cache_fill(0x1000)  # no-op, no crash
    assert h.remote_cache_invalidate([1]) == 0


def test_fill_then_hit():
    h = make_hierarchy()
    assert h.remote_cache_lookup(0, 0x1000) == -1.0
    h.remote_cache_fill(0x1000)
    finish = h.remote_cache_lookup(10, 0x1000)
    assert finish > 10
    assert h.remote_cache_hits == 1


def test_hit_served_from_local_dram_speed():
    h = make_hierarchy()
    h.remote_cache_fill(0x1000)
    finish = h.remote_cache_lookup(0, 0x1000)
    # Far cheaper than a fabric round trip (>= 1000 cycles).
    assert finish < 500


def test_invalidate_page_drops_its_lines():
    h = make_hierarchy()
    h.remote_cache_fill(0x1000)
    h.remote_cache_fill(0x1040)
    h.remote_cache_fill(0x9000)
    dropped = h.remote_cache_invalidate([0x1000 // 4096])
    assert dropped == 2
    assert h.remote_cache_lookup(0, 0x1000) == -1.0
    assert h.remote_cache_lookup(0, 0x9000) >= 0


def test_with_remote_cache_config_helper():
    cfg = tiny_system()
    assert cfg.gpu.remote_cache_kb == 0
    assert cfg.gpu.with_remote_cache(64).remote_cache_kb == 64


def test_invalidate_address_single_line():
    h = make_hierarchy()
    h.remote_cache_fill(0x1000)
    h.remote_cache_fill(0x1040)
    assert h.remote_cache.invalidate_address(0x1000)
    assert not h.remote_cache.invalidate_address(0x1000)
    assert h.remote_cache_lookup(0, 0x1040) >= 0
