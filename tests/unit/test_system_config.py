"""Unit tests for Table II system configuration."""

import pytest

from repro.config.system import (
    KB,
    MB,
    CacheConfig,
    GPUConfig,
    LinkConfig,
    SystemConfig,
    TLBConfig,
)


def test_paper_gpu_has_36_cus():
    gpu = GPUConfig()
    assert gpu.num_shader_engines == 4
    assert gpu.cus_per_se == 9
    assert gpu.num_cus == 36


def test_paper_cache_sizes():
    gpu = GPUConfig()
    assert gpu.l1v.size_bytes == 16 * KB and gpu.l1v.ways == 4
    assert gpu.l1i.size_bytes == 32 * KB and gpu.l1i.ways == 4
    assert gpu.l1s.size_bytes == 16 * KB and gpu.l1s.ways == 4
    assert gpu.l2.size_bytes == 256 * KB and gpu.l2.ways == 16
    assert gpu.l2_slices == 8


def test_paper_tlb_geometry():
    gpu = GPUConfig()
    assert gpu.l1_tlb.num_sets == 1 and gpu.l1_tlb.ways == 32
    assert gpu.l2_tlb.num_sets == 32 and gpu.l2_tlb.ways == 16


def test_paper_dram_is_512mb_8_channels():
    gpu = GPUConfig()
    assert gpu.dram.size_bytes == 512 * MB
    assert gpu.dram.channels == 8


def test_paper_link_is_pcie4_32gbps():
    cfg = SystemConfig()
    assert cfg.link.bandwidth_gbps == 32.0
    assert "PCIe" in cfg.link.name


def test_paper_iommu_has_8_walkers():
    assert SystemConfig().iommu.num_walkers == 8


def test_page_size_is_4kb():
    assert SystemConfig().page_size == 4096


def test_cpu_flush_is_100_cycles():
    # The paper uses a fixed 100-cycle CPU flush penalty, following [11].
    assert SystemConfig().timing.cpu_flush_cycles == 100


def test_cache_num_sets():
    c = CacheConfig(16 * KB, 4, 64)
    assert c.num_sets == 64


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(1000, 3, 64)


def test_tlb_capacity():
    assert TLBConfig(32, 16).capacity == 512


def test_link_bytes_per_cycle_at_1ghz():
    link = LinkConfig(bandwidth_gbps=32.0)
    assert link.bytes_per_cycle(1.0) == 32.0


def test_link_bytes_per_cycle_scales_with_clock():
    link = LinkConfig(bandwidth_gbps=32.0)
    assert link.bytes_per_cycle(2.0) == 16.0


def test_with_link_replaces_fabric_only():
    cfg = SystemConfig()
    nv = cfg.with_link(LinkConfig(name="NVLink", bandwidth_gbps=128.0))
    assert nv.link.name == "NVLink"
    assert nv.gpu == cfg.gpu


def test_with_overrides():
    cfg = SystemConfig().with_overrides(num_gpus=2)
    assert cfg.num_gpus == 2


def test_invalid_num_gpus_rejected():
    with pytest.raises(ValueError):
        SystemConfig(num_gpus=0)


def test_non_power_of_two_page_size_rejected():
    with pytest.raises(ValueError):
        SystemConfig(page_size=3000)


def test_table_rows_include_54_l1_tlbs():
    # Table II lists 54 L1 TLBs per GPU.
    rows = {r[0]: r for r in SystemConfig().table_rows()}
    assert rows["L1 TLB"][2] == "54"


def test_table_rows_cover_all_components():
    names = [r[0] for r in SystemConfig().table_rows()]
    for expected in ["CU", "L1 Vector Cache", "L2 Cache", "DRAM", "L1 TLB",
                     "L2 TLB", "IOMMU", "Inter-Device Network"]:
        assert expected in names
