"""Unit tests for CPMS: fault batching and migration planning."""

import pytest

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import MigrationCandidate, PageClass
from repro.core.cpms import FaultBatcher, MigrationPlanner
from repro.sim.engine import Engine


def cand(page, src, dst, benefit=1.0):
    return MigrationCandidate(page, src, dst, PageClass.MOSTLY_DEDICATED, benefit)


class TestFaultBatcher:
    def test_batch_releases_when_full(self):
        engine = Engine()
        batches = []
        b = FaultBatcher(engine, 3, 1000, batches.append)
        for i in range(3):
            b.add(i)
        assert batches == [[0, 1, 2]]
        assert b.pending() == 0

    def test_batch_size_one_is_fcfs(self):
        engine = Engine()
        batches = []
        b = FaultBatcher(engine, 1, 1000, batches.append)
        b.add("a")
        b.add("b")
        assert batches == [["a"], ["b"]]

    def test_partial_batch_flushes_on_timeout(self):
        engine = Engine()
        batches = []
        b = FaultBatcher(engine, 8, 500, batches.append)
        b.add("x")
        engine.run()
        assert engine.now == 500
        assert batches == [["x"]]

    def test_timeout_cancelled_when_batch_fills(self):
        engine = Engine()
        batches = []
        b = FaultBatcher(engine, 2, 500, batches.append)
        b.add(1)
        b.add(2)
        engine.run()
        assert batches == [[1, 2]]  # no empty timeout batch afterwards

    def test_second_batch_restarts_timeout(self):
        engine = Engine()
        batches = []
        b = FaultBatcher(engine, 2, 500, batches.append)
        b.add(1)
        b.add(2)
        b.add(3)
        engine.run()
        assert batches == [[1, 2], [3]]

    def test_drain_forces_partial_batch(self):
        engine = Engine()
        batches = []
        b = FaultBatcher(engine, 8, 500, batches.append)
        b.add(1)
        b.drain()
        assert batches == [[1]]

    def test_counters(self):
        engine = Engine()
        b = FaultBatcher(engine, 2, 500, lambda batch: None)
        b.add(1)
        b.add(2)
        b.add(3)
        assert b.faults_enqueued == 3
        assert b.batches_flushed == 1

    def test_rejects_zero_batch_size(self):
        with pytest.raises(ValueError):
            FaultBatcher(Engine(), 0, 500, lambda b: None)


class TestMigrationPlanner:
    def make(self, **overrides):
        return MigrationPlanner(
            GriffinHyperParams.calibrated().with_overrides(**overrides)
        )

    def test_empty_candidates_empty_plan(self):
        assert self.make().plan([]) == {}

    def test_groups_by_source(self):
        planner = self.make(min_pages_per_source=1)
        plan = planner.plan([cand(1, 0, 1), cand(2, 0, 2), cand(3, 1, 0)])
        assert set(plan) == {0, 1}
        assert len(plan[0]) == 2

    def test_page_budget_enforced(self):
        planner = self.make(max_pages_per_round=2, min_pages_per_source=1)
        plan = planner.plan([cand(i, 0, 1, benefit=i) for i in range(5)])
        chosen = [c.page for cands in plan.values() for c in cands]
        assert len(chosen) == 2
        assert set(chosen) == {4, 3}  # highest benefit first

    def test_source_cap_prefers_highest_benefit_sources(self):
        planner = self.make(max_source_gpus_per_round=1, min_pages_per_source=1)
        plan = planner.plan([
            cand(1, 0, 1, benefit=1.0),
            cand(2, 2, 1, benefit=100.0),
        ])
        assert set(plan) == {2}

    def test_min_pages_per_source_filters_thin_sources(self):
        planner = self.make(min_pages_per_source=3)
        plan = planner.plan([cand(1, 0, 1), cand(2, 0, 1)])
        assert plan == {}

    def test_min_pages_per_source_admits_thick_sources(self):
        planner = self.make(min_pages_per_source=2)
        plan = planner.plan([cand(1, 0, 1), cand(2, 0, 1), cand(3, 1, 0)])
        assert set(plan) == {0}

    def test_deferred_accounting(self):
        planner = self.make(max_pages_per_round=1, min_pages_per_source=1)
        planner.plan([cand(1, 0, 1), cand(2, 0, 1)])
        assert planner.candidates_deferred == 1
        assert planner.pages_planned == 1
        assert planner.rounds_planned == 1
