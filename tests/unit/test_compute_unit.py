"""Unit tests for the Compute Unit: issue chains, in-flight buffer, drain."""

import pytest

from repro.config.presets import tiny_system
from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.wavefront import WavefrontTrace, Workgroup
from repro.sim.engine import Engine


class FakeMemory:
    """Completes every transaction a fixed latency after issue."""

    def __init__(self, engine, latency=10, page_size=4096):
        self.engine = engine
        self.latency = latency
        self.page_size = page_size
        self.issued = []
        self.cu = None

    def issue(self, txn, on_complete):
        txn.page = txn.address // self.page_size
        self.cu.note_translated(txn)
        self.issued.append(txn)
        self.engine.schedule(self.latency, on_complete, txn, self.engine.now + self.latency)


@pytest.fixture
def setup():
    engine = Engine()
    cfg = tiny_system()
    mem = FakeMemory(engine)
    completed = []
    cu = ComputeUnit(
        engine, 0, 0, 0, cfg.gpu, cfg.timing, mem.issue, completed.append
    )
    mem.cu = cu
    return engine, cu, mem, completed


def make_wg(wg_id, accesses_per_wf, wavefronts=1, delay=5, base=0):
    wfs = [
        WavefrontTrace([(delay, base + (w * 100 + i) * 64, False) for i in range(accesses_per_wf)])
        for w in range(wavefronts)
    ]
    return Workgroup(wg_id, 0, wfs)


def test_workgroup_runs_to_completion(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(make_wg(0, 3), 0)
    engine.run()
    assert len(completed) == 1
    assert len(mem.issued) == 3
    assert cu.idle()


def test_accesses_issue_sequentially_per_wavefront(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(make_wg(0, 2, delay=5), 0)
    engine.run()
    first, second = mem.issued
    # Second access issues after the first completes (+10) plus delay (5).
    assert second.issue_time == first.issue_time + 15


def test_wavefronts_interleave(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(make_wg(0, 1, wavefronts=3), 0)
    engine.run()
    issue_times = {t.issue_time for t in mem.issued}
    assert len(issue_times) == 1  # all three issue concurrently


def test_concurrent_workgroup_limit(setup):
    engine, cu, mem, completed = setup
    limit = cu.config.concurrent_workgroups_per_cu
    for i in range(limit + 2):
        cu.enqueue_workgroup(make_wg(i, 1), 0)
    engine.run(until=1)
    assert len(cu._running_wgs) <= limit
    engine.run()
    assert len(completed) == limit + 2


def test_inflight_buffer_bounds_outstanding(setup):
    engine, cu, mem, completed = setup
    wide = make_wg(0, 1, wavefronts=cu.config.max_inflight_per_cu + 3)
    cu.enqueue_workgroup(wide, 0)
    engine.run(until=6)
    assert len(cu.outstanding) <= cu.config.max_inflight_per_cu
    engine.run()
    assert len(completed) == 1


def test_empty_workgroup_completes_immediately(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(Workgroup(0, 0, []), 0)
    engine.run()
    assert completed and not mem.issued


def test_drain_immediate_when_no_overlap(setup):
    engine, cu, mem, completed = setup
    drained = []
    cu.enqueue_workgroup(make_wg(0, 2, base=0), 0)

    def request():
        cu.request_drain({9999}, lambda: drained.append(engine.now))

    engine.schedule(7, request)
    engine.run()
    assert drained  # fired
    assert cu.stats.get("drain_immediate") == 1


def test_drain_waits_for_overlapping_transactions(setup):
    engine, cu, mem, completed = setup
    drained = []
    cu.enqueue_workgroup(make_wg(0, 1, delay=0, base=0), 0)  # page 0

    def request():
        assert cu.outstanding  # the access is in flight
        cu.request_drain({0}, lambda: drained.append(engine.now))

    engine.schedule(5, request)
    engine.run()
    assert drained
    assert drained[0] >= 10  # after the in-flight access completed


def test_drain_pauses_issue_until_resume(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(make_wg(0, 3, delay=0), 0)

    def request():
        cu.request_drain({9999}, lambda: None)

    engine.schedule(6, request)  # after first access is in flight
    engine.run()
    assert not completed  # stuck: paused mid-workgroup
    issued_while_paused = len(mem.issued)
    cu.resume()
    engine.run()
    assert len(mem.issued) == 3
    assert completed
    assert issued_while_paused < 3


def test_flush_discards_and_pays_replay(setup):
    engine, cu, mem, completed = setup
    flushed_at = []
    cu.enqueue_workgroup(make_wg(0, 2, delay=0), 0)

    def request():
        n = len(cu.outstanding)
        assert n == 1
        cu.request_flush(lambda: flushed_at.append(engine.now))

    engine.schedule(5, request)
    engine.run()
    timing = cu.timing
    # Completion at t=10, then flush penalty + 1 replayed transaction.
    expected = 10 + timing.gpu_flush_cycles + timing.gpu_flush_replay_per_txn
    assert flushed_at == [expected]


def test_flush_with_empty_pipeline_is_fixed_cost(setup):
    engine, cu, mem, completed = setup
    flushed_at = []
    cu.request_flush(lambda: flushed_at.append(engine.now))
    engine.run()
    assert flushed_at == [cu.timing.gpu_flush_cycles]


def test_inflight_pages_reflects_buffer(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(make_wg(0, 1, base=0), 0)
    engine.run(until=6)
    assert cu.inflight_pages() == {0}
    engine.run()
    assert cu.inflight_pages() == set()


def test_stats_counters(setup):
    engine, cu, mem, completed = setup
    cu.enqueue_workgroup(make_wg(0, 4), 0)
    engine.run()
    assert cu.stat("transactions_issued") == 4
    assert cu.stat("transactions_completed") == 4
    assert cu.stat("workgroups_started") == 1
    assert cu.stat("workgroups_completed") == 1
