"""Unit tests for the sqlite sweep queue: leases, backoff, quarantine.

These tests drive :class:`repro.harness.queue.SweepQueue` directly with
synthetic cells and explicit clocks (every protocol method accepts
``now=``), so lease expiry, backoff windows, and quarantine are exercised
deterministically — no sleeping, no real workers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.io import failed_from_dict, failed_to_dict
from repro.harness.queue import (
    QueueSettings,
    SweepQueue,
    backoff_delay,
    jittered_backoff_delay,
)
from repro.harness.results import FailedRun, RunResult
from repro.harness.sweep import SweepKey
from repro.mem.access import AccessKind
from repro.metrics.occupancy import OccupancySnapshot


def make_result(workload="MT", policy="griffin") -> RunResult:
    return RunResult(
        workload=workload, policy=policy, cycles=123.0, transactions=4,
        occupancy=OccupancySnapshot((2, 1), cpu_pages=0),
        cpu_shootdowns=0, gpu_shootdowns=0,
        cpu_to_gpu_migrations=1, gpu_to_gpu_migrations=0, dftm_denials=0,
        kind_counts={k: 0 for k in AccessKind}, local_fraction=0.5,
        migration_events=[], seed=1, scale=0.01,
    )


def make_cells(n=3):
    return [
        (SweepKey("MT", f"policy{i}", "tiny", "default"), ("args", i),
         f"fp{i}", None)
        for i in range(n)
    ]


@pytest.fixture
def settings():
    return QueueSettings(lease_duration=10.0, max_attempts=3,
                         backoff_base=1.0, backoff_cap=4.0)


@pytest.fixture
def queue(tmp_path, settings):
    return SweepQueue.create(tmp_path / "q", make_cells(), settings)


class TestBackoff:
    def test_first_retry_waits_base(self):
        assert backoff_delay(1, base=2.0, cap=60.0) == 2.0

    def test_doubles_per_attempt(self):
        delays = [backoff_delay(a, base=1.0, cap=1e9) for a in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_capped(self):
        assert backoff_delay(10, base=1.0, cap=5.0) == 5.0

    def test_huge_attempt_counts_do_not_overflow(self):
        assert backoff_delay(10_000, base=1.0, cap=30.0) == 30.0

    def test_zero_attempts_no_delay(self):
        assert backoff_delay(0, base=1.0, cap=30.0) == 0.0


class TestSettings:
    def test_json_round_trip(self):
        s = QueueSettings(lease_duration=5.0, max_attempts=7,
                          backoff_base=0.5, backoff_cap=8.0,
                          cell_timeout=120.0)
        assert QueueSettings.from_json(s.to_json()) == s

    def test_none_timeout_round_trips(self):
        s = QueueSettings()
        assert QueueSettings.from_json(s.to_json()).cell_timeout is None


class TestCreation:
    def test_fresh_queue_is_all_open(self, queue):
        stats = queue.stats()
        assert stats.open == 3 and stats.total == 3
        assert not queue.drained()

    def test_create_twice_refuses(self, tmp_path, settings):
        SweepQueue.create(tmp_path / "q", make_cells(), settings)
        with pytest.raises(FileExistsError):
            SweepQueue.create(tmp_path / "q", make_cells(), settings)

    def test_unpicklable_grid_is_rejected_up_front(self, tmp_path):
        bad = [(SweepKey("MT", "p", "c", "h"), (lambda: None,), None, None)]
        with pytest.raises(ValueError, match="picklable"):
            SweepQueue.create(tmp_path / "q", bad)

    def test_attach_validates_spec_digest(self, tmp_path, settings):
        SweepQueue.create(tmp_path / "q", make_cells(), settings)
        again = SweepQueue.create_or_attach(tmp_path / "q", make_cells())
        assert again.stats().total == 3
        with pytest.raises(ValueError, match="different grid"):
            SweepQueue.create_or_attach(tmp_path / "q", make_cells(2))

    def test_open_requires_existing_queue(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SweepQueue.open(tmp_path / "nope")


class TestLeaseProtocol:
    def test_claim_leases_lowest_open_cell(self, queue):
        lease = queue.claim("w1", now=100.0)
        assert lease.idx == 0 and lease.attempts == 1
        assert lease.args == ("args", 0)
        assert lease.deadline == 110.0
        assert queue.stats().leased == 1

    def test_claims_are_exclusive(self, queue):
        indices = {queue.claim("w1", now=0.0).idx for _ in range(3)}
        assert indices == {0, 1, 2}
        assert queue.claim("w1", now=0.0) is None  # all leased

    def test_heartbeat_extends_only_the_owners_lease(self, queue):
        lease = queue.claim("w1", now=0.0)
        assert queue.heartbeat(lease.idx, "w1", now=5.0)
        assert not queue.heartbeat(lease.idx, "intruder", now=5.0)
        # The extension is real: at t=12 the original deadline (10)
        # has passed but the lease is still held.
        assert queue.reap(now=12.0) == 0

    def test_release_refunds_the_attempt(self, queue):
        lease = queue.claim("w1", now=0.0)
        assert queue.release(lease.idx, "w1")
        stats = queue.stats()
        assert stats.open == 3 and stats.leased == 0
        again = queue.claim("w2", now=0.0)
        assert again.idx == lease.idx and again.attempts == 1

    def test_release_requires_ownership(self, queue):
        lease = queue.claim("w1", now=0.0)
        assert not queue.release(lease.idx, "intruder")
        assert queue.stats().leased == 1

    def test_expired_lease_reclaimed_on_claim(self, queue):
        dead = queue.claim("w-dead", now=0.0)
        # At t=11 the lease (deadline 10) has expired; a claiming worker
        # reclaims it, but backoff (base 1.0, attempt 1 -> 1s) keeps the
        # cell out of reach until t=12.
        queue.claim("w2", now=11.0)
        queue.claim("w2", now=11.0)
        queue.claim("w2", now=11.0)  # leases cells 1 and 2; 0 backing off
        assert queue.claim("w2", now=11.5) is None
        revived = queue.claim("w2", now=12.5)
        assert revived.idx == dead.idx
        assert revived.attempts == 2  # claim counts executions granted

    def test_reap_reclaims_without_a_claimer(self, queue):
        queue.claim("w-dead", now=0.0)
        assert queue.reap(now=5.0) == 0  # still within the lease
        assert queue.reap(now=11.0) == 1
        assert queue.stats().leased == 0 and queue.stats().open == 3

    def test_lease_expiry_exhausts_into_quarantine(self, queue):
        now = 0.0
        for attempt in range(3):  # max_attempts
            queue.reap(now=now)  # reclaim the previous expired lease
            lease = queue.claim("w-dying", now=now + 10.0)
            assert lease is not None and lease.idx == 0
            now += 100.0  # a lifetime: lease long expired, backoff over
        assert queue.reap(now=now) == 1
        rows = queue.rows()
        idx, status, _own, _last, attempts, error_type = rows[0][:6]
        assert (idx, status, attempts) == (0, "quarantined", 3)
        assert error_type == "LeaseExpired"
        assert rows[0][8] is not None  # bundle_path
        assert (Path(rows[0][8]) / "manifest.json").exists()


class TestCommits:
    def test_complete_marks_done_and_writes_result(self, queue):
        lease = queue.claim("w1", now=0.0)
        assert queue.complete(lease.idx, "w1", make_result())
        row = queue.rows()[lease.idx]
        assert row[1] == "done" and row[7] is not None
        assert json.loads(Path(row[7]).read_text())["workload"] == "MT"

    def test_duplicate_commit_is_a_no_op(self, queue):
        lease = queue.claim("w1", now=0.0)
        assert queue.complete(lease.idx, "w1", make_result())
        first = Path(queue.rows()[lease.idx][7]).read_bytes()
        # A zombie worker (reclaimed lease, still executing) commits the
        # same deterministic result later: nothing changes.
        assert not queue.complete(lease.idx, "w-zombie", make_result())
        assert Path(queue.rows()[lease.idx][7]).read_bytes() == first
        assert queue.stats().done == 1

    def test_commit_lands_even_after_lease_was_lost(self, queue):
        lease = queue.claim("w1", now=0.0)
        queue.reap(now=11.0)  # lease expires; cell re-opened
        assert queue.complete(lease.idx, "w1", make_result())
        assert queue.rows()[lease.idx][1] == "done"

    def test_deterministic_failure_is_terminal(self, queue):
        lease = queue.claim("w1", now=0.0)
        status = queue.fail(lease.idx, "w1", "ValueError",
                            "unknown policy", retryable=False)
        assert status == "failed"
        # Never retried: the cell is not claimable again.
        assert queue.claim("w1", now=1000.0).idx != lease.idx

    def test_retryable_failure_backs_off_then_reopens(self, queue, settings):
        lease = queue.claim("w1", now=0.0)
        status = queue.fail(lease.idx, "w1", "CellTimeout", "killed",
                            retryable=True, now=50.0)
        assert status == "open"
        # backoff_delay(1) = base = 1s: not claimable at 50.5, is at 51.5.
        claimed = {queue.claim("w1", now=50.5).idx,
                   queue.claim("w1", now=50.5).idx}
        assert lease.idx not in claimed
        assert queue.claim("w1", now=51.5).idx == lease.idx

    def test_quarantine_after_max_attempts_writes_bundle(self, queue):
        now = 0.0
        for attempt in range(1, 4):
            lease = queue.claim("w1", now=now)
            status = queue.fail(lease.idx, "w1", "CellTimeout", "killed",
                                retryable=True, now=now)
            now += 100.0
        assert status == "quarantined"
        row = queue.rows()[lease.idx]
        assert row[1] == "quarantined" and row[4] == 3
        manifest = json.loads((Path(row[8]) / "manifest.json").read_text())
        assert manifest["kind"] == "quarantine"
        assert manifest["failure"]["error_type"] == "CellTimeout"
        assert manifest["failure"]["attempts"] == 3
        events = [e["event"] for e in manifest["history"]]
        assert events.count("claim") == 3 and events[-1] == "quarantined"


class TestCollect:
    def test_collect_reports_every_cell_in_grid_order(self, queue):
        done = queue.claim("w1", now=0.0)
        queue.complete(done.idx, "w1", make_result())
        failed = queue.claim("w1", now=0.0)
        queue.fail(failed.idx, "w1", "ValueError", "boom", retryable=False)
        result = queue.collect()  # cell 2 still open
        assert len(result.points) == 1 and len(result.failures) == 2
        keys = list(result.points) + list(result.failures)
        assert [k.policy for k in keys] == ["policy0", "policy1", "policy2"]
        incomplete = result.failures[SweepKey("MT", "policy2", "tiny",
                                              "default")]
        assert incomplete.error_type == "Incomplete"

    def test_collected_failures_carry_queue_provenance(self, queue):
        lease = queue.claim("w1", now=0.0)
        queue.fail(lease.idx, "w1", "ValueError", "boom", retryable=False)
        failure = next(iter(queue.collect().failures.values()))
        assert failure.attempts == 1 and failure.last_owner == "w1"


class TestFailedRunIO:
    def test_round_trip_preserves_queue_fields(self):
        original = FailedRun(
            workload="MT", policy="griffin", error_type="CellTimeout",
            message="killed", bundle_path="/tmp/b", attempts=3,
            last_owner="host:1:abc",
        )
        rebuilt = failed_from_dict(failed_to_dict(original))
        assert rebuilt == original

    def test_default_fields_are_not_serialized(self):
        plain = FailedRun(workload="MT", policy="griffin",
                          error_type="ValueError", message="boom")
        data = failed_to_dict(plain)
        assert "attempts" not in data and "last_owner" not in data
        assert "bundle" not in data
        assert failed_from_dict(data) == plain


class TestJitteredBackoff:
    def test_first_attempt_collapses_to_base(self):
        # The attempt-1 window is [base, base], so the existing lease
        # protocol tests (which pin the first reclaim delay to exactly
        # ``base``) stay valid with jitter enabled.
        for token in ("", "0:1:w1", "cell:1:other"):
            assert jittered_backoff_delay(1, base=1.0, cap=4.0,
                                          token=token) == 1.0

    def test_deterministic_for_a_token(self):
        a = jittered_backoff_delay(3, base=1.0, cap=60.0, token="7:3:w1")
        b = jittered_backoff_delay(3, base=1.0, cap=60.0, token="7:3:w1")
        assert a == b

    def test_bounded_by_window(self):
        for attempt in range(1, 12):
            for cell in range(20):
                delay = jittered_backoff_delay(
                    attempt, base=0.5, cap=8.0, token=f"{cell}:{attempt}:x"
                )
                ceiling = min(0.5 * 3.0 ** (attempt - 1), 8.0)
                assert 0.5 <= delay <= max(ceiling, 0.5)

    def test_tokens_spread_the_herd(self):
        # A SIGKILLed 16-worker fleet reclaims 16 cells at once; their
        # delays must not collapse onto one instant.
        delays = {
            round(jittered_backoff_delay(2, base=1.0, cap=60.0,
                                         token=f"{cell}:2:dead"), 6)
            for cell in range(16)
        }
        assert len(delays) >= 12

    def test_zero_attempts_and_zero_base(self):
        assert jittered_backoff_delay(0, base=1.0, cap=4.0) == 0.0
        assert jittered_backoff_delay(3, base=0.0, cap=4.0) == 0.0

    def test_reclaimed_cells_reopen_at_spread_instants(self, tmp_path):
        settings = QueueSettings(lease_duration=10.0, max_attempts=5,
                                 backoff_base=1.0, backoff_cap=30.0)
        queue = SweepQueue.create(tmp_path / "q", make_cells(8), settings)
        for _ in range(8):
            assert queue.claim("doomed", now=0.0) is not None
        # Simulate one more failed generation so attempts=2 opens a real
        # jitter window, then let every lease expire at the same instant.
        queue.reap(now=50.0)   # attempts 1 -> reclaim, backoff base
        for _ in range(8):
            assert queue.claim("doomed2", now=60.0) is not None
        queue.reap(now=120.0)  # attempts 2 -> jittered window
        import sqlite3

        with sqlite3.connect(queue.db_path) as conn:
            not_befores = {
                row[0] for row in
                conn.execute("SELECT not_before FROM cells")
            }
        assert len(not_befores) >= 6  # decorrelated, not a herd


class TestQueueHealth:
    def test_fresh_queue_counts(self, queue):
        health = queue.health(now=0.0)
        assert health.stats.open == 3 and health.stats.leased == 0
        assert health.leases == () and not health.drained

    def test_live_lease_age_and_remaining(self, queue):
        queue.claim("w1", now=100.0)  # lease_duration 10
        health = queue.health(now=104.0)
        (lease,) = health.leases
        assert lease.owner == "w1" and lease.attempts == 1
        assert lease.age == pytest.approx(4.0)
        assert lease.remaining == pytest.approx(6.0)
        assert not lease.stale and health.stale_leases == ()

    def test_expired_lease_reported_stale(self, queue):
        queue.claim("w1", now=100.0)
        health = queue.health(now=115.0)
        (lease,) = health.leases
        assert lease.stale and lease.remaining == pytest.approx(-5.0)
        assert len(health.stale_leases) == 1

    def test_drained_and_to_dict_shape(self, queue):
        for _ in range(3):
            lease = queue.claim("w1", now=0.0)
            queue.complete(lease.idx, "w1", make_result())
        health = queue.health(now=1.0)
        assert health.drained
        payload = health.to_dict()
        assert payload["cells"]["done"] == 3
        assert payload["drained"] is True
        assert payload["leases"] == [] and payload["stale_leases"] == 0
