"""Unit tests for the HBM DRAM model."""

import pytest

from repro.config.system import DRAMConfig
from repro.mem.dram import DRAM


def make_dram(channels=2, bpc=32.0, latency=200):
    return DRAM("d", DRAMConfig(channels=channels, bytes_per_cycle=bpc, latency=latency))


def test_access_pays_latency_plus_serialization():
    d = make_dram()
    assert d.access(0, 0, 64) == pytest.approx(202.0)


def test_lines_interleave_across_channels():
    d = make_dram(channels=2)
    assert d.channel_for(0) is not d.channel_for(64)
    assert d.channel_for(0) is d.channel_for(128)


def test_same_channel_accesses_serialize():
    d = make_dram(channels=2)
    first = d.access(0, 0, 64)
    second = d.access(0, 128, 64)  # same channel as address 0
    assert second == first + 2.0


def test_different_channels_do_not_serialize():
    d = make_dram(channels=2)
    a = d.access(0, 0, 64)
    b = d.access(0, 64, 64)
    assert a == b


def test_bulk_read_uses_all_channels():
    d = make_dram(channels=4, bpc=32.0)
    # 4096 bytes over 4 channels at 32 B/cy = 32 cycles + latency.
    assert d.bulk_read(0, 0, 4096) == pytest.approx(232.0)


def test_total_bytes():
    d = make_dram()
    d.access(0, 0, 64)
    d.bulk_read(0, 0, 128)
    assert d.total_bytes() == 192


def test_access_counter():
    d = make_dram()
    d.access(0, 0, 64)
    d.access(0, 64, 64)
    assert d.accesses == 2


def test_utilization_bounded():
    d = make_dram()
    d.access(0, 0, 64)
    u = d.utilization(100)
    assert 0.0 <= u <= 1.0
    assert d.utilization(0) == 0.0
