"""Unit tests for metrics: occupancy, timeline, report math."""

import pytest

from repro.metrics.occupancy import OccupancySnapshot, imbalance_index
from repro.metrics.report import format_table, geometric_mean, normalize, speedup
from repro.metrics.timeline import MigrationEvent, PageAccessTimeline


class TestOccupancy:
    def test_percentages_sum_to_100(self):
        snap = OccupancySnapshot((10, 20, 30, 40))
        assert sum(snap.percentages()) == pytest.approx(100.0)

    def test_percentages_empty(self):
        assert OccupancySnapshot((0, 0)).percentages() == [0.0, 0.0]

    def test_max_share(self):
        assert OccupancySnapshot((10, 30)).max_share() == pytest.approx(0.75)
        assert OccupancySnapshot((0, 0)).max_share() == 0.0

    def test_imbalance_uniform_is_zero(self):
        assert imbalance_index([25, 25, 25, 25]) == pytest.approx(0.0)

    def test_imbalance_all_on_one_is_one(self):
        assert imbalance_index([100, 0, 0, 0]) == pytest.approx(1.0)

    def test_imbalance_monotone(self):
        assert imbalance_index([40, 20, 20, 20]) < imbalance_index([70, 10, 10, 10])

    def test_imbalance_degenerate_cases(self):
        assert imbalance_index([0, 0]) == 0.0
        assert imbalance_index([5]) == 0.0


class TestTimeline:
    def test_totals_accumulate(self):
        tl = PageAccessTimeline(2)
        tl.record(0, 0, 7)
        tl.record(10, 1, 7)
        tl.record(20, 1, 7)
        assert tl.per_gpu_totals(7) == [1, 2]
        assert tl.total_accesses(7) == 3

    def test_unknown_page_zero(self):
        tl = PageAccessTimeline(2)
        assert tl.total_accesses(9) == 0
        assert tl.per_gpu_totals(9) == [0, 0]

    def test_hottest_pages_ranked(self):
        tl = PageAccessTimeline(2)
        for _ in range(3):
            tl.record(0, 0, 1)
        tl.record(0, 0, 2)
        assert tl.hottest_pages(2) == [1, 2]

    def test_hottest_shared_requires_multiple_gpus(self):
        tl = PageAccessTimeline(2)
        for _ in range(10):
            tl.record(0, 0, 1)   # single-GPU page
        tl.record(0, 0, 2)
        tl.record(0, 1, 2)       # shared page
        assert tl.hottest_shared_pages(1) == [2]

    def test_hottest_shifting_excludes_uniform_and_single(self):
        tl = PageAccessTimeline(4)
        for g in range(4):       # perfectly uniform page
            for _ in range(25):
                tl.record(0, g, 1)
        for _ in range(100):     # single-GPU page
            tl.record(0, 0, 2)
        for _ in range(60):      # shifting-style page: 60/40 split
            tl.record(0, 0, 3)
        for _ in range(40):
            tl.record(0, 1, 3)
        assert tl.hottest_shifting_pages(1) == [3]

    def test_series_only_for_watched_pages(self):
        tl = PageAccessTimeline(2, bucket_cycles=100, watch_pages=[5])
        tl.record(50, 0, 5)
        tl.record(150, 1, 5)
        tl.record(50, 0, 6)
        assert tl.series(5) == [(0, [1, 0]), (100, [0, 1])]
        assert tl.series(6) == []

    def test_series_percentages(self):
        tl = PageAccessTimeline(2, bucket_cycles=100, watch_pages=[5])
        tl.record(0, 0, 5)
        tl.record(1, 0, 5)
        tl.record(2, 1, 5)
        (_, pct), = tl.series_percentages(5)
        assert pct == pytest.approx([200 / 3, 100 / 3])

    def test_migration_event_fields(self):
        e = MigrationEvent(100.0, 7, -1, 2)
        assert e.src == -1 and e.dst == 2


class TestReport:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_speedup(self):
        assert speedup(200, 100) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_format_table_alignment(self):
        out = format_table(["A", "Long"], [["x", 1], ["yy", 22]], "T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "A" in lines[1] and "Long" in lines[1]
        assert len(lines) == 5
