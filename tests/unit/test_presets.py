"""Unit tests for system presets."""

from repro.config.presets import (
    NVLINK,
    PCIE_V4,
    nvlink_system,
    paper_system,
    small_system,
    tiny_system,
)


def test_paper_system_matches_table2():
    cfg = paper_system()
    assert cfg.num_gpus == 4
    assert cfg.gpu.num_cus == 36
    assert cfg.link.bandwidth_gbps == 32.0


def test_nvlink_system_has_faster_fabric():
    assert nvlink_system().link.bandwidth_gbps > paper_system().link.bandwidth_gbps


def test_nvlink_preset_name():
    assert NVLINK.name == "NVLink"
    assert PCIE_V4.name == "PCIe-v4"


def test_small_system_is_smaller_but_same_mechanisms():
    cfg = small_system()
    assert cfg.num_gpus == 4
    assert cfg.gpu.num_cus < paper_system().gpu.num_cus
    assert cfg.page_size == 4096


def test_tiny_system_two_gpus():
    cfg = tiny_system()
    assert cfg.num_gpus == 2
    assert cfg.gpu.num_cus == 2


def test_gpu_count_overridable():
    assert paper_system(num_gpus=8).num_gpus == 8
    assert tiny_system(num_gpus=3).num_gpus == 3
