"""Unit tests for the simulation engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_time_starts_at_zero(engine):
    assert engine.now == 0.0


def test_schedule_and_run_advances_clock(engine):
    seen = []
    engine.schedule(10, seen.append, "a")
    engine.schedule(5, seen.append, "b")
    end = engine.run()
    assert seen == ["b", "a"]
    assert end == 10


def test_schedule_at_absolute_time(engine):
    seen = []
    engine.schedule_at(7, seen.append, 7)
    engine.run()
    assert seen == [7]
    assert engine.now == 7


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_past_rejected(engine):
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_events_can_schedule_more_events(engine):
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1, chain, n + 1)

    engine.schedule(0, chain, 0)
    engine.run()
    assert seen == [0, 1, 2, 3]
    assert engine.now == 3


def test_run_until_stops_before_later_events(engine):
    seen = []
    engine.schedule(5, seen.append, "early")
    engine.schedule(50, seen.append, "late")
    engine.run(until=10)
    assert seen == ["early"]
    assert engine.now == 10
    assert engine.pending_events() == 1


def test_run_resumes_after_until(engine):
    seen = []
    engine.schedule(50, seen.append, "late")
    engine.run(until=10)
    engine.run()
    assert seen == ["late"]


def test_stop_halts_the_loop(engine):
    seen = []
    engine.schedule(1, seen.append, 1)
    engine.schedule(2, lambda: engine.stop())
    engine.schedule(3, seen.append, 3)
    engine.run()
    assert seen == [1]
    assert engine.pending_events() == 1


def test_max_events_bound(engine):
    for i in range(10):
        engine.schedule(i, lambda: None)
    engine.run(max_events=4)
    assert engine.events_executed == 4


def test_events_executed_counter(engine):
    for i in range(5):
        engine.schedule(i, lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_engine_not_reentrant(engine):
    def reenter():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, reenter)
    engine.run()


def test_same_time_events_run_in_schedule_order(engine):
    seen = []
    for i in range(5):
        engine.schedule(3, seen.append, i)
    engine.run()
    assert seen == [0, 1, 2, 3, 4]
