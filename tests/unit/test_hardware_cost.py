"""Unit tests for the Section V hardware-cost model."""

from repro.config.hyperparams import GriffinHyperParams
from repro.config.system import SystemConfig
from repro.core.hardware_cost import estimate_hardware_cost


def test_paper_dpc_storage_is_2200_bytes_per_gpu():
    report = estimate_hardware_cost(SystemConfig(), GriffinHyperParams())
    assert report.dpc_bytes_per_gpu == 2200


def test_entry_is_44_bits():
    report = estimate_hardware_cost(SystemConfig(), GriffinHyperParams())
    assert report.dpc_bits_per_entry == 36 + 8


def test_per_se_is_550_bytes():
    report = estimate_hardware_cost(SystemConfig(), GriffinHyperParams())
    assert report.dpc_bytes_per_se == 550


def test_system_total_scales_with_gpus():
    report = estimate_hardware_cost(SystemConfig(num_gpus=8), GriffinHyperParams())
    assert report.dpc_bytes_total == 8 * 2200


def test_dftm_is_one_bit_per_page():
    report = estimate_hardware_cost(
        SystemConfig(), GriffinHyperParams(), footprint_pages=8000
    )
    assert report.dftm_bits_per_page == 1
    assert report.dftm_bytes_for_footprint == 1000


def test_acud_one_comparator_per_cu():
    report = estimate_hardware_cost(SystemConfig(), GriffinHyperParams())
    assert report.acud_comparators_per_gpu == 36


def test_cpms_has_no_hardware():
    report = estimate_hardware_cost(SystemConfig(), GriffinHyperParams())
    assert report.cpms_hardware_bytes == 0


def test_rows_render():
    rows = estimate_hardware_cost(SystemConfig(), GriffinHyperParams()).rows()
    assert any("2200 B" in cost for _, cost in rows)
    assert any("64-bit" in cost for _, cost in rows)
