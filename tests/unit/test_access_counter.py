"""Unit tests for the DPC per-Shader-Engine access counter table."""

import pytest

from repro.gpu.access_counter import AccessCounterTable


def test_records_and_counts():
    t = AccessCounterTable(capacity=10)
    t.record(5)
    t.record(5)
    t.record(6)
    assert t.snapshot() == {5: 2, 6: 1}


def test_counter_saturates_at_max():
    t = AccessCounterTable(capacity=4, max_count=3)
    for _ in range(10):
        t.record(1)
    assert t.snapshot()[1] == 3


def test_paper_saturation_value():
    t = AccessCounterTable()
    assert t.max_count == 255
    assert t.capacity == 100


def test_collect_and_reset_clears_table():
    t = AccessCounterTable(capacity=4)
    t.record(1)
    counts = t.collect_and_reset()
    assert counts == {1: 1}
    assert len(t) == 0
    assert t.snapshot() == {}


def test_full_table_evicts_coldest_singleton():
    t = AccessCounterTable(capacity=2)
    t.record(1)
    t.record(1)
    t.record(2)  # count 1 -> eviction candidate
    t.record(3)  # evicts page 2 (count 1)
    assert 1 in t.snapshot()
    assert 3 in t.snapshot()
    assert 2 not in t.snapshot()
    assert t.evicted == 1


def test_full_table_drops_newcomer_when_victims_are_hot():
    t = AccessCounterTable(capacity=2)
    for _ in range(3):
        t.record(1)
        t.record(2)
    t.record(3)  # both entries have count 3 > 1 -> newcomer dropped
    assert 3 not in t.snapshot()
    assert t.dropped == 1


def test_recorded_counter_includes_drops():
    t = AccessCounterTable(capacity=1)
    t.record(1)
    t.record(1)
    t.record(2)
    assert t.recorded == 3


def test_invalid_capacity():
    with pytest.raises(ValueError):
        AccessCounterTable(capacity=0)


def test_len_tracks_entries():
    t = AccessCounterTable(capacity=10)
    t.record(1)
    t.record(2)
    assert len(t) == 2
