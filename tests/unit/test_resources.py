"""Unit tests for shared-resource queuing primitives."""

import pytest

from repro.sim.resource import SlotResource, ThroughputResource


class TestThroughputResource:
    def test_transfer_time_is_size_over_rate(self):
        pipe = ThroughputResource("p", 32.0)
        assert pipe.acquire(0, 64) == 2.0

    def test_back_to_back_transfers_serialize(self):
        pipe = ThroughputResource("p", 32.0)
        first = pipe.acquire(0, 64)
        second = pipe.acquire(0, 64)
        assert first == 2.0
        assert second == 4.0

    def test_idle_gap_is_not_charged(self):
        pipe = ThroughputResource("p", 32.0)
        pipe.acquire(0, 64)
        finish = pipe.acquire(100, 64)
        assert finish == 102.0

    def test_total_bytes_and_jobs(self):
        pipe = ThroughputResource("p", 16.0)
        pipe.acquire(0, 64)
        pipe.acquire(0, 32)
        assert pipe.total_bytes == 96
        assert pipe.total_jobs == 2

    def test_wait_accounting(self):
        pipe = ThroughputResource("p", 32.0)
        pipe.acquire(0, 64)  # busy until 2
        pipe.acquire(0, 64)  # waits 2
        assert pipe.total_wait == 2.0

    def test_utilization(self):
        pipe = ThroughputResource("p", 32.0)
        pipe.acquire(0, 320)  # 10 cycles of service
        assert pipe.utilization(20) == pytest.approx(0.5)

    def test_utilization_zero_elapsed(self):
        pipe = ThroughputResource("p", 32.0)
        assert pipe.utilization(0) == 0.0

    def test_reset(self):
        pipe = ThroughputResource("p", 32.0)
        pipe.acquire(0, 64)
        pipe.reset()
        assert pipe.busy_until == 0.0
        assert pipe.total_bytes == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            ThroughputResource("p", 0)


class TestSlotResource:
    def test_parallel_slots_do_not_queue(self):
        walkers = SlotResource("w", 4)
        finishes = [walkers.acquire(0, 100) for _ in range(4)]
        assert finishes == [100, 100, 100, 100]

    def test_fifth_job_queues_behind_earliest(self):
        walkers = SlotResource("w", 4)
        for _ in range(4):
            walkers.acquire(0, 100)
        assert walkers.acquire(0, 100) == 200

    def test_single_slot_serializes(self):
        s = SlotResource("s", 1)
        assert s.acquire(0, 10) == 10
        assert s.acquire(0, 10) == 20
        assert s.acquire(50, 10) == 60

    def test_earliest_free(self):
        s = SlotResource("s", 2)
        s.acquire(0, 10)
        s.acquire(0, 20)
        assert s.earliest_free() == 10

    def test_all_free_by(self):
        s = SlotResource("s", 2)
        s.acquire(0, 10)
        s.acquire(0, 20)
        assert s.all_free_by() == 20

    def test_wait_accounting(self):
        s = SlotResource("s", 1)
        s.acquire(0, 100)
        s.acquire(0, 100)
        assert s.total_wait == 100

    def test_reset(self):
        s = SlotResource("s", 2)
        s.acquire(0, 100)
        s.reset()
        assert s.earliest_free() == 0.0
        assert s.total_jobs == 0

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            SlotResource("s", 0)
