"""Unit tests for Table I hyperparameters."""

import pytest

from repro.config.hyperparams import PAPER_TABLE_I, GriffinHyperParams


def test_paper_defaults_match_table_1():
    h = GriffinHyperParams()
    assert h.n_ptw == 8
    assert h.t_ac == 1000
    assert h.alpha == 0.03
    assert h.lambda_d == 2.0
    assert h.lambda_s == 1.3
    assert h.lambda_t == 0.03


def test_paper_table_constant_is_defaults():
    assert PAPER_TABLE_I == GriffinHyperParams()


def test_counter_saturates_at_0xff():
    assert GriffinHyperParams().counter_max == 0xFF


def test_page_id_is_36_bits():
    # 48-bit physical address space minus 12-bit page offset.
    assert GriffinHyperParams().page_id_bits == 36


def test_counter_table_has_100_entries():
    assert GriffinHyperParams().counter_table_entries == 100


def test_with_overrides_returns_new_object():
    h = GriffinHyperParams()
    h2 = h.with_overrides(alpha=0.5)
    assert h2.alpha == 0.5
    assert h.alpha == 0.03


def test_table_rows_cover_all_six_params():
    names = [row[0] for row in GriffinHyperParams().table_rows()]
    assert names == ["N_PTW", "T_ac", "alpha", "lambda_d", "lambda_s", "lambda_t"]


def test_invalid_alpha_rejected():
    with pytest.raises(ValueError):
        GriffinHyperParams(alpha=0.0)
    with pytest.raises(ValueError):
        GriffinHyperParams(alpha=1.5)


def test_lambda_ordering_enforced():
    with pytest.raises(ValueError):
        GriffinHyperParams(lambda_d=1.0, lambda_s=1.3)


def test_negative_lambda_t_rejected():
    with pytest.raises(ValueError):
        GriffinHyperParams(lambda_t=-0.1)


def test_nonpositive_periods_rejected():
    with pytest.raises(ValueError):
        GriffinHyperParams(t_ac=0)
    with pytest.raises(ValueError):
        GriffinHyperParams(migration_period=0)


def test_n_ptw_must_be_positive():
    with pytest.raises(ValueError):
        GriffinHyperParams(n_ptw=0)


def test_calibrated_keeps_ratio_thresholds():
    c = GriffinHyperParams.calibrated()
    assert c.lambda_d == 2.0
    assert c.lambda_s == 1.3
    assert c.n_ptw == 8


def test_calibrated_rescales_absolute_params():
    c = GriffinHyperParams.calibrated()
    assert c.t_ac > GriffinHyperParams().t_ac
    assert c.alpha > GriffinHyperParams().alpha
    assert c.lambda_t < GriffinHyperParams().lambda_t
