# Griffin reproduction — common entry points.

PYTHON ?= python

.PHONY: install ext test bench reproduce validate clean

install:
	pip install -e . --no-build-isolation

# Build the optional compiled event core (repro.sim._ckernel) in place.
# Failure is non-fatal by design: without it the pure-Python "heap"
# backend stays the default and the "compiled" backend is unavailable.
ext:
	$(PYTHON) setup.py build_ext --inplace

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

reproduce:
	$(PYTHON) examples/reproduce_paper.py paper_report

validate:
	$(PYTHON) -m repro.cli validate

clean:
	rm -rf paper_report .pytest_cache .benchmarks build
	find . -name __pycache__ -type d -exec rm -rf {} +
	find src -name '*.so' -delete
