# Griffin reproduction — common entry points.

PYTHON ?= python

.PHONY: install test bench reproduce validate clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

reproduce:
	$(PYTHON) examples/reproduce_paper.py paper_report

validate:
	$(PYTHON) -m repro.cli validate

clean:
	rm -rf paper_report .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
