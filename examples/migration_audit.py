#!/usr/bin/env python
"""Audit Griffin's migrations: why SC wins and PageRank doesn't.

The paper explains PR's slowdown qualitatively: "the access patterns to
sparse matrices can be very random and irregular, which makes it
difficult to exploit inter-GPU migration effectively."  This example
makes that quantitative with the analysis API: it grades every inter-GPU
migration on SC (regular ownership epochs) and PR (non-recurring random
bursts) as justified / neutral / wasted.

Usage::

    python examples/migration_audit.py
"""

from repro import run_workload, small_system
from repro.analysis import audit_migrations, detect_phases, profile_sharing


def analyse(workload: str) -> None:
    print(f"=== {workload} under Griffin ===")
    result = run_workload(workload, "griffin", config=small_system(),
                          scale=0.015, seed=3, keep_timeline=True,
                          watch_pages="all")
    baseline = run_workload(workload, "baseline", config=small_system(),
                            scale=0.015, seed=3)
    print(f"speedup over baseline: {baseline.cycles / result.cycles:.2f}x\n")

    print(profile_sharing(result).render())
    print()
    print(audit_migrations(result).render())
    print()
    print(detect_phases(result).render())
    print()


def main() -> None:
    analyse("SC")
    analyse("PR")
    print("SC's migrations chase long ownership epochs and mostly land on a")
    print("page's dominant accessor; PR's chase one-iteration bursts that")
    print("have already moved on — the paper's diagnosis, quantified.")


if __name__ == "__main__":
    main()
