#!/usr/bin/env python
"""Quickstart: compare the baseline NUMA multi-GPU design against Griffin.

Runs Simple Convolution (the paper's running example) on a 4-GPU system
under both policies and prints the headline metrics: makespan, speedup,
page distribution, shootdowns, and migration counts.

Usage::

    python examples/quickstart.py [WORKLOAD]

where WORKLOAD is a Table III abbreviation (default: SC).
"""

import sys

from repro import compare_policies, list_workloads, small_system
from repro.metrics.report import format_table


def main() -> None:
    workload = sys.argv[1].upper() if len(sys.argv) > 1 else "SC"
    if workload not in list_workloads():
        raise SystemExit(
            f"unknown workload {workload!r}; choose from {', '.join(list_workloads())}"
        )

    print(f"Simulating {workload} on a 4-GPU system (PCIe-v4 fabric)...")
    results = compare_policies(
        workload,
        ["baseline", "griffin"],
        config=small_system(),
        scale=0.015,
        seed=3,
    )
    base, grif = results["baseline"], results["griffin"]

    rows = [
        ["Cycles", f"{base.cycles:,.0f}", f"{grif.cycles:,.0f}"],
        ["Speedup", "1.00", f"{base.cycles / grif.cycles:.2f}"],
        ["Local access fraction", f"{base.local_fraction:.2f}", f"{grif.local_fraction:.2f}"],
        ["Pages per GPU (%)",
         " / ".join(f"{p:.0f}" for p in base.occupancy.percentages()),
         " / ".join(f"{p:.0f}" for p in grif.occupancy.percentages())],
        ["Occupancy imbalance", f"{base.imbalance():.2f}", f"{grif.imbalance():.2f}"],
        ["TLB shootdowns", base.total_shootdowns, grif.total_shootdowns],
        ["CPU->GPU migrations", base.cpu_to_gpu_migrations, grif.cpu_to_gpu_migrations],
        ["GPU->GPU migrations", base.gpu_to_gpu_migrations, grif.gpu_to_gpu_migrations],
        ["DFTM denials", base.dftm_denials, grif.dftm_denials],
    ]
    print()
    print(format_table(["Metric", "Baseline", "Griffin"], rows,
                       f"{workload}: baseline first-touch vs. Griffin"))

    speedup = base.cycles / grif.cycles
    print()
    if speedup > 1.0:
        print(f"Griffin is {speedup:.2f}x faster: it placed pages where they are")
        print("used, batched migrations, and kept the page distribution balanced.")
    else:
        print(f"Griffin is {1 / speedup:.2f}x slower here — this workload's access")
        print("pattern is too irregular for inter-GPU migration to pay off")
        print("(the paper observes the same for PageRank).")


if __name__ == "__main__":
    main()
