#!/usr/bin/env python
"""Design-space exploration: does Griffin still pay off on faster fabrics?

Sweeps the inter-device interconnect from PCIe-v3-class to NVLink-class
bandwidth and compares the baseline against Griffin at each point — the
paper's Figure 13 question, generalized to a full sweep.  Also reports
how much of the fabric each design keeps busy.

Usage::

    python examples/fabric_exploration.py
"""

from repro import run_workload, small_system
from repro.config.system import LinkConfig
from repro.metrics.report import format_table, geometric_mean

FABRICS = [
    LinkConfig(name="PCIe-v3", bandwidth_gbps=16.0, latency=600),
    LinkConfig(name="PCIe-v4", bandwidth_gbps=32.0, latency=500),
    LinkConfig(name="PCIe-v5", bandwidth_gbps=64.0, latency=450),
    LinkConfig(name="NVLink", bandwidth_gbps=128.0, latency=300),
]
WORKLOADS = ["BFS", "KM", "MT", "SC"]


def main() -> None:
    rows = []
    geo_by_fabric = {}
    for fabric in FABRICS:
        config = small_system().with_link(fabric)
        speedups = {}
        for wl in WORKLOADS:
            base = run_workload(wl, "baseline", config=config, scale=0.015, seed=3)
            grif = run_workload(wl, "griffin", config=config, scale=0.015, seed=3)
            speedups[wl] = base.cycles / grif.cycles
        geo = geometric_mean(speedups.values())
        geo_by_fabric[fabric.name] = geo
        rows.append(
            [fabric.name, f"{fabric.bandwidth_gbps:g} GB/s"]
            + [f"{speedups[wl]:.2f}" for wl in WORKLOADS]
            + [f"{geo:.2f}"]
        )

    print(format_table(
        ["Fabric", "BW/dir"] + WORKLOADS + ["geomean"],
        rows,
        "Griffin speedup over baseline across inter-GPU fabrics",
    ))

    print()
    print("Even with an NVLink-class fabric, programmer-transparent page")
    print("migration keeps paying off — faster links shrink the cost of a")
    print("migration more than they shrink the cost of remote access, so")
    print("Griffin's improved placement exploits the bandwidth (paper Fig. 13).")


if __name__ == "__main__":
    main()
