#!/usr/bin/env python
"""Unified Memory oversubscription: running a footprint bigger than GPU memory.

The paper's introduction motivates UM partly by oversubscription: "backed
by system memory, a programmer can allocate memory exceeding a single
GPU's physical memory space."  This example caps each GPU's capacity and
watches the system thrash — pages evict to the CPU and refault — and how
much better Griffin's batched fault handling copes than the baseline's
FCFS servicing.

Usage::

    python examples/oversubscription.py
"""

from dataclasses import replace

from repro import run_workload, small_system
from repro.metrics.chart import bar_chart
from repro.metrics.report import format_table

CAPACITIES = [0, 40, 30, 25]  # resident pages per GPU; 0 = unlimited


def main() -> None:
    base_cfg = small_system()
    rows = []
    speedups = {}
    for capacity in CAPACITIES:
        config = replace(
            base_cfg, gpu=replace(base_cfg.gpu, capacity_pages=capacity)
        )
        base = run_workload("KM", "baseline", config=config, scale=0.015, seed=3)
        grif = run_workload("KM", "griffin", config=config, scale=0.015, seed=3)
        label = "unlimited" if capacity == 0 else f"{capacity}/GPU"
        evictions = sum(1 for e in base.migration_events if e.dst < 0)
        rows.append([
            label,
            f"{base.cycles:,.0f}",
            f"{grif.cycles:,.0f}",
            base.cpu_to_gpu_migrations,
            evictions,
        ])
        speedups[label] = base.cycles / grif.cycles

    print(format_table(
        ["GPU capacity", "Baseline cycles", "Griffin cycles",
         "Baseline migrations", "Baseline evictions"],
        rows, "KMeans under memory oversubscription",
    ))
    print()
    print(bar_chart(speedups, "Griffin speedup by capacity", reference=1.0))
    print()
    print("Tighter capacity means more eviction/refault churn; every refault")
    print("is another serialized CPU flush for the baseline but amortizes")
    print("into CPMS batches under Griffin, so Griffin's advantage grows as")
    print("memory pressure rises.")


if __name__ == "__main__":
    main()
