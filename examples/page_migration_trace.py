#!/usr/bin/env python
"""Trace one hot page's life: who accesses it, and where Griffin moves it.

Reproduces the paper's Figures 1 and 10 as ASCII timelines: under the
baseline, the page's dominant accessor changes over time while the page
stays pinned; under Griffin, DPC detects each shift and migrates the page
after its users.

Usage::

    python examples/page_migration_trace.py
"""

from repro import run_workload, small_system

SCALE = 0.015
SEED = 3
BUCKET = 100_000


def bar(pct: float, width: int = 20) -> str:
    filled = int(round(pct / 100 * width))
    return "#" * filled + "." * (width - filled)


def show_timeline(title: str, run, page: int) -> None:
    print()
    print(f"--- {title} (page {page}) ---")
    moves = {int(e.time): e for e in run.migration_events if e.page == page}
    location = "CPU"
    move_times = sorted(moves)
    for start, pct in run.timeline.series_percentages(page):
        while move_times and move_times[0] <= start:
            location = f"GPU{moves[move_times.pop(0)].dst}"
        dominant = max(range(len(pct)), key=pct.__getitem__)
        print(f"t={int(start):>8}  " + "  ".join(
            f"G{g}:{bar(p, 8)}" for g, p in enumerate(pct)
        ) + f"  dominant=GPU{dominant}  resident={location}")
    if moves:
        print("page moves: " + ", ".join(
            f"t={t}: {'CPU' if e.src < 0 else f'GPU{e.src}'}->GPU{e.dst}"
            for t, e in sorted(moves.items())
        ))
    else:
        print("page never migrated")


def main() -> None:
    config = small_system()

    print("Pass 1: find the hottest owner-shifting page in SC (baseline run)...")
    probe = run_workload("SC", "baseline", config=config, scale=SCALE, seed=SEED,
                         keep_timeline=True)
    page = probe.timeline.hottest_shifting_pages(1)[0]
    totals = probe.timeline.per_gpu_totals(page)
    print(f"Selected page {page}; per-GPU access totals {totals}")

    print("Pass 2: replay the identical trace, watching that page...")
    baseline = run_workload(
        "SC", "baseline", config=config, scale=SCALE, seed=SEED,
        watch_pages=[page], timeline_bucket=BUCKET, keep_timeline=True,
    )
    griffin = run_workload(
        "SC", "griffin", config=config, scale=SCALE, seed=SEED,
        watch_pages=[page], timeline_bucket=BUCKET, keep_timeline=True,
    )

    show_timeline("Figure 1: baseline (first-touch pins the page)", baseline, page)
    show_timeline("Figure 10: Griffin (DPC follows the accessors)", griffin, page)

    print()
    print(f"Baseline makespan: {baseline.cycles:,.0f} cycles")
    print(f"Griffin  makespan: {griffin.cycles:,.0f} cycles "
          f"({baseline.cycles / griffin.cycles:.2f}x)")


if __name__ == "__main__":
    main()
