#!/usr/bin/env python
"""Reproduce the whole paper: every table, every figure, one report.

Runs the complete evaluation — Tables I-III, Figures 1/2/8-13, the
hardware-cost estimate, and the shape-validation checks — printing each
artifact and writing the figure data as CSV into ``paper_report/``.

This is the long-running flagship example (~2 minutes); for single
artifacts use ``griffin-sim figures fig12`` etc.

Usage::

    python examples/reproduce_paper.py [OUTPUT_DIR]
"""

import sys
import time
from pathlib import Path

from repro.config.presets import small_system
from repro.harness import experiments as ex
from repro.harness import export as ex_csv
from repro.harness.validate import validate_reproduction
from repro.metrics.chart import bar_chart
from repro.metrics.report import format_table

SCALE = 0.015
SEED = 3


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("paper_report")
    out_dir.mkdir(parents=True, exist_ok=True)
    config = small_system()
    kwargs = dict(config=config, scale=SCALE, seed=SEED)
    started = time.time()

    print("=" * 72)
    print("Griffin (HPCA 2020) — full reproduction report")
    print("=" * 72)

    for table in (ex.table1_hyperparameters(), ex.table2_system_config(),
                  ex.table3_workloads()):
        print()
        print(table.render())

    print()
    report = ex.hardware_cost_report()
    print(format_table(["Component", "Cost"], report.rows(),
                       "Section V: Griffin hardware cost"))

    print()
    fig1 = ex.fig1_page_access_timeline(**kwargs)
    print(fig1.render())
    ex_csv.export_timeline(fig1, out_dir / "fig1.csv")

    fig2 = ex.fig2_first_touch_imbalance(**kwargs)
    print()
    print(ex.render_fig2(fig2))
    ex_csv.export_occupancy(fig2, out_dir / "fig2.csv")

    fig8 = ex.fig8_occupancy_balance(**kwargs)
    print()
    print(ex.render_fig8(fig8))
    ex_csv.export_occupancy(fig8, out_dir / "fig8.csv")

    fig9 = ex.fig9_tlb_shootdowns(**kwargs)
    print()
    print(ex.render_fig9(fig9))
    ex_csv.export_shootdowns(fig9, out_dir / "fig9.csv")

    fig10 = ex.fig10_dpc_migration(**kwargs)
    print()
    print(fig10.render())
    ex_csv.export_timeline(fig10, out_dir / "fig10.csv")

    fig11 = ex.fig11_acud_vs_flush(**kwargs)
    print()
    print(ex.render_fig11(fig11))
    ex_csv.export_speedups(fig11, out_dir / "fig11.csv",
                           "griffin_flush", "griffin")

    fig12 = ex.fig12_overall_speedup(**kwargs)
    print()
    print(ex.render_fig12(fig12))
    print()
    print(bar_chart(fig12.speedups("baseline", "griffin"),
                    "Figure 12 as bars (| marks 1.0)", reference=1.0))
    ex_csv.export_speedups(fig12, out_dir / "fig12.csv")

    fig13 = ex.fig13_high_bandwidth(scale=SCALE, seed=SEED)
    print()
    print(ex.render_fig13(fig13))
    ex_csv.export_speedups(fig13, out_dir / "fig13.csv")

    print()
    print("=" * 72)
    print("Shape validation against the paper's claims")
    print("=" * 72)
    validation = validate_reproduction(config=config, scale=SCALE, seed=SEED)
    print(validation.render())

    print()
    print(f"CSV data written to {out_dir}/")
    print(f"Total wall time: {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
