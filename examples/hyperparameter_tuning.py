#!/usr/bin/env python
"""Hyperparameter tuning: find the best Griffin configuration for a workload.

The paper reports using "the best set of parameters for our current
multi-GPU configuration", determined experimentally.  This example shows
the same workflow against the public API: a small grid search over the
EWMA weight and the migration period on one workload, reported as an
ASCII chart.

Usage::

    python examples/hyperparameter_tuning.py [WORKLOAD]
"""

import sys

from repro import GriffinHyperParams, run_workload, small_system
from repro.metrics.chart import bar_chart

ALPHAS = [0.1, 0.2, 0.4]
PERIODS = [15_000, 30_000, 60_000]


def main() -> None:
    workload = sys.argv[1].upper() if len(sys.argv) > 1 else "SC"
    config = small_system()

    baseline = run_workload(workload, "baseline", config=config,
                            scale=0.015, seed=3)
    print(f"{workload} baseline: {baseline.cycles:,.0f} cycles\n")

    speedups = {}
    for alpha in ALPHAS:
        for period in PERIODS:
            hyper = GriffinHyperParams.calibrated().with_overrides(
                alpha=alpha, migration_period=period
            )
            result = run_workload(workload, "griffin", config=config,
                                  hyper=hyper, scale=0.015, seed=3)
            label = f"alpha={alpha:<4} period={period // 1000}k"
            speedups[label] = baseline.cycles / result.cycles

    print(bar_chart(speedups, f"Griffin speedup on {workload} by configuration",
                    reference=1.0))

    best = max(speedups, key=speedups.get)
    print(f"\nBest configuration: {best} ({speedups[best]:.2f}x)")
    print("A faster filter (higher alpha) reacts to ownership changes sooner;")
    print("a shorter migration period acts on them sooner — but both raise")
    print("the number of drains and shootdowns paid per unit of benefit.")


if __name__ == "__main__":
    main()
