#!/usr/bin/env python
"""Bring your own workload: evaluate Griffin on a custom access pattern.

Demonstrates the workload API end to end: define a producer/consumer
pipeline (stage 1 writes a buffer, stage 2 — scheduled to different GPUs —
reads it), register nothing, just hand the object to ``run_workload``.
This pattern is adversarial for first-touch pinning (the producer GPU
first-touches every page; the consumers then hammer them remotely) and is
exactly what Griffin's owner-shifting class targets.

Usage::

    python examples/custom_workload.py
"""

from repro import run_workload, small_system
from repro.gpu.wavefront import Kernel
from repro.metrics.report import format_table
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec


class ProducerConsumerWorkload(WorkloadBase):
    """Stage 1 produces a buffer; stages 2..n consume it elsewhere.

    Because the dispatcher assigns workgroups round-robin, shifting the
    workgroup index moves each buffer chunk's consumer to a different GPU
    every few stages.
    """

    spec = WorkloadSpec("PC", "Producer-Consumer", "custom", "Pipeline", 32)

    def __init__(self, num_stages: int = 9, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_stages = num_stages

    def build_kernels(self, num_gpus: int) -> list:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        buffer = space.alloc("buffer", pages)

        wgs_per_kernel = 4 * num_gpus
        kernels = []
        for stage in range(self.num_stages):
            kernel = Kernel(kernel_id=stage)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", stage, i)
                # The consumer of chunk c moves one GPU further on every
                # three stages (long enough epochs for DPC to track).
                chunk = self.chunk(buffer, wgs_per_kernel, (i + stage // 3) % wgs_per_kernel)
                writes = 0.8 if stage == 0 else 0.2
                accesses = self.page_accesses(
                    chunk, rng, touches_per_page=4, write_prob=writes
                )
                kernel.workgroups.append(self.make_workgroup(stage, accesses))
            kernels.append(kernel)
        return kernels


def main() -> None:
    workload = ProducerConsumerWorkload(scale=0.015, seed=3)
    config = small_system()

    rows = []
    for policy in ["baseline", "dftm_only", "griffin"]:
        result = run_workload(workload, policy, config=config)
        rows.append([
            policy,
            f"{result.cycles:,.0f}",
            f"{result.local_fraction:.2f}",
            result.gpu_to_gpu_migrations,
            " / ".join(f"{p:.0f}" for p in result.occupancy.percentages()),
        ])
    print(format_table(
        ["Policy", "Cycles", "Local frac", "GPU-GPU moves", "Pages %/GPU"],
        rows,
        "Producer-consumer pipeline on 4 GPUs",
    ))

    base = float(rows[0][1].replace(",", ""))
    grif = float(rows[2][1].replace(",", ""))
    print(f"\nGriffin speedup over first-touch pinning: {base / grif:.2f}x")
    print("The buffer's consumer GPU changes every few stages; only runtime")
    print("inter-GPU migration keeps the pages near their current users.")


if __name__ == "__main__":
    main()
