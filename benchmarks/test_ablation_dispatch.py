"""Ablation: workgroup dispatch strategy (round-robin vs. chunked).

The paper follows "a workgroup scheduling policy similar to the NUMA GPU
systems proposed in prior work" (round-robin).  Chunked dispatch keeps
adjacent workgroups on one GPU, which changes which pages are shared
across GPUs — and therefore how much work Griffin's migration has to do.
"""

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

WORKLOADS = ["ST", "SC"]


def _collect():
    config = small_system()
    out = {}
    for wl in WORKLOADS:
        out[wl] = {}
        for strategy in ["round_robin", "chunked"]:
            for policy in ["baseline", "griffin"]:
                out[wl][(strategy, policy)] = run_workload(
                    wl, policy, config=config, scale=BENCH_SCALE,
                    seed=BENCH_SEED, dispatch_strategy=strategy,
                )
    return out


def test_ablation_dispatch_strategy(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, by_key in runs.items():
        for strategy in ["round_robin", "chunked"]:
            base = by_key[(strategy, "baseline")]
            grif = by_key[(strategy, "griffin")]
            rows.append([
                wl, strategy,
                f"{base.cycles:,.0f}",
                f"{base.cycles / grif.cycles:.2f}",
                f"{base.local_fraction:.2f}",
            ])
    print()
    print(format_table(
        ["Workload", "Dispatch", "Baseline cycles", "Griffin speedup",
         "Baseline local frac"],
        rows, "Ablation: workgroup dispatch strategy",
    ))

    for wl, by_key in runs.items():
        # Chunked dispatch localizes adjacent workgroups: the baseline
        # resolves at least as many accesses locally.
        assert (
            by_key[("chunked", "baseline")].local_fraction
            >= by_key[("round_robin", "baseline")].local_fraction - 0.02
        ), wl
        # Griffin still helps under both strategies.
        for strategy in ["round_robin", "chunked"]:
            assert (
                by_key[(strategy, "griffin")].cycles
                <= by_key[(strategy, "baseline")].cycles * 1.02
            ), (wl, strategy)
