"""Ablation: CPMS fault-batch depth (N_PTW) sweep.

The paper sets N_PTW to 8 to match the IOMMU's eight page-table walkers.
This bench sweeps the batch depth and verifies the monotone mechanism:
deeper batches mean fewer CPU flush/shootdown rounds.
"""

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

DEPTHS = [1, 2, 4, 8, 16]


def _collect():
    out = {}
    for depth in DEPTHS:
        hyper = GriffinHyperParams.calibrated().with_overrides(n_ptw=depth)
        out[depth] = run_workload(
            "FIR", "griffin", config=small_system(), hyper=hyper,
            scale=BENCH_SCALE, seed=BENCH_SEED,
        )
    return out


def test_ablation_fault_batch_depth(benchmark):
    runs = run_once(benchmark, _collect)

    rows = [
        [depth, run.cpu_shootdowns, f"{run.cycles:.0f}"]
        for depth, run in runs.items()
    ]
    print()
    print(format_table(["N_PTW", "CPU shootdowns", "Cycles"], rows,
                       "Ablation: CPMS fault batch depth (FIR)"))

    shootdowns = [runs[d].cpu_shootdowns for d in DEPTHS]
    # Deeper batches -> no more shootdown rounds, strictly fewer across
    # the sweep ends.
    assert all(a >= b for a, b in zip(shootdowns, shootdowns[1:]))
    assert shootdowns[-1] < shootdowns[0]
    # Runtime improves going from FCFS (depth 1) to the paper's depth 8.
    assert runs[8].cycles < runs[1].cycles
