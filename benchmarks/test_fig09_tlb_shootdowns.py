"""Figure 9: number of TLB shootdowns, baseline vs. Griffin (normalized).

Shape target: despite adding inter-GPU migration shootdowns, Griffin's
CPMS batching leaves the total well below the baseline's one-flush-per-
fault FCFS scheme on every workload.
"""

from repro.metrics.report import format_table
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once


def _collect():
    return {
        wl: (cached_run(wl, "baseline"), cached_run(wl, "griffin"))
        for wl in list_workloads()
    }


def test_fig9_tlb_shootdowns(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, (base, grif) in runs.items():
        rows.append([
            wl, base.total_shootdowns, grif.total_shootdowns,
            f"{grif.total_shootdowns / base.total_shootdowns:.2f}",
        ])
    print()
    print(format_table(
        ["Workload", "Baseline", "Griffin", "Normalized"],
        rows, "Figure 9: TLB shootdowns (lower is better)",
    ))

    for wl, (base, grif) in runs.items():
        assert grif.total_shootdowns < base.total_shootdowns, wl
        # Griffin still performs GPU-side shootdowns for its inter-GPU
        # migrations (the paper's "additional shootdowns on the GPU").
    assert any(g.gpu_shootdowns > 0 for _, g in runs.values())

    total_base = sum(b.total_shootdowns for b, _ in runs.values())
    total_grif = sum(g.total_shootdowns for _, g in runs.values())
    assert total_grif < 0.8 * total_base
