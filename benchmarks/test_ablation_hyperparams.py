"""Ablation: DPC filter and classifier hyperparameter sweeps.

Sweeps the EWMA weight (alpha) and the dedicated-ratio threshold
(lambda_d) on SC — the workload whose owner-shifting pages exercise DPC
hardest — and checks the mechanisms respond as designed.
"""

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

ALPHAS = [0.05, 0.2, 0.5]
LAMBDA_DS = [1.5, 2.0, 4.0]


def _collect():
    base = GriffinHyperParams.calibrated()
    alpha_runs = {}
    for alpha in ALPHAS:
        hyper = base.with_overrides(alpha=alpha)
        alpha_runs[alpha] = run_workload(
            "SC", "griffin", config=small_system(), hyper=hyper,
            scale=BENCH_SCALE, seed=BENCH_SEED,
        )
    ld_runs = {}
    for ld in LAMBDA_DS:
        hyper = base.with_overrides(lambda_d=ld)
        ld_runs[ld] = run_workload(
            "SC", "griffin", config=small_system(), hyper=hyper,
            scale=BENCH_SCALE, seed=BENCH_SEED,
        )
    return alpha_runs, ld_runs


def test_ablation_dpc_hyperparams(benchmark):
    alpha_runs, ld_runs = run_once(benchmark, _collect)

    rows = [
        [f"alpha={a}", r.gpu_to_gpu_migrations, f"{r.cycles:.0f}"]
        for a, r in alpha_runs.items()
    ] + [
        [f"lambda_d={ld}", r.gpu_to_gpu_migrations, f"{r.cycles:.0f}"]
        for ld, r in ld_runs.items()
    ]
    print()
    print(format_table(["Setting", "Inter-GPU migrations", "Cycles"], rows,
                       "Ablation: DPC hyperparameters (SC)"))

    # The calibrated alpha (0.2) tracks SC's owner shifts and migrates;
    # a very sluggish filter (0.05) can miss every shift entirely —
    # reaction speed is monotone in alpha.
    assert alpha_runs[0.2].gpu_to_gpu_migrations > 0
    assert (
        alpha_runs[0.05].gpu_to_gpu_migrations
        <= alpha_runs[0.2].gpu_to_gpu_migrations
    )
    assert alpha_runs[0.5].gpu_to_gpu_migrations > 0

    # A stricter dedicated threshold admits fewer dedicated candidates.
    assert ld_runs[4.0].gpu_to_gpu_migrations <= ld_runs[1.5].gpu_to_gpu_migrations
