"""Extension: adaptive migration throttling.

The paper's one slowdown (PageRank) happens because reactive migration
chases non-recurring access bursts.  ``griffin_adaptive`` closes the
loop: it audits each migration round against later raw access counts,
backs off the cadence when migrations stop landing, and nominates
stranded pages back to their observed steady accessors.  Shape target:
no workload regresses versus plain Griffin, and PR's slowdown turns into
a win.
"""

from repro.metrics.report import format_table, geometric_mean
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once

WORKLOADS = ["BS", "FW", "KM", "MT", "PR", "SC"]


def _collect():
    return {
        wl: {
            policy: cached_run(wl, policy)
            for policy in ["baseline", "griffin", "griffin_adaptive"]
        }
        for wl in WORKLOADS
    }


def test_extension_adaptive_throttle(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, by_policy in runs.items():
        base = by_policy["baseline"].cycles
        rows.append([
            wl,
            f"{base / by_policy['griffin'].cycles:.2f}",
            f"{base / by_policy['griffin_adaptive'].cycles:.2f}",
            by_policy["griffin"].gpu_to_gpu_migrations,
            by_policy["griffin_adaptive"].gpu_to_gpu_migrations,
        ])
    print()
    print(format_table(
        ["Workload", "griffin", "griffin_adaptive",
         "griffin moves", "adaptive moves"],
        rows, "Extension: adaptive migration throttling",
    ))

    # Never materially worse than plain Griffin...
    for wl, by_policy in runs.items():
        assert (
            by_policy["griffin_adaptive"].cycles
            <= by_policy["griffin"].cycles * 1.03
        ), wl
    # ...and PR crosses from a slowdown to a win.
    pr = runs["PR"]
    assert pr["baseline"].cycles / pr["griffin"].cycles <= 1.02
    assert pr["griffin_adaptive"].cycles < pr["griffin"].cycles
    assert pr["baseline"].cycles / pr["griffin_adaptive"].cycles > 1.0
    # The throttle cut PR's migration churn.
    assert (
        pr["griffin_adaptive"].gpu_to_gpu_migrations
        < pr["griffin"].gpu_to_gpu_migrations
    )
