"""Extension: Unified Memory oversubscription.

The paper's introduction highlights that UM "enables memory
oversubscription: backed by system memory, a programmer can allocate
memory exceeding a single GPU's physical memory space."  This bench
caps each GPU's capacity below the workload's balanced share, forcing
eviction churn, and checks Griffin's batching keeps it ahead of the
baseline even while thrashing.
"""

from dataclasses import replace

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

CAPACITIES = [0, 35, 25]  # pages per GPU; 0 = unlimited


def _collect():
    out = {}
    base_cfg = small_system()
    for capacity in CAPACITIES:
        config = replace(base_cfg, gpu=replace(base_cfg.gpu, capacity_pages=capacity))
        out[capacity] = {
            policy: run_workload(
                "KM", policy, config=config, scale=BENCH_SCALE, seed=BENCH_SEED
            )
            for policy in ["baseline", "griffin"]
        }
    return out


def test_extension_oversubscription(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for capacity, by_policy in runs.items():
        base, grif = by_policy["baseline"], by_policy["griffin"]
        rows.append([
            "unlimited" if capacity == 0 else f"{capacity}/GPU",
            f"{base.cycles:,.0f}",
            f"{base.cycles / grif.cycles:.2f}",
            base.cpu_to_gpu_migrations,
            grif.cpu_to_gpu_migrations,
        ])
    print()
    print(format_table(
        ["Capacity", "Baseline cycles", "Griffin speedup",
         "Base migrations", "Griffin migrations"],
        rows, "Extension: UM oversubscription (KM)",
    ))

    unlimited = runs[0]
    tight = runs[25]
    # Oversubscription causes heavy refault/eviction churn...
    assert tight["baseline"].cpu_to_gpu_migrations > \
        3 * unlimited["baseline"].cpu_to_gpu_migrations
    assert tight["baseline"].cycles > unlimited["baseline"].cycles
    # ...capacity is enforced exactly...
    for by_policy in (tight,):
        for run in by_policy.values():
            assert max(run.occupancy.pages_per_gpu) <= 25
    # ...and Griffin's batched fault handling copes better than FCFS.
    for capacity, by_policy in runs.items():
        assert by_policy["griffin"].cycles < by_policy["baseline"].cycles, capacity
