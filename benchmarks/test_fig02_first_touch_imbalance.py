"""Figure 2: first-touch page placement imbalance across the ten workloads.

Shape target: under the baseline first-touch policy, one GPU (GPU0, which
enjoys the dispatch head start and the arbiter feedback loop) acquires far
more than its fair 25% share of the pages.
"""

from repro.metrics.report import format_table
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once


def _collect():
    return {wl: cached_run(wl, "baseline") for wl in list_workloads()}


def test_fig2_first_touch_imbalance(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, run in runs.items():
        rows.append([wl] + [f"{p:.1f}" for p in run.occupancy.percentages()])
    print()
    print(format_table(
        ["Workload", "GPU0 %", "GPU1 %", "GPU2 %", "GPU3 %"], rows,
        "Figure 2: page placement under first-touch (baseline)",
    ))

    max_shares = [run.occupancy.max_share() for run in runs.values()]
    # Every workload shows some imbalance; most show a clearly overweight GPU.
    assert all(s > 0.25 for s in max_shares)
    assert sum(1 for s in max_shares if s >= 0.30) >= 7
    assert max(max_shares) >= 0.38

    # The overweight GPU is the head-start GPU (GPU0) for most workloads.
    winners = [
        max(range(4), key=lambda g: run.occupancy.pages_per_gpu[g])
        for run in runs.values()
    ]
    assert winners.count(0) >= 6
