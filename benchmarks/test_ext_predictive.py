"""Extension: predictive (speculative) inter-GPU migration.

The paper's stated future work (Section VII): "consider new components
that can predict page accesses by other GPUs and speculatively migrate
pages".  This bench compares reactive Griffin against
``griffin_predictive`` on a long-rotation Simple Convolution whose
ownership hand-offs are regular enough to learn.
"""

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table
from repro.workloads.simple_convolution import SimpleConvolutionWorkload

from benchmarks.conftest import BENCH_SEED, run_once


def _collect():
    def build():
        return SimpleConvolutionWorkload(
            num_passes=18, rotate_every=3, scale=0.012, seed=BENCH_SEED
        )

    config = small_system()
    return {
        policy: run_workload(build(), policy, config=config)
        for policy in ["baseline", "griffin", "griffin_predictive"]
    }


def test_extension_predictive_migration(benchmark):
    runs = run_once(benchmark, _collect)

    rows = [
        [p, f"{r.cycles:,.0f}", f"{r.local_fraction:.3f}", r.gpu_to_gpu_migrations]
        for p, r in runs.items()
    ]
    print()
    print(format_table(
        ["Policy", "Cycles", "Local fraction", "GPU-GPU migrations"], rows,
        "Extension: reactive vs. predictive migration (SC, 6 ownership epochs)",
    ))

    base = runs["baseline"]
    reactive = runs["griffin"]
    predictive = runs["griffin_predictive"]

    # Both beat the baseline.
    assert reactive.cycles < base.cycles
    assert predictive.cycles < base.cycles
    # Prediction converts detection lag into lead time: more accesses
    # resolve locally and the makespan does not regress.
    assert predictive.local_fraction > reactive.local_fraction
    assert predictive.cycles <= reactive.cycles * 1.01
    # The predictor really did speculate.
    assert predictive.gpu_to_gpu_migrations > 0
