"""Extension: page-size sensitivity.

The paper uses 4 KB pages "as large pages cause higher degree of false
sharing as well as page migration overhead [22]" and cites page-splitting
approaches as future work.  This bench quantifies those structural
effects in our model: with 16 KB pages the same footprint has 4x fewer
pages (fewer faults to batch) but each page is shared by more GPUs
(false sharing) and each migration moves 4x the data.
"""

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

PAGE_SIZES = [4096, 16384]


def _shared_fraction(run) -> float:
    """Fraction of touched pages accessed by more than one GPU."""
    timeline = run.timeline
    shared = 0
    total = 0
    for page in timeline._totals:
        total += 1
        if sum(1 for c in timeline.per_gpu_totals(page) if c > 0) >= 2:
            shared += 1
    return shared / total if total else 0.0


def _collect():
    out = {}
    for page_size in PAGE_SIZES:
        config = small_system().with_overrides(page_size=page_size)
        out[page_size] = {
            policy: run_workload(
                "FW", policy, config=config, scale=BENCH_SCALE,
                seed=BENCH_SEED, keep_timeline=True,
            )
            for policy in ["baseline", "griffin"]
        }
    return out


def test_extension_page_size(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for page_size, by_policy in runs.items():
        base, grif = by_policy["baseline"], by_policy["griffin"]
        rows.append([
            f"{page_size // 1024} KB",
            base.occupancy.total_gpu_pages + base.occupancy.cpu_pages,
            base.cpu_shootdowns,
            f"{_shared_fraction(base):.2f}",
            f"{base.cycles / grif.cycles:.2f}",
        ])
    print()
    print(format_table(
        ["Page size", "Pages touched", "Baseline CPU shootdowns",
         "Shared-page fraction", "Griffin speedup"],
        rows, "Extension: page-size sensitivity (FW)",
    ))

    small, large = runs[4096], runs[16384]
    # Larger pages: fewer pages and fewer fault shootdowns...
    assert (
        large["baseline"].occupancy.total_gpu_pages
        < small["baseline"].occupancy.total_gpu_pages
    )
    assert large["baseline"].cpu_shootdowns < small["baseline"].cpu_shootdowns
    # ...but more false sharing (more of the footprint is multi-GPU).
    assert _shared_fraction(large["baseline"]) >= _shared_fraction(small["baseline"])
    # Griffin keeps winning at both page sizes.
    for page_size, by_policy in runs.items():
        assert by_policy["griffin"].cycles < by_policy["baseline"].cycles, page_size
