"""Extension: GPU-count scaling.

The paper evaluates a 4-GPU node (DGX-class nodes ship up to 16).  This
bench checks Griffin's mechanisms scale with GPU count: its win holds
from 2 to 8 GPUs, and DFTM keeps the page distribution near-uniform at
every size.
"""

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

GPU_COUNTS = [2, 4, 8]


def _collect():
    out = {}
    for n in GPU_COUNTS:
        config = small_system(num_gpus=n)
        out[n] = {
            policy: run_workload(
                "SC", policy, config=config, scale=BENCH_SCALE, seed=BENCH_SEED
            )
            for policy in ["baseline", "griffin"]
        }
    return out


def test_extension_gpu_scaling(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for n, by_policy in runs.items():
        base, grif = by_policy["baseline"], by_policy["griffin"]
        rows.append([
            n,
            f"{base.cycles / grif.cycles:.2f}",
            f"{base.imbalance():.2f}",
            f"{grif.imbalance():.2f}",
            f"{max(grif.occupancy.percentages()):.0f}%",
        ])
    print()
    print(format_table(
        ["GPUs", "Griffin speedup", "Base imbalance", "Griffin imbalance",
         "Griffin max share"],
        rows, "Extension: scaling with GPU count (SC)",
    ))

    for n, by_policy in runs.items():
        base, grif = by_policy["baseline"], by_policy["griffin"]
        assert grif.cycles < base.cycles, n
        assert grif.imbalance() <= base.imbalance() + 0.05, n
        # Near-uniform distribution at every GPU count.
        fair = 100.0 / n
        assert max(grif.occupancy.percentages()) <= 1.6 * fair, n
