"""Figure 13: Griffin vs. baseline with a higher-bandwidth interconnect.

Shape target: Griffin still outperforms the baseline on an NVLink-class
fabric, and several workloads (the paper calls out BFS, KM, PR) improve
relative to their PCIe results because Griffin's better page placement
exploits the extra bandwidth.
"""

from repro.metrics.report import format_table, geometric_mean
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once


def _collect():
    out = {}
    for wl in list_workloads():
        out[wl] = {
            "pcie": (cached_run(wl, "baseline"), cached_run(wl, "griffin")),
            "nvlink": (
                cached_run(wl, "baseline", "nvlink"),
                cached_run(wl, "griffin", "nvlink"),
            ),
        }
    return out


def test_fig13_high_bandwidth(benchmark):
    runs = run_once(benchmark, _collect)

    pcie = {wl: r["pcie"][0].cycles / r["pcie"][1].cycles for wl, r in runs.items()}
    nvlink = {wl: r["nvlink"][0].cycles / r["nvlink"][1].cycles for wl, r in runs.items()}

    rows = [
        [wl, f"{pcie[wl]:.2f}", f"{nvlink[wl]:.2f}"] for wl in runs
    ]
    rows.append(["geomean",
                 f"{geometric_mean(pcie.values()):.2f}",
                 f"{geometric_mean(nvlink.values()):.2f}"])
    print()
    print(format_table(
        ["Workload", "PCIe-v4 speedup", "NVLink speedup"], rows,
        "Figure 13: speedup with a higher bandwidth interconnect",
    ))

    # Griffin still wins on the high-bandwidth fabric.
    assert sum(1 for s in nvlink.values() if s > 1.0) >= 8
    geo_nv = geometric_mean(nvlink.values())
    geo_pc = geometric_mean(pcie.values())
    assert geo_nv >= 0.95 * geo_pc

    # Several workloads improve with bandwidth (paper: BFS, KM, PR).
    improved = [wl for wl in runs if nvlink[wl] > pcie[wl]]
    assert len(improved) >= 3

    # Absolute runtimes drop with the faster fabric for both designs.
    for wl, r in runs.items():
        assert r["nvlink"][1].cycles <= r["pcie"][1].cycles * 1.02, wl
