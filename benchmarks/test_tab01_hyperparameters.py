"""Table I: default Griffin hyperparameter configuration."""

from repro.harness.experiments import table1_hyperparameters

from benchmarks.conftest import run_once


def test_table1_hyperparameters(benchmark):
    result = run_once(benchmark, table1_hyperparameters)
    print()
    print(result.render())
    rows = {r[0]: r[1] for r in result.rows}
    assert rows["N_PTW"] == "8"
    assert rows["T_ac"] == "1000"
    assert rows["alpha"] == "0.03"
    assert rows["lambda_d"] == "2"
    assert rows["lambda_s"] == "1.3"
    assert rows["lambda_t"] == "0.03"
