"""Ablation: contribution of each Griffin component.

DESIGN.md calls out DFTM, CPMS fault batching, and DPC inter-GPU
migration as separable design choices; this bench disables one at a time
and checks each carries weight somewhere in the suite.
"""

from repro.metrics.report import format_table, geometric_mean
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once

ABLATIONS = ["griffin", "griffin_no_dftm", "griffin_no_dpc", "griffin_no_batch"]
WORKLOADS = ["FIR", "MT", "PR", "SC", "ST"]


def _collect():
    out = {}
    for wl in WORKLOADS:
        out[wl] = {p: cached_run(wl, p) for p in ABLATIONS + ["baseline"]}
    return out


def test_ablation_components(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, by_policy in runs.items():
        base = by_policy["baseline"].cycles
        rows.append([wl] + [f"{base / by_policy[p].cycles:.2f}" for p in ABLATIONS])
    print()
    print(format_table(["Workload"] + ABLATIONS, rows,
                       "Ablation: speedup over baseline with components removed"))

    def geo(policy):
        return geometric_mean(
            runs[wl]["baseline"].cycles / runs[wl][policy].cycles for wl in WORKLOADS
        )

    full = geo("griffin")
    # Removing fault batching hurts the fault-storm workloads badly.
    assert geo("griffin_no_batch") < full
    # Removing DFTM costs MT its "never migrate touch-once pages" win.
    mt = runs["MT"]
    assert mt["baseline"].cycles / mt["griffin_no_dftm"].cycles < \
           mt["baseline"].cycles / mt["griffin"].cycles
    # Removing DPC costs SC its owner-shift tracking.
    sc = runs["SC"]
    assert sc["baseline"].cycles / sc["griffin_no_dpc"].cycles < \
           sc["baseline"].cycles / sc["griffin"].cycles
    # And DPC is what hurts PR (the paper's explanation of its slowdown).
    pr = runs["PR"]
    assert pr["griffin_no_dpc"].cycles <= pr["griffin"].cycles
