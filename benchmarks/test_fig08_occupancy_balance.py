"""Figure 8: occupancy balancing improvement (baseline vs. Griffin).

Shape target: Griffin's DFTM achieves a near-equal split of pages across
the GPUs without runtime load balancing, where the baseline is skewed.
"""

from repro.metrics.report import format_table
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once


def _collect():
    return {
        wl: (cached_run(wl, "baseline"), cached_run(wl, "griffin"))
        for wl in list_workloads()
    }


def test_fig8_occupancy_balance(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, (base, grif) in runs.items():
        rows.append([
            wl,
            " / ".join(f"{p:.0f}" for p in base.occupancy.percentages()),
            " / ".join(f"{p:.0f}" for p in grif.occupancy.percentages()),
            f"{base.imbalance():.2f}",
            f"{grif.imbalance():.2f}",
        ])
    print()
    print(format_table(
        ["Workload", "Baseline %/GPU", "Griffin %/GPU", "Base imb", "Griffin imb"],
        rows, "Figure 8: occupancy balancing improvement",
    ))

    for wl, (base, grif) in runs.items():
        # Griffin is never materially worse balanced than the baseline.
        assert grif.imbalance() <= base.imbalance() + 0.05, wl
        # And its max share is close to the fair 25%.
        assert grif.occupancy.max_share() <= 0.40, wl

    mean_base = sum(b.imbalance() for b, _ in runs.values()) / len(runs)
    mean_grif = sum(g.imbalance() for _, g in runs.values()) / len(runs)
    assert mean_grif < mean_base * 0.5
