"""Extension: the Figure 12 shape is not a seed artifact.

Re-runs the headline comparison on three additional seeds for a
representative workload subset and checks the qualitative conclusions —
Griffin wins, MT biggest, PR weakest — hold on every seed.
"""

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.metrics.report import format_table, geometric_mean

from benchmarks.conftest import BENCH_SCALE, run_once

SEEDS = [3, 11, 42]
WORKLOADS = ["FIR", "MT", "PR", "ST"]


def _collect():
    config = small_system()
    out = {}
    for seed in SEEDS:
        out[seed] = {}
        for wl in WORKLOADS:
            base = run_workload(wl, "baseline", config=config, scale=BENCH_SCALE, seed=seed)
            grif = run_workload(wl, "griffin", config=config, scale=BENCH_SCALE, seed=seed)
            out[seed][wl] = base.cycles / grif.cycles
    return out


def test_extension_seed_robustness(benchmark):
    speedups = run_once(benchmark, _collect)

    rows = [
        [seed] + [f"{speedups[seed][wl]:.2f}" for wl in WORKLOADS]
        + [f"{geometric_mean(speedups[seed].values()):.2f}"]
        for seed in SEEDS
    ]
    print()
    print(format_table(["Seed"] + WORKLOADS + ["geomean"], rows,
                       "Extension: Figure 12 shape across seeds"))

    for seed in SEEDS:
        s = speedups[seed]
        # MT is the biggest win on every seed; PR the weakest.
        assert max(s, key=s.get) == "MT", seed
        assert min(s, key=s.get) == "PR", seed
        assert s["MT"] >= 1.8, seed
        assert s["PR"] <= 1.10, seed
        assert geometric_mean(s.values()) > 1.1, seed
