"""Section V "Hardware Cost": Griffin's added hardware.

Shape target: the published numbers — 2 200 bytes of DPC tables per GPU
(4 Shader Engines x 100 entries x 44 bits), one page-table bit for DFTM,
one 64-bit comparator per CU for ACUD, and no hardware for CPMS.
"""

from repro.metrics.report import format_table
from repro.harness.experiments import hardware_cost_report

from benchmarks.conftest import run_once


def test_hardware_cost(benchmark):
    report = run_once(benchmark, hardware_cost_report)
    print()
    print(format_table(["Component", "Cost"], report.rows(),
                       "Section V: Griffin hardware cost"))
    assert report.dpc_bytes_per_gpu == 2200
    assert report.dpc_bits_per_entry == 44
    assert report.dftm_bits_per_page == 1
    assert report.acud_comparators_per_gpu == 36
    assert report.cpms_hardware_bytes == 0
