"""Figure 11: Griffin+Flushing versus Griffin+ACUD.

Shape target: ACUD always performs at least as well as pipeline flushing,
with significant wins on migration-heavy workloads; some benchmarks
benefit less (the paper notes ACUD can still take long when many pages
are in flight).
"""

from repro.metrics.report import format_table, geometric_mean
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once


def _collect():
    return {
        wl: (cached_run(wl, "griffin_flush"), cached_run(wl, "griffin"))
        for wl in list_workloads()
    }


def test_fig11_acud_vs_flush(benchmark):
    runs = run_once(benchmark, _collect)

    speedups = {wl: flush.cycles / acud.cycles for wl, (flush, acud) in runs.items()}
    rows = [[wl, f"{s:.2f}"] for wl, s in speedups.items()]
    rows.append(["geomean", f"{geometric_mean(speedups.values()):.2f}"])
    print()
    print(format_table(
        ["Workload", "ACUD speedup over Flush"], rows,
        "Figure 11: Griffin+Flushing vs Griffin+ACUD",
    ))

    # ACUD never loses to flushing (small simulation-noise allowance).
    for wl, s in speedups.items():
        assert s >= 0.97, wl
    # And clearly wins somewhere (paper: "quite significant for the
    # majority of the benchmarks").
    assert max(speedups.values()) >= 1.10
    assert geometric_mean(speedups.values()) >= 1.02
