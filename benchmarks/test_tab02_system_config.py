"""Table II: multi-GPU system configuration."""

from repro.harness.experiments import table2_system_config

from benchmarks.conftest import run_once


def test_table2_system_config(benchmark):
    result = run_once(benchmark, table2_system_config)
    print()
    print(result.render())
    rows = {r[0]: (r[1], r[2]) for r in result.rows}
    assert rows["CU"] == ("1 GHz", "36")
    assert rows["L1 Vector Cache"] == ("16KB 4-way", "36")
    assert rows["L2 Cache"] == ("256KB 16-way", "8")
    assert rows["DRAM"] == ("512MB HBM", "8")
    assert rows["L1 TLB"] == ("1 set, 32-way", "54")
    assert rows["L2 TLB"] == ("32 sets, 16-way", "1")
    assert rows["IOMMU"][0] == "8 Page Table Walkers"
    assert rows["Inter-Device Network"][0] == "32GB/s PCIe-v4"
