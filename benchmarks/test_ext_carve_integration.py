"""Extension: Griffin + CARVE-style remote caching.

The paper (Section VI-A): "We believe Griffin can also be integrated with
previously proposed approaches such as CARVE [10] that focuses on
dedicating DRAM space to cache remote data.  We leave study of integrated
mechanisms for future work."  This bench runs that study: a 128 KB
remote-data carve-out per GPU, with and without Griffin.
"""

from dataclasses import replace

from repro.config.presets import small_system
from repro.harness.runner import run_workload
from repro.mem.access import AccessKind
from repro.metrics.report import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once

WORKLOADS = ["KM", "FLW", "SC"]


def _collect():
    plain = small_system()
    carve = replace(plain, gpu=plain.gpu.with_remote_cache(128))
    out = {}
    for wl in WORKLOADS:
        out[wl] = {
            "baseline": run_workload(wl, "baseline", config=plain, scale=BENCH_SCALE, seed=BENCH_SEED),
            "baseline+carve": run_workload(wl, "baseline", config=carve, scale=BENCH_SCALE, seed=BENCH_SEED),
            "griffin": run_workload(wl, "griffin", config=plain, scale=BENCH_SCALE, seed=BENCH_SEED),
            "griffin+carve": run_workload(wl, "griffin", config=carve, scale=BENCH_SCALE, seed=BENCH_SEED),
        }
    return out


def test_extension_carve_integration(benchmark):
    runs = run_once(benchmark, _collect)

    rows = []
    for wl, by_cfg in runs.items():
        base = by_cfg["baseline"].cycles
        rows.append([wl] + [
            f"{base / by_cfg[c].cycles:.2f}"
            for c in ["baseline", "baseline+carve", "griffin", "griffin+carve"]
        ] + [by_cfg["griffin+carve"].kind_counts[AccessKind.REMOTE_CACHE]])
    print()
    print(format_table(
        ["Workload", "baseline", "+carve", "griffin", "griffin+carve", "carve hits"],
        rows, "Extension: CARVE remote caching, with and without Griffin",
    ))

    for wl, by_cfg in runs.items():
        # The carve-out helps the baseline (fewer fabric round trips)...
        assert by_cfg["baseline+carve"].cycles <= by_cfg["baseline"].cycles, wl
        # ...and composes with Griffin: the integrated design is best.
        best = min(c.cycles for c in by_cfg.values())
        assert by_cfg["griffin+carve"].cycles <= best * 1.02, wl
        # Remote-cache hits actually occurred and count as local service.
        assert by_cfg["griffin+carve"].kind_counts[AccessKind.REMOTE_CACHE] > 0, wl
        assert (
            by_cfg["griffin+carve"].local_fraction
            >= by_cfg["griffin"].local_fraction
        ), wl
