"""Figure 1: distribution of accesses to one page over time (SC, baseline).

The paper's motivating observation: the GPU that dominates accesses to a
page changes over time, while first-touch pins the page at its initial
location.
"""

from repro.config.presets import small_system
from repro.harness.experiments import fig1_page_access_timeline

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig1_page_access_timeline(benchmark):
    result = run_once(
        benchmark,
        lambda: fig1_page_access_timeline(
            "SC", config=small_system(), scale=BENCH_SCALE, seed=BENCH_SEED
        ),
    )
    print()
    print(result.render())

    assert len(result.series) >= 3

    # The dominant accessor must change across the run (the paper's
    # observation that motivates inter-GPU migration).
    dominant = [
        max(range(len(pct)), key=pct.__getitem__)
        for _, pct in result.series
        if sum(pct) > 0
    ]
    assert len(set(dominant)) >= 2, "page ownership never shifted"

    # Under the baseline the page migrates from the CPU exactly once and
    # is pinned afterwards: no GPU-to-GPU moves.
    gpu_moves = [m for m in result.migrations if m[1] >= 0]
    assert gpu_moves == []
