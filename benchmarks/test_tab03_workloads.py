"""Table III: the ten evaluated workloads."""

from repro.harness.experiments import table3_workloads

from benchmarks.conftest import run_once


def test_table3_workloads(benchmark):
    result = run_once(benchmark, table3_workloads)
    print()
    print(result.render())
    assert len(result.rows) == 10
    by_abbrev = {r[0]: r for r in result.rows}
    assert by_abbrev["MT"][3] == "Scatter-Gather"
    assert by_abbrev["FIR"][4] == "64 MB"
    assert by_abbrev["BFS"][2] == "SHOC"
    footprints = [int(r[4].split()[0]) for r in result.rows]
    assert min(footprints) >= 30 and max(footprints) <= 64
