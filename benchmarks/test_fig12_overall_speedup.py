"""Figure 12: speedup of Griffin versus the baseline design (the headline).

Shape targets from the paper: Griffin wins on 9 of 10 workloads; MT is
the largest win (paper: 2.9x); PR is the one slowdown (paper: ~0.95);
geometric mean is ~1.37x.  Absolute factors need not match the paper's
testbed, but the ordering and rough magnitudes must.
"""

from repro.metrics.report import format_table, geometric_mean
from repro.workloads.registry import list_workloads

from benchmarks.conftest import cached_run, run_once


def _collect():
    return {
        wl: (cached_run(wl, "baseline"), cached_run(wl, "griffin"))
        for wl in list_workloads()
    }


def test_fig12_overall_speedup(benchmark):
    runs = run_once(benchmark, _collect)

    speedups = {wl: b.cycles / g.cycles for wl, (b, g) in runs.items()}
    rows = [[wl, f"{s:.2f}"] for wl, s in speedups.items()]
    geo = geometric_mean(speedups.values())
    rows.append(["geomean", f"{geo:.2f}"])
    print()
    print(format_table(
        ["Workload", "Speedup"], rows,
        "Figure 12: speedup of Griffin versus the Baseline design",
    ))

    # Griffin wins on at least 9 of 10 workloads.
    assert sum(1 for s in speedups.values() if s > 1.0) >= 9

    # MT is the peak speedup, a large factor.
    assert max(speedups, key=speedups.get) == "MT"
    assert speedups["MT"] >= 2.0

    # PR is the weakest (the paper's one slowdown).
    assert min(speedups, key=speedups.get) == "PR"
    assert speedups["PR"] <= 1.05

    # Geometric mean in the paper's ballpark (paper: 1.37x).
    assert 1.15 <= geo <= 1.75
