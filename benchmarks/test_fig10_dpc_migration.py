"""Figure 10: DPC's dynamic inter-GPU migration decisions in action (SC).

Shape target: Griffin detects the hot page's accessor changes and
reactively migrates the page after them — the page's location changes at
least once between GPUs during the run.
"""

from repro.config.presets import small_system
from repro.harness.experiments import fig10_dpc_migration

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once


def test_fig10_dpc_migration(benchmark):
    result = run_once(
        benchmark,
        lambda: fig10_dpc_migration(
            "SC", config=small_system(), scale=BENCH_SCALE, seed=BENCH_SEED
        ),
    )
    print()
    print(result.render())

    # First-touch (or delayed first-touch) placement from the CPU...
    cpu_moves = [m for m in result.migrations if m[1] < 0]
    assert len(cpu_moves) == 1

    # ...followed by at least one reactive GPU-to-GPU migration.
    gpu_moves = [m for m in result.migrations if m[1] >= 0]
    assert len(gpu_moves) >= 1, "DPC never migrated the hot page"

    # Migrations are reactive: each lands strictly after execution began
    # and they are time-ordered.
    times = [m[0] for m in result.migrations]
    assert times == sorted(times)
