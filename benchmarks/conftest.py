"""Shared infrastructure for the figure/table regeneration benches.

Runs are deterministic, so results are memoized across bench files: the
(baseline, griffin) runs that Figure 8 needs are the same ones Figures 9
and 12 need.  Each bench still *measures* its own end-to-end regeneration.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.config.presets import NVLINK, small_system
from repro.harness.runner import run_workload

BENCH_SCALE = 0.015
BENCH_SEED = 3


@lru_cache(maxsize=None)
def cached_run(workload: str, policy: str, fabric: str = "pcie"):
    """Memoized deterministic simulation run for the bench suite."""
    config = small_system()
    if fabric == "nvlink":
        config = config.with_link(NVLINK)
    return run_workload(
        workload, policy, config=config, scale=BENCH_SCALE, seed=BENCH_SEED
    )


def run_once(benchmark, fn):
    """Measure ``fn`` exactly once (full-simulation benches)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_config():
    return small_system()
