"""ST — Stencil 2D (SHOC, Adjacent, 33 MB).

Iterative 5-point stencil over a grid of row bands with a stable
band-to-workgroup assignment: interior pages are dedicated to one GPU for
the whole run while the halo page at each band boundary is shared with
the neighbouring band's GPU every iteration.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("ST", "Stencil 2D", "SHOC", "Adjacent", 33)


class StencilWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_iterations: int = 14, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_iterations = num_iterations

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        grid = space.alloc("grid", pages)

        wgs_per_kernel = 4 * num_gpus
        kernels = []
        for it in range(self.num_iterations):
            kernel = Kernel(kernel_id=it)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", it, i)
                own = self.chunk(grid, wgs_per_kernel, i)
                halo_lo = self.chunk(grid, wgs_per_kernel, (i - 1) % wgs_per_kernel)[-1:]
                halo_hi = self.chunk(grid, wgs_per_kernel, (i + 1) % wgs_per_kernel)[:1]
                sweeping = it == 0 and i < num_gpus
                accesses = self.contended_sweep(grid, rng, 0.4) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=4, write_prob=0.3)
                accesses += self.page_accesses(halo_lo + halo_hi, rng, touches_per_page=2, write_prob=0.0)
                kernel.workgroups.append(self.make_workgroup(it, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
