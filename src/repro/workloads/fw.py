"""FW — Fast Walsh Transform (AMDAPPSDK, Adjacent, 40 MB).

Butterfly stages: in stage ``s`` each workgroup combines its own chunk
with a partner chunk at stride ``2^s``.  The partner changes every stage,
so a page's accessor set shifts across kernels — the owner-shifting
behaviour DPC migrates on.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("FW", "Fast Walsh Trans.", "AMDAPPSDK", "Adjacent", 40)


class FastWalshWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_stages: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_stages = num_stages

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        data = space.alloc("data", pages)

        wgs_per_kernel = 4 * num_gpus
        stride_bits = max(1, wgs_per_kernel.bit_length() - 1)
        kernels = []
        for s in range(self.num_stages):
            kernel = Kernel(kernel_id=s)
            stride = 1 << (s % stride_bits)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", s, i)
                partner = i ^ stride
                if partner >= wgs_per_kernel:
                    partner = i
                own = self.chunk(data, wgs_per_kernel, i)
                other = self.chunk(data, wgs_per_kernel, partner)
                sweeping = s == 0 and i < num_gpus
                accesses = self.contended_sweep(data, rng, 0.5) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=3, write_prob=0.5)
                accesses += self.page_accesses(other, rng, touches_per_page=3, write_prob=0.1)
                kernel.workgroups.append(self.make_workgroup(s, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
