"""Workload registry — Table III of the paper as code."""

from __future__ import annotations

from repro.workloads.base import WorkloadBase, WorkloadSpec
from repro.workloads.bfs import BfsWorkload
from repro.workloads.bs import BitonicSortWorkload
from repro.workloads.fir import FirWorkload
from repro.workloads.floyd_warshall import FloydWarshallWorkload
from repro.workloads.fw import FastWalshWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.matrix_transpose import MatrixTransposeWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.simple_convolution import SimpleConvolutionWorkload
from repro.workloads.stencil import StencilWorkload

_WORKLOADS: dict[str, type] = {
    "BFS": BfsWorkload,
    "BS": BitonicSortWorkload,
    "FIR": FirWorkload,
    "FLW": FloydWarshallWorkload,
    "FW": FastWalshWorkload,
    "KM": KMeansWorkload,
    "MT": MatrixTransposeWorkload,
    "PR": PageRankWorkload,
    "SC": SimpleConvolutionWorkload,
    "ST": StencilWorkload,
}

WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    abbrev: cls.spec for abbrev, cls in _WORKLOADS.items()
}
"""Table III: abbreviation -> (name, suite, access pattern, memory MB)."""


def get_workload(abbrev: str, **kwargs) -> WorkloadBase:
    """Instantiate a workload by its Table III abbreviation.

    Keyword arguments (``scale``, ``seed``, ...) are forwarded to the
    workload constructor.
    """
    try:
        cls = _WORKLOADS[abbrev.upper()]
    except KeyError:
        raise KeyError(
            f"unknown workload {abbrev!r}; available: {', '.join(sorted(_WORKLOADS))}"
        ) from None
    return cls(**kwargs)


def list_workloads() -> list[str]:
    """All Table III abbreviations, sorted as the paper's figures order them."""
    return ["BFS", "BS", "FIR", "FLW", "FW", "KM", "MT", "PR", "SC", "ST"]
