"""MT — Matrix Transpose (AMDAPPSDK, Scatter-Gather, 44 MB).

Row-major transpose: the workgroup that produces output row band ``i``
writes its own contiguous output pages exactly once and *gathers* its
input from pages scattered across the whole input matrix (one touch per
input page per workgroup).  Pages are touched once (output) or once per
gathering workgroup (input) and never revisited — the paper notes MT's
2.9x speedup comes largely from DFTM preventing "costly page migrations
that lack locality from occurring in the first place".
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("MT", "Matrix Transpose", "AMDAPPSDK", "Scatter-Gather", 44)


class MatrixTransposeWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, gather_pages_per_wg: int = 14, **kwargs) -> None:
        super().__init__(**kwargs)
        self.gather_pages_per_wg = gather_pages_per_wg

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        half = max(8, pages // 2)
        matrix_in = space.alloc("in", half)
        matrix_out = space.alloc("out", half)

        wgs = 8 * num_gpus
        in_pages = list(matrix_in)
        kernel = Kernel(kernel_id=0)
        for i in range(wgs):
            rng = self.rng("wg", i)
            # A short contended read of the input header region seeds the
            # first-touch race (Figure 2); one sweeper per GPU.
            sweeping = i < num_gpus
            accesses = self.contended_sweep(matrix_in, rng, 0.3) if sweeping else []
            # Gather: one touch per sampled input page, scattered across
            # the whole matrix (different GPUs hit the same input pages).
            n_gather = min(self.gather_pages_per_wg, len(in_pages))
            gather = [
                in_pages[int(j)]
                for j in rng.choice(len(in_pages), size=n_gather, replace=False)
            ]
            accesses += self.page_accesses(gather, rng, touches_per_page=1, write_prob=0.0, interleave=True)
            # Scatter side collapses to a sequential write of this WG's own
            # output band: each output page is written exactly once, ever.
            own_out = self.chunk(matrix_out, wgs, i)
            accesses += self.page_accesses(own_out, rng, touches_per_page=1, write_prob=1.0)
            kernel.workgroups.append(self.make_workgroup(0, accesses, lanes=8 if sweeping else 0))
        return [kernel]
