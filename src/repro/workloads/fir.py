"""FIR — Finite Impulse Response filter (Hetero-Mark, Adjacent, 64 MB).

The signal is streamed in batches (one kernel per batch); each workgroup
filters a contiguous chunk of the batch, re-reading a small set of
coefficient pages.  Chunk boundaries overlap by one halo page, giving the
adjacent-sharing pattern.  Signal pages are touched in only one kernel —
the streaming behaviour DFTM exploits.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("FIR", "Finite Impulse Resp.", "Hetero-Mark", "Adjacent", 64)


class FirWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_kernels: int = 5, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_kernels = num_kernels

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        coeff_pages = max(1, pages // 128)
        signal = space.alloc("signal", pages - coeff_pages)
        coeff = space.alloc("coeff", coeff_pages)

        wgs_per_kernel = 4 * num_gpus
        kernels = []
        for k in range(self.num_kernels):
            kernel = Kernel(kernel_id=k)
            batch = self.chunk(signal, self.num_kernels, k)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", k, i)
                own = self.chunk(batch, wgs_per_kernel, i)
                halo = self.chunk(batch, wgs_per_kernel, (i + 1) % wgs_per_kernel)[:1]
                sweeping = k == 0 and i < num_gpus
                accesses = self.contended_sweep(signal, rng, 0.3) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=5, write_prob=0.3)
                accesses += self.page_accesses(halo, rng, touches_per_page=2, write_prob=0.0)
                accesses += self.page_accesses(coeff, rng, touches_per_page=3, write_prob=0.0)
                kernel.workgroups.append(self.make_workgroup(k, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
