"""Trace files: save generated workloads, replay external traces.

The simulator is trace-driven; nothing requires the trace to come from
the built-in generators.  This module defines a compact JSON trace-file
format so that

* any generated workload can be serialized and replayed bit-identically
  (``save_trace`` / ``load_trace``), and
* users can bring *real* application traces — anything that can be
  expressed as per-wavefront ``(delay, address, is_write)`` streams —
  and run them under any policy via :class:`TraceFileWorkload`.

Format (version 1)::

    {"format": "griffin-trace", "version": 1,
     "name": ..., "page_size": ...,
     "kernels": [{"id": 0, "workgroups": [
         {"id": 0, "wavefronts": [[[delay, address, is_write], ...], ...]}
     ]}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.workloads.base import WorkloadBase, WorkloadSpec

_FORMAT = "griffin-trace"
_VERSION = 1


def save_trace(
    kernels: list,
    path: Union[str, Path],
    name: str = "trace",
    page_size: int = 4096,
) -> Path:
    """Serialize a kernel list to a trace file; returns the path."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "name": name,
        "page_size": page_size,
        "kernels": [
            {
                "id": kernel.kernel_id,
                "workgroups": [
                    {
                        "id": wg.wg_id,
                        "wavefronts": [
                            [[d, a, bool(w)] for d, a, w in wf.accesses]
                            for wf in wg.wavefronts
                        ],
                    }
                    for wg in kernel.workgroups
                ],
            }
            for kernel in kernels
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload))
    return path


def load_trace(path: Union[str, Path]) -> tuple:
    """Load a trace file; returns ``(kernels, name, page_size)``."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} file: {path}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    kernels = []
    for kdata in data["kernels"]:
        workgroups = [
            Workgroup(
                wgdata["id"],
                kdata["id"],
                [
                    WavefrontTrace([(d, a, bool(w)) for d, a, w in wf])
                    for wf in wgdata["wavefronts"]
                ],
            )
            for wgdata in kdata["workgroups"]
        ]
        kernels.append(Kernel(kdata["id"], workgroups))
    return kernels, data.get("name", "trace"), data.get("page_size", 4096)


class TraceFileWorkload(WorkloadBase):
    """A workload backed by a trace file instead of a generator.

    The trace fixes the workgroup structure, so the kernel list is the
    same regardless of GPU count — the dispatcher's round-robin mapping
    decides placement, exactly as for generated workloads.
    """

    def __init__(self, path: Union[str, Path], **kwargs) -> None:
        kernels, name, page_size = load_trace(path)
        self._kernels = kernels
        total_bytes = sum(k.total_accesses() for k in kernels) * 64
        self.spec = WorkloadSpec(
            abbrev=name.upper()[:8] or "TRACE",
            name=name,
            suite="trace-file",
            pattern="Recorded",
            memory_mb=max(1, total_bytes // (1 << 20)),
        )
        kwargs.setdefault("page_size", page_size)
        super().__init__(**kwargs)

    def build_kernels(self, num_gpus: int) -> list:
        return self._kernels
