"""SC — Simple Convolution (AMDAPPSDK, Adjacent, 41 MB).

The image is tiled into row bands; each convolution pass is one kernel.
Band-to-workgroup assignment shifts by one every ``rotate_every`` passes,
so the GPU that touches a band most changes a few times over the run —
reproducing the paper's Figure 1 observation that the dominant accessor
of a page holds for an epoch and then moves to another GPU.  Adjacent
bands share one halo page per boundary.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("SC", "Simple Convolution", "AMDAPPSDK", "Adjacent", 41)


class SimpleConvolutionWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_passes: int = 9, rotate_every: int = 3, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_passes = num_passes
        self.rotate_every = rotate_every

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        filt_pages = max(1, pages // 200)
        image = space.alloc("image", pages - filt_pages)
        filt = space.alloc("filter", filt_pages)

        wgs_per_kernel = 4 * num_gpus
        kernels = []
        for k in range(self.num_passes):
            kernel = Kernel(kernel_id=k)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", k, i)
                # Band assignment rotates by one workgroup every
                # rotate_every passes, so a band's accessor GPU holds for
                # an epoch and then shifts (round-robin dispatch).
                band = (i + k // self.rotate_every) % wgs_per_kernel
                own = self.chunk(image, wgs_per_kernel, band)
                halo_lo = self.chunk(image, wgs_per_kernel, (band - 1) % wgs_per_kernel)[-1:]
                halo_hi = self.chunk(image, wgs_per_kernel, (band + 1) % wgs_per_kernel)[:1]
                sweeping = k == 0 and i < num_gpus
                accesses = self.contended_sweep(image, rng, 0.5) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=7, write_prob=0.25)
                accesses += self.page_accesses(halo_lo + halo_hi, rng, touches_per_page=3, write_prob=0.0)
                accesses += self.page_accesses(filt, rng, touches_per_page=2, write_prob=0.0)
                kernel.workgroups.append(self.make_workgroup(k, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
