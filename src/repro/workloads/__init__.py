"""Workload generators reproducing Table III's ten benchmarks.

Each generator emits the kernels/workgroups/wavefront traces of one
benchmark with its published access pattern (Random / Adjacent /
Distributed / Partition / Scatter-Gather), scaled by a ``scale`` factor so
tests run in milliseconds and benches in seconds.
"""

from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec
from repro.workloads.tracefile import TraceFileWorkload, load_trace, save_trace
from repro.workloads.registry import (
    WORKLOAD_SPECS,
    get_workload,
    list_workloads,
)

__all__ = [
    "AddressSpace",
    "WorkloadBase",
    "WorkloadSpec",
    "WORKLOAD_SPECS",
    "get_workload",
    "list_workloads",
    "TraceFileWorkload",
    "save_trace",
    "load_trace",
]
