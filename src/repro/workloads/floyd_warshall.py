"""FLW — Floyd-Warshall (AMDAPPSDK, Distributed, 44 MB).

All-pairs shortest paths: iteration ``k`` reads the pivot row/column ``k``
from every workgroup while each workgroup updates its own block of the
distance matrix.  The pivot slice rotates every kernel, so the system's
hottest shared pages keep moving — the Distributed pattern that rewards
runtime migration.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("FLW", "Floyd Warshall", "AMDAPPSDK", "Distributed", 44)


class FloydWarshallWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_iterations: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_iterations = num_iterations

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        matrix = space.alloc("matrix", pages)

        wgs_per_kernel = 4 * num_gpus
        pivot_slices = self.num_iterations
        kernels = []
        for k in range(self.num_iterations):
            kernel = Kernel(kernel_id=k)
            pivot = self.chunk(matrix, pivot_slices * 4, (k * 4) % (pivot_slices * 4))
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", k, i)
                own = self.chunk(matrix, wgs_per_kernel, i)
                sweeping = k == 0 and i < num_gpus
                accesses = self.contended_sweep(matrix, rng, 0.6) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=3, write_prob=0.4)
                accesses += self.page_accesses(pivot, rng, touches_per_page=4, write_prob=0.0, interleave=True)
                kernel.workgroups.append(self.make_workgroup(k, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
