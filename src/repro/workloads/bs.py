"""BS — Bitonic Sort (AMDAPPSDK, Random, 36 MB).

Sorting-network stages: each kernel compares/swaps each chunk with a
partner chunk whose stride changes per stage, so pages are revisited by
different GPUs across the run; a random sub-sample of far pages adds the
published Random flavour.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("BS", "Bitonic Sort", "AMDAPPSDK", "Random", 36)


class BitonicSortWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_stages: int = 16, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_stages = num_stages

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        data = space.alloc("data", pages)
        data_pages = list(data)

        wgs_per_kernel = 4 * num_gpus
        stride_bits = max(1, wgs_per_kernel.bit_length() - 1)
        kernels = []
        for s in range(self.num_stages):
            kernel = Kernel(kernel_id=s)
            stride = 1 << (stride_bits - 1 - (s % stride_bits))
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", s, i)
                partner = i ^ stride
                if partner >= wgs_per_kernel:
                    partner = i
                own = self.chunk(data, wgs_per_kernel, i)
                other = self.chunk(data, wgs_per_kernel, partner)
                sample = [
                    data_pages[int(j)]
                    for j in rng.choice(len(data_pages), size=max(1, len(own) // 4), replace=False)
                ]
                sweeping = s == 0 and i < num_gpus
                accesses = self.contended_sweep(data, rng, 0.5) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=2, write_prob=0.5)
                accesses += self.page_accesses(other, rng, touches_per_page=2, write_prob=0.5)
                accesses += self.page_accesses(sample, rng, touches_per_page=1, write_prob=0.2, interleave=True)
                kernel.workgroups.append(self.make_workgroup(s, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
