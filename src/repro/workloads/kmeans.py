"""KM — KMeans Clustering (Hetero-Mark, Partition, 51 MB).

Points are partitioned: each workgroup processes the same point chunk in
every iteration (stable, mostly-dedicated pages), while the small centroid
region is read by every workgroup every iteration (hot shared pages).
Under the baseline the centroid pages land on whichever GPU faults first
and stay pinned — the congestion case Griffin's balancing addresses.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("KM", "KMeans Clustering", "Hetero-Mark", "Partition", 51)


class KMeansWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_iterations: int = 12, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_iterations = num_iterations

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        centroid_pages = max(2, pages // 50)
        points = space.alloc("points", pages - centroid_pages)
        centroids = space.alloc("centroids", centroid_pages)

        wgs_per_kernel = 4 * num_gpus
        kernels = []
        for it in range(self.num_iterations):
            kernel = Kernel(kernel_id=it)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", it, i)
                own = self.chunk(points, wgs_per_kernel, i)
                sweeping = it == 0 and i < num_gpus
                accesses = self.contended_sweep(points, rng, 0.4) if sweeping else []
                accesses += self.page_accesses(own, rng, touches_per_page=3, write_prob=0.1)
                accesses += self.page_accesses(centroids, rng, touches_per_page=5, write_prob=0.05, interleave=True)
                kernel.workgroups.append(self.make_workgroup(it, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
