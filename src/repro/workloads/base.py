"""Workload framework: specs, address spaces, trace-building helpers."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.sim.rng import make_rng

PAGES_PER_MB = 256  # 4 KB pages


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of paper Table III.

    Attributes:
        abbrev: Paper abbreviation (BFS, BS, ...).
        name: Full application name.
        suite: Source benchmark suite.
        pattern: Published access-pattern class.
        memory_mb: Published memory footprint in MB.
    """

    abbrev: str
    name: str
    suite: str
    pattern: str
    memory_mb: int

    def pages_at_scale(self, scale: float) -> int:
        """Footprint in pages after applying the reproduction scale."""
        return max(16, int(self.memory_mb * PAGES_PER_MB * scale))


class AddressSpace:
    """Sequential region allocator over the virtual page space.

    Workloads allocate one region per logical array (input signal, matrix,
    rank vector, ...) so distinct arrays never share pages.
    """

    def __init__(self, page_size: int = 4096, base_page: int = 256) -> None:
        self.page_size = page_size
        self._next_page = base_page
        self.regions: dict[str, range] = {}

    def alloc(self, name: str, pages: int) -> range:
        """Reserve ``pages`` contiguous pages under ``name``."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        if pages < 1:
            raise ValueError("pages must be >= 1")
        region = range(self._next_page, self._next_page + pages)
        self._next_page += pages
        self.regions[name] = region
        return region

    def total_pages(self) -> int:
        return sum(len(r) for r in self.regions.values())


class WorkloadBase(abc.ABC):
    """Base class for benchmark generators."""

    spec: WorkloadSpec

    def __init__(
        self,
        scale: float = 0.02,
        seed: int = 7,
        page_size: int = 4096,
        wavefronts_per_wg: int = 2,
        compute_scale: float = 80.0,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.page_size = page_size
        self.wavefronts_per_wg = wavefronts_per_wg
        self.compute_scale = compute_scale
        self._wg_counter = 0

    # ------------------------------------------------------------------

    @abc.abstractmethod
    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        """Generate the kernel sequence for a ``num_gpus`` system."""

    def rng(self, *labels) -> np.random.Generator:
        return make_rng(self.seed, self.spec.abbrev, *labels)

    def footprint_pages(self) -> int:
        """Footprint in pages at this workload's page size and scale."""
        bytes_at_scale = self.spec.memory_mb * (1 << 20) * self.scale
        return max(16, int(bytes_at_scale / self.page_size))

    # ------------------------------------------------------------------
    # Trace-building helpers
    # ------------------------------------------------------------------

    def page_accesses(
        self,
        pages,
        rng: np.random.Generator,
        touches_per_page: int = 4,
        write_prob: float = 0.2,
        min_delay: int = 4,
        max_delay: int = 24,
        interleave: bool = False,
        compute_scale: float = None,
    ) -> list:
        """Build an access list touching each page ``touches_per_page`` times.

        Accesses go to distinct line offsets within each page.  With
        ``interleave`` the page order is shuffled per touch round (random
        patterns); otherwise pages are streamed in order (adjacent
        patterns).
        """
        page_list = list(pages)
        if not page_list:
            return []
        lines_per_page = self.page_size // 64
        order = []
        if interleave:
            for _ in range(touches_per_page):
                round_pages = list(page_list)
                rng.shuffle(round_pages)
                order.extend(round_pages)
        else:
            for page in page_list:
                order.extend([page] * touches_per_page)
        count = len(order)
        offsets = rng.integers(0, lines_per_page, size=count)
        # compute_scale models the arithmetic between memory accesses; a
        # purely latency-bound chain would overstate locality gains.
        scale = self.compute_scale if compute_scale is None else compute_scale
        delays = (
            rng.integers(min_delay, max_delay + 1, size=count) * scale
        ).astype(int)
        writes = rng.random(count) < write_prob
        accesses = []
        for i, page in enumerate(order):
            address = page * self.page_size + int(offsets[i]) * 64
            accesses.append((int(delays[i]), address, bool(writes[i])))
        return accesses

    def make_workgroup(self, kernel_id: int, accesses: list, lanes: int = 0) -> Workgroup:
        """Split an access list round-robin into this WG's wavefronts.

        ``lanes`` overrides the workload's default wavefront count; sweeper
        workgroups use more lanes so their cold-start faults flood the
        IOMMU concurrently (the paper's fault-storm race at kernel start).
        """
        wg = Workgroup(wg_id=self._wg_counter, kernel_id=kernel_id)
        self._wg_counter += 1
        n = lanes or self.wavefronts_per_wg
        lanes_lists: list[list] = [[] for _ in range(n)]
        for i, access in enumerate(accesses):
            lanes_lists[i % n].append(access)
        wg.wavefronts = [WavefrontTrace(lane) for lane in lanes_lists if lane]
        return wg

    def contended_sweep(
        self,
        region,
        rng: np.random.Generator,
        fraction: float = 0.5,
        touches: int = 1,
    ) -> list:
        """A first-touch contention phase: every workgroup reads the same
        ordered sample of a region.

        Real first kernels read their inputs broadly (loading, reformatting,
        histogramming) before work partitions, and all GPUs race to
        first-touch the same pages in the same order — the race the paper
        blames for first-touch imbalance (GPU 1's dispatch head start plus
        the network-arbiter feedback loop decide the winner).
        """
        pages = list(region)
        count = max(1, int(len(pages) * fraction))
        step = max(1, len(pages) // count)
        sweep = pages[::step][:count]
        # Loader phases are memory-bound: no compute dilution, so the
        # first-touch race (and its positive feedback) stays sharp.
        return self.page_accesses(
            sweep, rng, touches_per_page=touches, write_prob=0.0,
            min_delay=2, max_delay=8, compute_scale=1.0,
        )

    @staticmethod
    def chunk(region, num_chunks: int, index: int) -> list:
        """The ``index``-th of ``num_chunks`` near-equal slices of a region."""
        pages = list(region)
        size, extra = divmod(len(pages), num_chunks)
        start = index * size + min(index, extra)
        end = start + size + (1 if index < extra else 0)
        return pages[start:end]
