"""BFS — Breadth First Search (SHOC, Random, 32 MB).

Level-synchronous BFS: one kernel per frontier level.  Workgroups touch
random adjacency pages (neighbour lists of frontier vertices) and random
visited-bitmap pages; the frontier grows then shrinks across levels.  The
random pattern gives pages no stable owner.
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("BFS", "Breadth First Search", "SHOC", "Random", 32)

# Relative frontier size per level (grow, peak, shrink).
_LEVEL_PROFILE = [0.1, 0.3, 0.6, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.25, 0.15, 0.1]


class BfsWorkload(WorkloadBase):
    spec = SPEC

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        adjacency = space.alloc("adjacency", max(8, int(pages * 0.7)))
        visited = space.alloc("visited", max(4, int(pages * 0.2)))
        frontier = space.alloc("frontier", max(2, int(pages * 0.1)))

        adj_pages = list(adjacency)
        vis_pages = list(visited)
        fr_pages = list(frontier)
        wgs_per_kernel = 4 * num_gpus

        kernels = []
        for level, fraction in enumerate(_LEVEL_PROFILE):
            kernel = Kernel(kernel_id=level)
            pages_per_wg = max(2, int(len(adj_pages) * fraction / wgs_per_kernel))
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", level, i)
                neighbours = [
                    adj_pages[int(j)]
                    for j in rng.choice(len(adj_pages), size=pages_per_wg, replace=False)
                ]
                marks = [
                    vis_pages[int(j)]
                    for j in rng.choice(len(vis_pages), size=max(1, pages_per_wg // 3), replace=False)
                ]
                own_frontier = self.chunk(fr_pages, wgs_per_kernel, i)
                sweeping = level == 0 and i < num_gpus
                accesses = self.contended_sweep(adjacency, rng, 0.6) if sweeping else []
                accesses += self.page_accesses(own_frontier, rng, touches_per_page=2, write_prob=0.5)
                accesses += self.page_accesses(neighbours, rng, touches_per_page=2, write_prob=0.0, interleave=True)
                accesses += self.page_accesses(marks, rng, touches_per_page=2, write_prob=0.7, interleave=True)
                kernel.workgroups.append(self.make_workgroup(level, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
