"""PR — PageRank (Hetero-Mark, Random, 38 MB).

Each iteration streams the workgroup's own adjacency chunk once and
gathers neighbour ranks from random pages across the whole rank vector —
a different random set every iteration.  The paper reports PR as the one
workload where Griffin slows down slightly: "the access patterns to
sparse matrices can be very random and irregular, which makes it
difficult to exploit inter-GPU migration effectively."
"""

from __future__ import annotations

from repro.gpu.wavefront import Kernel
from repro.workloads.base import AddressSpace, WorkloadBase, WorkloadSpec

SPEC = WorkloadSpec("PR", "PageRank Algorithm", "Hetero-Mark", "Random", 38)


class PageRankWorkload(WorkloadBase):
    spec = SPEC

    def __init__(self, num_iterations: int = 18, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_iterations = num_iterations

    def build_kernels(self, num_gpus: int) -> list[Kernel]:
        pages = self.footprint_pages()
        space = AddressSpace(self.page_size)
        ranks = space.alloc("ranks", max(8, int(pages * 0.25)))
        adjacency = space.alloc("adjacency", max(8, int(pages * 0.75)))
        rank_pages = list(ranks)

        wgs_per_kernel = 4 * num_gpus
        kernels = []
        for it in range(self.num_iterations):
            kernel = Kernel(kernel_id=it)
            for i in range(wgs_per_kernel):
                rng = self.rng("wg", it, i)
                own_adj = self.chunk(adjacency, wgs_per_kernel, i)
                # Bursty, non-recurring gathers: each rank chunk is
                # bursted by a different workgroup (and therefore GPU)
                # every iteration.  To DPC the counts look Mostly
                # Dedicated for one period, but the accessor has already
                # moved on by the time a migration lands -- the paper's
                # "random and irregular" pattern that defeats inter-GPU
                # migration.
                gather = self.chunk(
                    ranks, wgs_per_kernel, (i + 5 * it) % wgs_per_kernel
                )
                own_ranks = self.chunk(ranks, wgs_per_kernel, i)
                sweeping = it == 0 and i < num_gpus
                accesses = self.contended_sweep(adjacency, rng, 0.6) if sweeping else []
                accesses += self.page_accesses(own_adj, rng, touches_per_page=1, write_prob=0.0)
                accesses += self.page_accesses(gather, rng, touches_per_page=6, write_prob=0.0, interleave=True)
                accesses += self.page_accesses(own_ranks, rng, touches_per_page=2, write_prob=0.8)
                kernel.workgroups.append(self.make_workgroup(it, accesses, lanes=8 if sweeping else 0))
            kernels.append(kernel)
        return kernels
