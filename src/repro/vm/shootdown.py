"""TLB shootdown accounting.

Figure 9 of the paper compares the *number* of TLB shootdowns under the
baseline (one CPU-side shootdown per individually serviced first-touch
fault) against Griffin (one per CPMS fault batch plus one per inter-GPU
migration round).  This module centralizes that accounting so both policies
report through the same counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShootdownAccounting:
    """Counts shootdown events per device class.

    Attributes:
        cpu_shootdowns: Shootdown + flush rounds performed on the CPU
            (page migrating out of CPU memory).
        gpu_shootdowns: Targeted shootdown rounds performed on GPUs
            (page migrating out of GPU memory).
        gpu_entries_invalidated: Total TLB entries dropped on GPUs.
        per_gpu: Shootdown rounds per GPU id.
        cpu_pages_covered: Total pages covered by CPU shootdown rounds —
            the amortization CPMS batching buys (Figure 9's companion
            metric: rounds shrink while pages covered stays constant).
        timeouts: Acknowledgement rounds that timed out once before
            completing (fault injection only; always 0 in a clean run).
        ack_delay_cycles: Total extra acknowledgement latency injected
            into shootdown rounds (fault injection only).
    """

    cpu_shootdowns: int = 0
    gpu_shootdowns: int = 0
    gpu_entries_invalidated: int = 0
    cpu_pages_covered: int = 0
    per_gpu: dict[int, int] = field(default_factory=dict)
    timeouts: int = 0
    ack_delay_cycles: int = 0

    def record_cpu(self, batch_size: int = 1) -> None:
        """One CPU flush/shootdown round covering ``batch_size`` pages."""
        self.cpu_shootdowns += 1
        self.cpu_pages_covered += batch_size

    def record_gpu(self, gpu_id: int, entries_invalidated: int) -> None:
        """One targeted GPU shootdown round."""
        self.gpu_shootdowns += 1
        self.gpu_entries_invalidated += entries_invalidated
        self.per_gpu[gpu_id] = self.per_gpu.get(gpu_id, 0) + 1

    def record_ack_penalty(self, delay: int, timed_out: bool) -> None:
        """Injected acknowledgement delay (and optional timeout) for one
        round; the timing cost itself is charged by the driver."""
        self.ack_delay_cycles += delay
        if timed_out:
            self.timeouts += 1

    @property
    def total(self) -> int:
        """All shootdown rounds, CPU + GPU (the Figure 9 metric)."""
        return self.cpu_shootdowns + self.gpu_shootdowns
