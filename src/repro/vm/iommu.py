"""IOMMU model: multithreaded page-table walkers on the CPU die.

Translation requests that miss a GPU's L2 TLB travel over the inter-device
fabric to the IOMMU, queue for one of ``num_walkers`` page-table walkers
(paper: 8), and resolve against the system page table.  Resolution policy
(fault handling, DFTM, batching) is injected by the machine as the
``resolver`` callback so the same IOMMU serves both the baseline FCFS
scheme and Griffin.

The walker pool also reproduces the arbitration bias the paper blames for
part of the first-touch imbalance: requests are timestamped through a
:class:`~repro.interconnect.arbiter.BiasedArbiter`, giving the GPU that has
been winning grants a small head start in the queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config.system import IOMMUConfig
from repro.interconnect.arbiter import BiasedArbiter
from repro.interconnect.link import CPU_PORT, InterconnectFabric
from repro.mem.access import MemoryTransaction
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.resource import SlotResource

TRANSLATION_MSG_BYTES = 64

Resolver = Callable[[MemoryTransaction, float, Callable], None]


@dataclass
class TranslationRequest:
    """A translation in flight through the IOMMU (debug/introspection)."""

    txn: MemoryTransaction
    arrived: float
    walk_done: float


class IOMMU(Component):
    """The I/O memory management unit, physically on the CPU."""

    def __init__(
        self,
        engine: Engine,
        config: IOMMUConfig,
        fabric: InterconnectFabric,
        arbiter: BiasedArbiter,
    ) -> None:
        super().__init__(engine, "iommu")
        self.config = config
        self.fabric = fabric
        self.arbiter = arbiter
        self.walkers = SlotResource("iommu.ptw", config.num_walkers)
        self.resolver: Optional[Resolver] = None
        self._post_at = engine.post_at
        self._walk_latency = config.walk_latency

    def translate(self, txn: MemoryTransaction, request_time: float, on_data_complete: Callable) -> None:
        """Walk the page table for ``txn``; hand off to the resolver.

        ``request_time`` is when the L2 TLB miss leaves the GPU.  Each leg
        (fabric crossing, walker occupancy) fires as its own event at its
        start time so shared resources are acquired in simulated-time
        order.  The resolver is invoked at walk completion with
        ``(txn, walk_done_time, on_data_complete)``.
        """
        if self.resolver is None:
            raise RuntimeError("IOMMU resolver not wired; build via Machine")
        self.bump("translation_requests")
        now = self.engine._now
        self._post_at(
            request_time if request_time > now else now,
            self._send_request, txn, on_data_complete,
        )

    def _send_request(self, txn: MemoryTransaction, on_data_complete: Callable) -> None:
        effective = self.arbiter.effective_time(txn.gpu_id, self.engine._now)
        self.arbiter.grant(txn.gpu_id)
        arrive = self.fabric.transfer(
            effective, txn.gpu_id, CPU_PORT, TRANSLATION_MSG_BYTES
        )
        now = self.engine._now
        self._post_at(
            arrive if arrive > now else now,
            self._start_walk, txn, on_data_complete,
        )

    def _start_walk(self, txn: MemoryTransaction, on_data_complete: Callable) -> None:
        now = self.engine._now
        walk_done = self.walkers.acquire(now, self._walk_latency)
        self._post_at(
            walk_done if walk_done > now else now, self.resolver, txn,
            walk_done, on_data_complete,
        )

    def reply_time(self, send_time: float, gpu_id: int) -> float:
        """Time the translation reply reaches the requesting GPU."""
        return self.fabric.transfer(
            send_time, CPU_PORT, gpu_id, TRANSLATION_MSG_BYTES
        )
