"""Set-associative TLB with LRU replacement and targeted invalidation.

Griffin's shootdowns invalidate only the entries of migrating pages
("Our TLB shootdown invalidates only the entries for pages involved in the
current migration process as opposed to invalidating the entire TLB"),
so the TLB exposes both :meth:`invalidate_pages` and :meth:`flush_all`.

Hot-path notes: set indexing uses a bitmask when ``num_sets`` is a power
of two (validated at configuration time via ``TLBConfig.set_mask``), and
:meth:`lookup` keeps a one-entry MRU memo.  The memo is only consulted
for the page that most recently went through the full hit path — for
that page the LRU reorder is a no-op by construction, so skipping it is
exactly equivalent — and it is dropped on any operation that reorders or
removes entries (insert, invalidate, flush).

Sets are ``OrderedDict``s: for the TLB's reorder-dominated access mix
``move_to_end`` beats a plain-dict pop/re-insert, so the classic
container stays.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config.system import TLBConfig


class TLB:
    """A set-associative translation lookaside buffer.

    Entries map page number -> device id of a *local* translation.  Remote
    translations are never inserted (the paper's GPUs do not keep TLBs
    hardware-coherent across devices).
    """

    __slots__ = (
        "name", "config", "_sets", "_num_sets", "_set_mask", "_mru_page",
        "hits", "misses", "invalidations",
    )

    def __init__(self, name: str, config: TLBConfig) -> None:
        self.name = name
        self.config = config
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._num_sets = config.num_sets
        self._set_mask = config.set_mask
        self._mru_page = -1
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _set_for(self, page: int) -> dict:
        mask = self._set_mask
        if mask >= 0:
            return self._sets[page & mask]
        return self._sets[page % self._num_sets]

    def lookup(self, page: int) -> bool:
        """Probe for ``page``; updates LRU order and hit/miss counters."""
        if page == self._mru_page:
            # Already most-recent in its set; reordering would be a no-op.
            self.hits += 1
            return True
        mask = self._set_mask
        entries = self._sets[page & mask if mask >= 0 else page % self._num_sets]
        if page in entries:
            entries.move_to_end(page)
            self._mru_page = page
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page: int, device: int) -> None:
        """Install a translation, evicting LRU on overflow."""
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            entries[page] = device
            self._mru_page = page
            return
        if len(entries) >= self.config.ways:
            evicted, _ = entries.popitem(last=False)
            if evicted == self._mru_page:
                self._mru_page = -1
        entries[page] = device
        self._mru_page = page

    def invalidate_pages(self, pages) -> int:
        """Drop entries for the given pages; returns how many were present."""
        self._mru_page = -1
        dropped = 0
        for page in pages:
            entries = self._set_for(page)
            if page in entries:
                del entries[page]
                dropped += 1
        self.invalidations += dropped
        return dropped

    def flush_all(self) -> int:
        """Drop every entry (full shootdown); returns entries dropped."""
        self._mru_page = -1
        dropped = sum(len(s) for s in self._sets)
        for entries in self._sets:
            entries.clear()
        self.invalidations += dropped
        return dropped

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(s) for s in self._sets)

    def contains(self, page: int) -> bool:
        """True if a translation for ``page`` is cached (no LRU effects)."""
        return page in self._set_for(page)

    def entries(self):
        """Iterate ``(page, device)`` pairs without disturbing LRU order.

        Used by the sanitizer's VM-coherence audit; not a hot path.
        """
        for entries in self._sets:
            yield from entries.items()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses
