"""Set-associative TLB with LRU replacement and targeted invalidation.

Griffin's shootdowns invalidate only the entries of migrating pages
("Our TLB shootdown invalidates only the entries for pages involved in the
current migration process as opposed to invalidating the entire TLB"),
so the TLB exposes both :meth:`invalidate_pages` and :meth:`flush_all`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config.system import TLBConfig


class TLB:
    """A set-associative translation lookaside buffer.

    Entries map page number -> device id of a *local* translation.  Remote
    translations are never inserted (the paper's GPUs do not keep TLBs
    hardware-coherent across devices).
    """

    __slots__ = ("name", "config", "_sets", "hits", "misses", "invalidations")

    def __init__(self, name: str, config: TLBConfig) -> None:
        self.name = name
        self.config = config
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _set_for(self, page: int) -> OrderedDict:
        return self._sets[page % self.config.num_sets]

    def lookup(self, page: int) -> bool:
        """Probe for ``page``; updates LRU order and hit/miss counters."""
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page: int, device: int) -> None:
        """Install a translation, evicting LRU on overflow."""
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            entries[page] = device
            return
        if len(entries) >= self.config.ways:
            entries.popitem(last=False)
        entries[page] = device

    def invalidate_pages(self, pages) -> int:
        """Drop entries for the given pages; returns how many were present."""
        dropped = 0
        for page in pages:
            entries = self._set_for(page)
            if page in entries:
                del entries[page]
                dropped += 1
        self.invalidations += dropped
        return dropped

    def flush_all(self) -> int:
        """Drop every entry (full shootdown); returns entries dropped."""
        dropped = sum(len(s) for s in self._sets)
        for entries in self._sets:
            entries.clear()
        self.invalidations += dropped
        return dropped

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses
