"""The system-wide page table.

Under Unified Memory every page starts CPU-resident; migrations move pages
between devices.  The table also stores Griffin's one extra bit per entry:
the *delayed first-touch* bit DFTM sets when it denies a first-touch
migration ("Griffin's DFTM requires an extra bit in the page table for each
page to mark that it has been accessed once").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.vm.address import CPU_DEVICE


@dataclass
class PageEntry:
    """Residency and bookkeeping for one virtual page.

    Attributes:
        page: Virtual page number.
        device: Device currently holding the page.
        delayed_bit: DFTM's accessed-once bit (set when the first touch was
            served by DCA instead of migration).
        migrating: True while a migration of this page is in flight;
            accesses arriving mid-migration must wait for completion.
        migrations: Number of times the page has migrated (any direction).
        first_touch_gpu: GPU that triggered the first CPU fault, or None.
    """

    page: int
    device: int = CPU_DEVICE
    delayed_bit: bool = False
    migrating: bool = False
    migrations: int = 0
    first_touch_gpu: Optional[int] = None


class PageTable:
    """Maps virtual pages to their resident device.

    Also maintains the per-GPU resident-page counts DFTM's occupancy test
    needs, so occupancy queries are O(1).
    """

    def __init__(self, num_gpus: int, page_size: int) -> None:
        self.num_gpus = num_gpus
        self.page_size = page_size
        self._entries: dict[int, PageEntry] = {}
        self._gpu_page_counts = [0] * num_gpus
        self.total_migrations = 0
        self.cpu_to_gpu_migrations = 0
        self.gpu_to_gpu_migrations = 0

    def entry(self, page: int) -> PageEntry:
        """Look up (creating on first reference) the entry for ``page``."""
        existing = self._entries.get(page)
        if existing is not None:
            return existing
        created = PageEntry(page=page)
        self._entries[page] = created
        return created

    def known_pages(self) -> Iterator[int]:
        """All pages ever referenced."""
        return iter(self._entries)

    def location(self, page: int) -> int:
        """Device currently holding ``page`` (CPU_DEVICE if untouched)."""
        return self.entry(page).device

    def migrate(self, page: int, dst_device: int) -> PageEntry:
        """Move ``page`` to ``dst_device``, maintaining occupancy counts."""
        entry = self.entry(page)
        src = entry.device
        if src == dst_device:
            return entry
        if src >= 0:
            self._gpu_page_counts[src] -= 1
        if dst_device >= 0:
            self._gpu_page_counts[dst_device] += 1
        entry.device = dst_device
        entry.migrations += 1
        entry.migrating = False
        self.total_migrations += 1
        if src == CPU_DEVICE and dst_device >= 0:
            self.cpu_to_gpu_migrations += 1
        elif src >= 0 and dst_device >= 0:
            self.gpu_to_gpu_migrations += 1
        return entry

    def gpu_page_count(self, gpu_id: int) -> int:
        """Number of pages resident on GPU ``gpu_id``."""
        return self._gpu_page_counts[gpu_id]

    def gpu_page_counts(self) -> list[int]:
        """Resident-page count per GPU (index = GPU id)."""
        return list(self._gpu_page_counts)

    def total_gpu_pages(self) -> int:
        """Total pages resident on any GPU."""
        return sum(self._gpu_page_counts)

    def occupancy(self, gpu_id: int) -> float:
        """DFTM occupancy: this GPU's share of all GPU-resident pages."""
        total = self.total_gpu_pages()
        if total == 0:
            return 0.0
        return self._gpu_page_counts[gpu_id] / total

    def highest_occupancy_gpus(self) -> list[int]:
        """GPU ids tied for the highest resident-page count."""
        peak = max(self._gpu_page_counts)
        return [g for g, c in enumerate(self._gpu_page_counts) if c == peak]

    def pages_on(self, device: int) -> list[int]:
        """All pages currently resident on ``device`` (O(n); stats only)."""
        return [p for p, e in self._entries.items() if e.device == device]
