"""Virtual-memory substrate: pages, page table, TLBs, IOMMU, shootdowns."""

from repro.vm.address import CPU_DEVICE, Translation, page_base, page_id
from repro.vm.page_table import PageEntry, PageTable
from repro.vm.tlb import TLB
from repro.vm.iommu import IOMMU, TranslationRequest
from repro.vm.shootdown import ShootdownAccounting

__all__ = [
    "CPU_DEVICE",
    "Translation",
    "page_base",
    "page_id",
    "PageEntry",
    "PageTable",
    "TLB",
    "IOMMU",
    "TranslationRequest",
    "ShootdownAccounting",
]
