"""Address-space conventions.

Devices are numbered: GPUs are ``0 .. num_gpus-1`` and the CPU is
:data:`CPU_DEVICE` (-1).  Virtual addresses are plain integers; a page is
identified by ``virtual_address >> page_shift``.  Because the simulator
never stores data, "physical address" reduces to *which device's memory
holds the page* — exactly the property page migration manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass

CPU_DEVICE = -1
"""Device ID of the CPU (pages start CPU-resident under Unified Memory)."""


def page_shift(page_size: int) -> int:
    """log2 of the page size."""
    return page_size.bit_length() - 1


def page_id(address: int, page_size: int) -> int:
    """The page number containing ``address``."""
    return address >> page_shift(page_size)


def page_base(page: int, page_size: int) -> int:
    """The first byte address of page ``page``."""
    return page << page_shift(page_size)


@dataclass(frozen=True)
class Translation:
    """The result of an address translation.

    Attributes:
        page: Virtual page number.
        device: Device whose memory holds the page (GPU id or CPU_DEVICE).
        cacheable: Whether the translation may be inserted into the
            requesting GPU's TLBs.  Per the paper, translations to pages on
            *remote* devices are not cached because GPU TLBs are not kept
            hardware-coherent; only local translations are cached.
    """

    page: int
    device: int
    cacheable: bool

    def is_local_to(self, gpu_id: int) -> bool:
        """True when the page resides in ``gpu_id``'s own memory."""
        return self.device == gpu_id
