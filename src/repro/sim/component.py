"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Component:
    """A named hardware block bound to a simulation engine.

    Components keep their statistics in a plain ``stats`` dict of counters so
    the metrics layer can harvest them uniformly.
    """

    def __init__(self, engine: "Engine", name: str) -> None:
        self.engine = engine
        self.name = name
        self.stats: dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current simulation time (cycles)."""
        return self.engine.now

    def bump(self, stat: str, amount: float = 1) -> None:
        """Increment a named statistic counter."""
        try:
            self.stats[stat] += amount
        except KeyError:
            self.stats[stat] = amount

    def stat(self, name: str) -> float:
        """Read a statistic counter (0 if never bumped)."""
        return self.stats.get(name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
