"""Deterministic machine snapshots: capture once, fork many.

A snapshot is a pickle of the *entire* machine graph — engine clock,
event queue (heap + same-cycle lane, with pending callbacks as bound
methods/partials), caches, TLBs, page table, DPC filter arrays, RNG
streams — taken while the engine is paused between events.  Forking
deserializes that payload into an independent machine that continues
byte-identically to the run it was captured from: the parity suite pins
``snapshot() -> fork() -> finish()`` against uninterrupted runs.

Two details make this exact rather than approximate:

* Components whose hot-path state is not naively picklable implement the
  state-capture protocol (``__getstate__``/``__setstate__``): the event
  queue drops its free-list pool (recycled storage, never observable),
  ``id()``-keyed counter dicts travel in enum order, and the engine
  refuses capture mid-callback (see ``Engine.__getstate__``).
* The workload trace (kernels/workgroups/wavefront access lists) is
  immutable after construction, so it is serialized *by reference*: the
  payload stores a persistent id per trace object and every fork shares
  the one in-memory copy.  This keeps payloads proportional to live
  simulation state, not workload size, and is what makes shipping a
  snapshot to a worker once per chunk cheap.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine


class _SharedPickler(pickle.Pickler):
    """Serialize registered shared objects as persistent ids."""

    def __init__(self, file, shared_ids: dict) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._shared_ids = shared_ids

    def persistent_id(self, obj):
        return self._shared_ids.get(id(obj))


class _SharedUnpickler(pickle.Unpickler):
    """Resolve persistent ids back to the shared in-memory objects."""

    def __init__(self, file, shared: list) -> None:
        super().__init__(file)
        self._shared = shared

    def persistent_load(self, pid):
        return self._shared[pid]


@dataclass
class MachineSnapshot:
    """A forkable copy of a paused machine.

    Attributes:
        payload: Pickled machine graph, shared objects as persistent ids.
        shared: Persistent-id table (index -> object); the objects are
            immutable workload traces, shared by every fork.
        cycle: Engine clock at capture time.
        events_executed: Events the captured run had executed — forks
            inherit this, so event budgets span prefix + continuation
            exactly like an uninterrupted run.
    """

    payload: bytes
    shared: list = field(repr=False)
    cycle: float
    events_executed: int

    @classmethod
    def capture(cls, machine: "Machine") -> "MachineSnapshot":
        shared = machine.shared_snapshot_objects()
        shared_ids = {id(obj): index for index, obj in enumerate(shared)}
        buffer = io.BytesIO()
        _SharedPickler(buffer, shared_ids).dump(machine)
        return cls(
            payload=buffer.getvalue(),
            shared=shared,
            cycle=machine.engine.now,
            events_executed=machine.engine.events_executed,
        )

    def fork(self) -> "Machine":
        """Materialize an independent machine from the captured state."""
        return _SharedUnpickler(io.BytesIO(self.payload), self.shared).load()
