/* Compiled event core for the Griffin reproduction.
 *
 * `EventCore` is a C mirror of repro.sim.event.EventQueue (binary heap +
 * same-cycle FIFO lane + cancellation bookkeeping with lazy compaction)
 * plus the Engine.run drain loop, exposed as `_drain`.  The Python side
 * (repro.sim.compiled) subclasses it to add the rare-path surfaces:
 * snapshot, pickling, and the engine wrapper methods.
 *
 * The contract is byte-identity with the pure-Python heap oracle:
 *
 * - Events fire in exact (time, priority, seq) order.  Entries carry the
 *   *original* time object (int or float, whatever the caller passed)
 *   alongside a C double used only for ordering, so `engine._now` — read
 *   directly by hot model code and serialized into results — keeps the
 *   exact numeric type the oracle would produce.
 * - Cancelled events are skipped at pop time; `_note_cancel` keeps the
 *   live/cancelled counters and triggers in-place compaction on the same
 *   thresholds as the oracle (_COMPACT_MIN/_COMPACT_LIMIT, imported at
 *   module load so there is a single source of truth).
 * - The drain loop replicates Engine.run ordering precisely: cancelled-
 *   head skip gated on the cancelled counter, head selection by strict
 *   `heap[0] < lane[0]`, bound check *before* pop (parking `_now` at the
 *   bound object itself), stall watchdog checked before `_now` advances,
 *   monitor.on_execute after, executed counted only after the callback
 *   returns, and `events_executed` accumulated even when an exception
 *   unwinds the loop.  Error messages are composed by Python helpers on
 *   the engine (`_stall_error` / `_budget_error`) so their text is
 *   byte-identical to the oracle's f-strings.
 *
 * Entries live in C arrays by value; every Python-visible operation
 * copies the entry out before running arbitrary Python code (callbacks,
 * decref side effects), because that code may push events and reallocate
 * the arrays.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

typedef struct {
    double key;        /* numeric value of `time`, ordering only */
    long prio;
    long long seq;
    PyObject *time;    /* owned; the exact object the caller passed */
    PyObject *callback;/* owned */
    PyObject *args;    /* owned tuple */
    PyObject *event;   /* owned Event cancel handle, or NULL */
} centry;

typedef struct {
    PyObject_HEAD
    centry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    centry *lane;      /* FIFO: valid entries at [lane_head, lane_head+lane_len) */
    Py_ssize_t lane_head;
    Py_ssize_t lane_len;
    Py_ssize_t lane_cap;
    long long seq;
    Py_ssize_t live;
    Py_ssize_t cancelled;
    int stop_flag;
} CoreObject;

/* Resolved at module init from repro.sim.event / repro.sim.engine. */
static PyObject *EventClass = NULL;
static PyObject *SimErrClass = NULL;
static long compact_min = 16;
static long compact_limit = 4096;

static PyObject *s_time, *s_priority, *s_seq, *s_callback, *s_args,
    *s_cancelled, *s_uqueue, *s_unow, *s_umonitor, *s_exhausted,
    *s_events_executed, *s_on_execute, *s_stall_error, *s_budget_error;

/* ------------------------------------------------------------------ */
/* Entry helpers                                                      */
/* ------------------------------------------------------------------ */

static int
time_key(PyObject *time, double *out)
{
    double v = PyFloat_AsDouble(time);
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

static inline int
entry_lt(const centry *a, const centry *b)
{
    if (a->key != b->key)
        return a->key < b->key;
    if (a->prio != b->prio)
        return a->prio < b->prio;
    return a->seq < b->seq;
}

static void
entry_clear(centry *e)
{
    Py_CLEAR(e->time);
    Py_CLEAR(e->callback);
    Py_CLEAR(e->args);
    Py_CLEAR(e->event);
}

/* 1 cancelled, 0 live, -1 error.  Event.cancelled is a slot, so the
 * attribute read runs no arbitrary Python code. */
static int
ev_cancelled(PyObject *event)
{
    PyObject *flag = PyObject_GetAttr(event, s_cancelled);
    int result;
    if (flag == NULL)
        return -1;
    result = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    return result;
}

/* ------------------------------------------------------------------ */
/* Heap + lane storage                                                */
/* ------------------------------------------------------------------ */

static void
heap_sift_up(centry *heap, Py_ssize_t pos)
{
    centry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (entry_lt(&item, &heap[parent])) {
            heap[pos] = heap[parent];
            pos = parent;
        }
        else
            break;
    }
    heap[pos] = item;
}

static void
heap_sift_down(centry *heap, Py_ssize_t n, Py_ssize_t pos)
{
    centry item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && entry_lt(&heap[child + 1], &heap[child]))
            child++;
        if (entry_lt(&heap[child], &item)) {
            heap[pos] = heap[child];
            pos = child;
        }
        else
            break;
    }
    heap[pos] = item;
}

static int
heap_push(CoreObject *self, const centry *e)
{
    if (self->heap_len == self->heap_cap) {
        Py_ssize_t cap = self->heap_cap ? self->heap_cap * 2 : 256;
        centry *buf = PyMem_Realloc(self->heap, cap * sizeof(centry));
        if (buf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->heap = buf;
        self->heap_cap = cap;
    }
    self->heap[self->heap_len] = *e;
    heap_sift_up(self->heap, self->heap_len);
    self->heap_len++;
    return 0;
}

static void
heap_pop_min(CoreObject *self, centry *out)
{
    centry *heap = self->heap;
    Py_ssize_t n;
    *out = heap[0];
    n = --self->heap_len;
    if (n > 0) {
        heap[0] = heap[n];
        heap_sift_down(heap, n, 0);
    }
}

static int
lane_push(CoreObject *self, const centry *e)
{
    if (self->lane_head + self->lane_len == self->lane_cap) {
        if (self->lane_head > 0 && self->lane_head >= self->lane_cap / 2) {
            memmove(self->lane, self->lane + self->lane_head,
                    self->lane_len * sizeof(centry));
            self->lane_head = 0;
        }
        else {
            Py_ssize_t cap = self->lane_cap ? self->lane_cap * 2 : 256;
            centry *buf = PyMem_Realloc(self->lane, cap * sizeof(centry));
            if (buf == NULL) {
                PyErr_NoMemory();
                return -1;
            }
            self->lane = buf;
            self->lane_cap = cap;
        }
    }
    self->lane[self->lane_head + self->lane_len] = *e;
    self->lane_len++;
    return 0;
}

static void
lane_popleft(CoreObject *self, centry *out)
{
    *out = self->lane[self->lane_head];
    self->lane_head++;
    if (--self->lane_len == 0)
        self->lane_head = 0;
}

/* ------------------------------------------------------------------ */
/* Cancellation plumbing                                              */
/* ------------------------------------------------------------------ */

/* Mirrors EventQueue._skip_cancelled_heads: pop cancelled heads off both
 * stores.  Re-reads self->heap/lane each iteration — the decrefs in
 * entry_clear can run __del__ code that pushes and reallocates. */
static int
skip_heads(CoreObject *self)
{
    for (;;) {
        PyObject *ev;
        centry e;
        int c;
        if (self->heap_len == 0)
            break;
        ev = self->heap[0].event;
        if (ev == NULL)
            break;
        c = ev_cancelled(ev);
        if (c < 0)
            return -1;
        if (!c)
            break;
        heap_pop_min(self, &e);
        self->cancelled--;
        entry_clear(&e);
    }
    for (;;) {
        PyObject *ev;
        centry e;
        int c;
        if (self->lane_len == 0)
            break;
        ev = self->lane[self->lane_head].event;
        if (ev == NULL)
            break;
        c = ev_cancelled(ev);
        if (c < 0)
            return -1;
        if (!c)
            break;
        lane_popleft(self, &e);
        self->cancelled--;
        entry_clear(&e);
    }
    return 0;
}

/* Mirrors EventQueue._compact: drop cancelled entries in place, then
 * restore the heap invariant.  Dropped entries are decref'd only after
 * both stores are consistent (decref side effects may push). */
static int
core_compact_impl(CoreObject *self)
{
    Py_ssize_t total = self->heap_len + self->lane_len;
    centry *dropped;
    Py_ssize_t ndropped = 0, i, w;

    if (total == 0) {
        self->cancelled = 0;
        return 0;
    }
    dropped = PyMem_Malloc(total * sizeof(centry));
    if (dropped == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    /* Heap: keep live entries, collect the rest. */
    w = 0;
    for (i = 0; i < self->heap_len; i++) {
        centry *e = &self->heap[i];
        int c = 0;
        if (e->event != NULL) {
            c = ev_cancelled(e->event);
            if (c < 0) {
                /* Unreachable with real Events (slot read); treat as
                 * live so the queue stays consistent. */
                PyErr_Clear();
                c = 0;
            }
        }
        if (c)
            dropped[ndropped++] = *e;
        else
            self->heap[w++] = *e;
    }
    self->heap_len = w;
    for (i = w / 2 - 1; i >= 0; i--)
        heap_sift_down(self->heap, w, i);
    /* Lane: left-compact the pending region to index 0. */
    w = 0;
    for (i = 0; i < self->lane_len; i++) {
        centry *e = &self->lane[self->lane_head + i];
        int c = 0;
        if (e->event != NULL) {
            c = ev_cancelled(e->event);
            if (c < 0) {
                PyErr_Clear();
                c = 0;
            }
        }
        if (c)
            dropped[ndropped++] = *e;
        else
            self->lane[w++] = *e;
    }
    self->lane_head = 0;
    self->lane_len = w;
    self->cancelled = 0;
    for (i = 0; i < ndropped; i++)
        entry_clear(&dropped[i]);
    PyMem_Free(dropped);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Scheduling methods                                                 */
/* ------------------------------------------------------------------ */

static int
ensure_tuple(PyObject **args)
{
    if (PyTuple_Check(*args))
        return 0;
    PyObject *t = PySequence_Tuple(*args);
    if (t == NULL)
        return -1;
    Py_DECREF(*args);
    *args = t;
    return 0;
}

/* push(event) -> event : insert with a cancel handle, stamping seq. */
static PyObject *
core_push(CoreObject *self, PyObject *event)
{
    centry e;
    PyObject *prio_obj = NULL, *seq_obj = NULL;
    long long seq;

    memset(&e, 0, sizeof(e));
    e.time = PyObject_GetAttr(event, s_time);
    if (e.time == NULL)
        goto fail;
    prio_obj = PyObject_GetAttr(event, s_priority);
    if (prio_obj == NULL)
        goto fail;
    e.prio = PyLong_AsLong(prio_obj);
    if (e.prio == -1 && PyErr_Occurred())
        goto fail;
    Py_CLEAR(prio_obj);
    e.callback = PyObject_GetAttr(event, s_callback);
    if (e.callback == NULL)
        goto fail;
    e.args = PyObject_GetAttr(event, s_args);
    if (e.args == NULL || ensure_tuple(&e.args) < 0)
        goto fail;
    if (time_key(e.time, &e.key) < 0)
        goto fail;
    seq = self->seq++;
    e.seq = seq;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        goto fail;
    if (PyObject_SetAttr(event, s_seq, seq_obj) < 0)
        goto fail;
    Py_CLEAR(seq_obj);
    if (PyObject_SetAttr(event, s_uqueue, (PyObject *)self) < 0)
        goto fail;
    e.event = Py_NewRef(event);
    if (heap_push(self, &e) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    return Py_NewRef(event);

fail:
    Py_XDECREF(prio_obj);
    Py_XDECREF(seq_obj);
    entry_clear(&e);
    return NULL;
}

/* push_entry(time, priority, callback, args): heap, no cancel handle. */
static PyObject *
core_push_entry(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    centry e;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "push_entry expects (time, priority, callback, args)");
        return NULL;
    }
    memset(&e, 0, sizeof(e));
    if (time_key(args[0], &e.key) < 0)
        return NULL;
    e.prio = PyLong_AsLong(args[1]);
    if (e.prio == -1 && PyErr_Occurred())
        return NULL;
    e.time = Py_NewRef(args[0]);
    e.callback = Py_NewRef(args[2]);
    e.args = Py_NewRef(args[3]);
    if (ensure_tuple(&e.args) < 0) {
        entry_clear(&e);
        return NULL;
    }
    e.seq = self->seq++;
    if (heap_push(self, &e) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    Py_RETURN_NONE;
}

/* push_lane(time, callback, args, event=None): priority-0 FIFO append. */
static PyObject *
core_push_lane(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    centry e;
    PyObject *event;
    if (nargs != 3 && nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "push_lane expects (time, callback, args, event=None)");
        return NULL;
    }
    event = (nargs == 4 && args[3] != Py_None) ? args[3] : NULL;
    memset(&e, 0, sizeof(e));
    if (time_key(args[0], &e.key) < 0)
        return NULL;
    e.prio = 0;
    e.time = Py_NewRef(args[0]);
    e.callback = Py_NewRef(args[1]);
    e.args = Py_NewRef(args[2]);
    if (ensure_tuple(&e.args) < 0) {
        entry_clear(&e);
        return NULL;
    }
    e.seq = self->seq++;
    if (event != NULL) {
        PyObject *seq_obj = PyLong_FromLongLong(e.seq);
        if (seq_obj == NULL
            || PyObject_SetAttr(event, s_seq, seq_obj) < 0) {
            Py_XDECREF(seq_obj);
            entry_clear(&e);
            return NULL;
        }
        Py_DECREF(seq_obj);
        if (PyObject_SetAttr(event, s_uqueue, (PyObject *)self) < 0) {
            entry_clear(&e);
            return NULL;
        }
        e.event = Py_NewRef(event);
    }
    if (lane_push(self, &e) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    Py_RETURN_NONE;
}

/* _push_handle(time, priority, callback, args, event, use_lane):
 * the tail of Engine.schedule/schedule_at — the Event was already
 * built by the Python wrapper; stamp it and store the entry. */
static PyObject *
core_push_handle(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    centry e;
    PyObject *event, *seq_obj;
    int use_lane;
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "_push_handle expects (time, priority, callback, "
                        "args, event, use_lane)");
        return NULL;
    }
    event = args[4];
    use_lane = PyObject_IsTrue(args[5]);
    if (use_lane < 0)
        return NULL;
    memset(&e, 0, sizeof(e));
    if (time_key(args[0], &e.key) < 0)
        return NULL;
    e.prio = PyLong_AsLong(args[1]);
    if (e.prio == -1 && PyErr_Occurred())
        return NULL;
    e.time = Py_NewRef(args[0]);
    e.callback = Py_NewRef(args[2]);
    e.args = Py_NewRef(args[3]);
    if (ensure_tuple(&e.args) < 0) {
        entry_clear(&e);
        return NULL;
    }
    e.seq = self->seq++;
    seq_obj = PyLong_FromLongLong(e.seq);
    if (seq_obj == NULL || PyObject_SetAttr(event, s_seq, seq_obj) < 0) {
        Py_XDECREF(seq_obj);
        entry_clear(&e);
        return NULL;
    }
    Py_DECREF(seq_obj);
    if (PyObject_SetAttr(event, s_uqueue, (PyObject *)self) < 0) {
        entry_clear(&e);
        return NULL;
    }
    e.event = Py_NewRef(event);
    if ((use_lane ? lane_push(self, &e) : heap_push(self, &e)) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    Py_RETURN_NONE;
}

/* _post(now, delay, callback, args): Engine.post minus the monitor
 * check (done by the Python wrapper).  Mirrors the oracle exactly,
 * including bumping seq *before* the negative-delay error. */
static PyObject *
core_post(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    centry e;
    double dkey;
    int use_lane;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "_post expects (now, delay, callback, args)");
        return NULL;
    }
    memset(&e, 0, sizeof(e));
    e.seq = self->seq++;
    if (time_key(args[1], &dkey) < 0)
        return NULL;
    if (dkey <= 0.0) {
        if (dkey < 0.0) {
            PyErr_Format(SimErrClass,
                         "cannot schedule in the past (delay=%S)", args[1]);
            return NULL;
        }
        e.time = Py_NewRef(args[0]);
        if (time_key(e.time, &e.key) < 0) {
            entry_clear(&e);
            return NULL;
        }
        use_lane = 1;
    }
    else {
        e.time = PyNumber_Add(args[0], args[1]);
        if (e.time == NULL || time_key(e.time, &e.key) < 0) {
            entry_clear(&e);
            return NULL;
        }
        use_lane = 0;
    }
    e.prio = 0;
    e.callback = Py_NewRef(args[2]);
    e.args = Py_NewRef(args[3]);
    if ((use_lane ? lane_push(self, &e) : heap_push(self, &e)) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    Py_RETURN_NONE;
}

/* _sched(now, time, callback, args): the access path's clamp-to-present
 * scheduling site — a priority-0 entry at max(time, now), routed to the
 * lane when clamped and to the heap otherwise.  Equivalent to the
 * oracle's inlined `t if t > now else now` + lane/heap branch. */
static PyObject *
core_sched(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    centry e;
    double tkey, nkey;
    int use_lane;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "_sched expects (now, time, callback, args)");
        return NULL;
    }
    memset(&e, 0, sizeof(e));
    if (time_key(args[1], &tkey) < 0 || time_key(args[0], &nkey) < 0)
        return NULL;
    e.seq = self->seq++;
    if (tkey > nkey) {
        e.time = Py_NewRef(args[1]);
        e.key = tkey;
        use_lane = 0;
    }
    else {
        e.time = Py_NewRef(args[0]);
        e.key = nkey;
        use_lane = 1;
    }
    e.prio = 0;
    e.callback = Py_NewRef(args[2]);
    e.args = Py_NewRef(args[3]);
    if ((use_lane ? lane_push(self, &e) : heap_push(self, &e)) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    Py_RETURN_NONE;
}

/* _post_at(now, time, callback, args): Engine.post_at minus monitor. */
static PyObject *
core_post_at(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    centry e;
    double tkey, nkey;
    int use_lane;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "_post_at expects (now, time, callback, args)");
        return NULL;
    }
    memset(&e, 0, sizeof(e));
    e.seq = self->seq++;
    if (time_key(args[1], &tkey) < 0 || time_key(args[0], &nkey) < 0)
        return NULL;
    if (tkey <= nkey) {
        if (tkey < nkey) {
            PyErr_Format(SimErrClass,
                         "cannot schedule at t=%S, current time is %S",
                         args[1], args[0]);
            return NULL;
        }
        e.time = Py_NewRef(args[0]);
        e.key = nkey;
        use_lane = 1;
    }
    else {
        e.time = Py_NewRef(args[1]);
        e.key = tkey;
        use_lane = 0;
    }
    e.prio = 0;
    e.callback = Py_NewRef(args[2]);
    e.args = Py_NewRef(args[3]);
    if ((use_lane ? lane_push(self, &e) : heap_push(self, &e)) < 0) {
        entry_clear(&e);
        return NULL;
    }
    self->live++;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Draining                                                           */
/* ------------------------------------------------------------------ */

/* Build an Event for a handle-less popped entry (pop()/snapshot paths;
 * the oracle does Event(time, callback, args, priority); seq = ...). */
static PyObject *
materialize_event(const centry *e)
{
    PyObject *prio_obj, *seq_obj, *event;
    prio_obj = PyLong_FromLong(e->prio);
    if (prio_obj == NULL)
        return NULL;
    event = PyObject_CallFunctionObjArgs(
        EventClass, e->time, e->callback, e->args, prio_obj, NULL);
    Py_DECREF(prio_obj);
    if (event == NULL)
        return NULL;
    seq_obj = PyLong_FromLongLong(e->seq);
    if (seq_obj == NULL || PyObject_SetAttr(event, s_seq, seq_obj) < 0) {
        Py_XDECREF(seq_obj);
        Py_DECREF(event);
        return NULL;
    }
    Py_DECREF(seq_obj);
    return event;
}

/* pop() -> Event | None : earliest live event. */
static PyObject *
core_pop(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    centry e;
    PyObject *event;
    int from_heap;

    if (skip_heads(self) < 0)
        return NULL;
    if (self->lane_len) {
        from_heap = (self->heap_len
                     && entry_lt(&self->heap[0],
                                 &self->lane[self->lane_head]));
    }
    else if (self->heap_len)
        from_heap = 1;
    else
        Py_RETURN_NONE;
    if (from_heap)
        heap_pop_min(self, &e);
    else
        lane_popleft(self, &e);
    self->live--;
    if (e.event == NULL) {
        event = materialize_event(&e);
        entry_clear(&e);
        return event; /* NULL propagates */
    }
    event = e.event;
    e.event = NULL;
    if (PyObject_SetAttr(event, s_uqueue, Py_None) < 0) {
        Py_DECREF(event);
        entry_clear(&e);
        return NULL;
    }
    entry_clear(&e);
    return event;
}

/* peek_time() -> time | None (tidies cancelled heads, like the oracle). */
static PyObject *
core_peek_time(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    const centry *head;
    if (skip_heads(self) < 0)
        return NULL;
    if (self->heap_len && self->lane_len)
        head = entry_lt(&self->heap[0], &self->lane[self->lane_head])
                   ? &self->heap[0]
                   : &self->lane[self->lane_head];
    else if (self->heap_len)
        head = &self->heap[0];
    else if (self->lane_len)
        head = &self->lane[self->lane_head];
    else
        Py_RETURN_NONE;
    return Py_NewRef(head->time);
}

/* _note_cancel(event=None): Event.cancel() bookkeeping. */
static PyObject *
core_note_cancel(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "_note_cancel expects (event=None)");
        return NULL;
    }
    self->live--;
    self->cancelled++;
    if (self->cancelled >= compact_min
        && (self->cancelled > self->live
            || self->cancelled >= compact_limit)) {
        if (core_compact_impl(self) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

/* _request_stop(): set the C-side stop flag (Engine.stop). */
static PyObject *
core_request_stop(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_flag = 1;
    Py_RETURN_NONE;
}

/* Accumulate engine.events_executed += executed, preserving any pending
 * exception (mirrors the oracle's try/finally). */
static int
bump_executed(PyObject *engine, long long executed)
{
    PyObject *t = NULL, *v = NULL, *tb = NULL;
    PyObject *cur, *inc, *total;
    int had_err = (PyErr_Occurred() != NULL);
    int rc = -1;

    if (had_err)
        PyErr_Fetch(&t, &v, &tb);
    cur = PyObject_GetAttr(engine, s_events_executed);
    if (cur != NULL) {
        inc = PyLong_FromLongLong(executed);
        if (inc != NULL) {
            total = PyNumber_Add(cur, inc);
            Py_DECREF(inc);
            if (total != NULL) {
                rc = PyObject_SetAttr(engine, s_events_executed, total);
                Py_DECREF(total);
            }
        }
        Py_DECREF(cur);
    }
    if (had_err) {
        PyErr_Clear(); /* drop any accounting error; keep the original */
        PyErr_Restore(t, v, tb);
        return -1;
    }
    return rc;
}

/* _drain(engine, until, max_events, stall_threshold, strict_budget):
 * the Engine.run event loop.  The Python wrapper owns the prologue
 * (reentrancy guard, flag resets) and the _running finally. */
static PyObject *
core_drain(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *engine, *until, *max_events, *stall_threshold;
    PyObject *monitor = NULL, *now_obj = NULL;
    int strict_budget, check_stall, has_budget, has_bound, use_monitor;
    long long budget = 0, stall_thresh = 0, executed = 0, stalled = 0;
    double bound = 0.0, now_key;
    int status = 0;

    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "_drain expects (engine, until, max_events, "
                        "stall_threshold, strict_budget)");
        return NULL;
    }
    engine = args[0];
    until = args[1];
    max_events = args[2];
    stall_threshold = args[3];
    strict_budget = PyObject_IsTrue(args[4]);
    if (strict_budget < 0)
        return NULL;

    self->stop_flag = 0;
    has_bound = (until != Py_None);
    if (has_bound && time_key(until, &bound) < 0)
        return NULL;
    has_budget = (max_events != Py_None);
    if (has_budget) {
        budget = PyLong_AsLongLong(max_events);
        if (budget == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            budget = (long long)PyFloat_AsDouble(max_events);
            if (PyErr_Occurred())
                return NULL;
        }
    }
    check_stall = (stall_threshold != Py_None);
    if (check_stall) {
        stall_thresh = PyLong_AsLongLong(stall_threshold);
        if (stall_thresh == -1 && PyErr_Occurred())
            return NULL;
    }
    now_obj = PyObject_GetAttr(engine, s_unow);
    if (now_obj == NULL)
        return NULL;
    if (time_key(now_obj, &now_key) < 0) {
        Py_DECREF(now_obj);
        return NULL;
    }
    Py_DECREF(now_obj);
    monitor = PyObject_GetAttr(engine, s_umonitor);
    if (monitor == NULL)
        return NULL;
    use_monitor = (monitor != Py_None);

    for (;;) {
        const centry *headp;
        centry e;
        int from_heap;
        PyObject *r;

        if (self->stop_flag)
            break;
        if (self->cancelled && skip_heads(self) < 0) {
            status = -1;
            break;
        }
        if (self->lane_len) {
            headp = &self->lane[self->lane_head];
            from_heap = (self->heap_len
                         && entry_lt(&self->heap[0], headp));
            if (from_heap)
                headp = &self->heap[0];
        }
        else if (self->heap_len) {
            headp = &self->heap[0];
            from_heap = 1;
        }
        else
            break;
        if (has_bound && headp->key > bound) {
            /* Park the clock at the bound *object* (int stays int). */
            if (PyObject_SetAttr(engine, s_unow, until) < 0)
                status = -1;
            break;
        }
        if (from_heap)
            heap_pop_min(self, &e);
        else
            lane_popleft(self, &e);
        self->live--;
        if (check_stall) {
            if (e.key > now_key)
                stalled = 0;
            else if (++stalled >= stall_thresh) {
                /* engine._stall_error raises SimulationStall with the
                 * oracle's exact message; _now has not advanced yet. */
                PyObject *st = PyLong_FromLongLong(stalled);
                PyObject *prio_obj =
                    st ? PyLong_FromLong(e.prio) : NULL;
                if (prio_obj != NULL)
                    r = PyObject_CallMethodObjArgs(
                        engine, s_stall_error, st, e.time, prio_obj,
                        e.callback, e.args,
                        e.event ? e.event : Py_None, NULL);
                else
                    r = NULL;
                Py_XDECREF(st);
                Py_XDECREF(prio_obj);
                if (r != NULL) {
                    Py_DECREF(r);
                    PyErr_SetString(PyExc_RuntimeError,
                                    "_stall_error returned without raising");
                }
                entry_clear(&e);
                status = -1;
                break;
            }
        }
        if (PyObject_SetAttr(engine, s_unow, e.time) < 0) {
            entry_clear(&e);
            status = -1;
            break;
        }
        now_key = e.key;
        if (use_monitor) {
            PyObject *prio_obj = PyLong_FromLong(e.prio);
            PyObject *seq_obj =
                prio_obj ? PyLong_FromLongLong(e.seq) : NULL;
            if (seq_obj != NULL)
                r = PyObject_CallMethodObjArgs(
                    monitor, s_on_execute, e.time, prio_obj, seq_obj,
                    e.callback, e.args, NULL);
            else
                r = NULL;
            Py_XDECREF(prio_obj);
            Py_XDECREF(seq_obj);
            if (r == NULL) {
                entry_clear(&e);
                status = -1;
                break;
            }
            Py_DECREF(r);
        }
        if (e.event != NULL
            && PyObject_SetAttr(e.event, s_uqueue, Py_None) < 0) {
            entry_clear(&e);
            status = -1;
            break;
        }
        r = PyObject_CallObject(e.callback, e.args);
        entry_clear(&e);
        if (r == NULL) {
            status = -1;
            break;
        }
        Py_DECREF(r);
        executed++;
        if (has_budget && executed >= budget) {
            if (PyObject_SetAttr(engine, s_exhausted, Py_True) < 0) {
                status = -1;
                break;
            }
            if (strict_budget) {
                r = PyObject_CallMethodObjArgs(
                    engine, s_budget_error, max_events, NULL);
                if (r != NULL) {
                    Py_DECREF(r);
                    PyErr_SetString(PyExc_RuntimeError,
                                    "_budget_error returned without raising");
                }
                status = -1;
            }
            break;
        }
    }

    Py_DECREF(monitor);
    if (bump_executed(engine, executed) < 0)
        return NULL;
    if (status < 0)
        return NULL;
    return PyObject_GetAttr(engine, s_unow);
}

/* ------------------------------------------------------------------ */
/* State capture                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
entry_as_list(const centry *e)
{
    PyObject *item = PyList_New(6);
    PyObject *prio_obj, *seq_obj;
    if (item == NULL)
        return NULL;
    prio_obj = PyLong_FromLong(e->prio);
    seq_obj = PyLong_FromLongLong(e->seq);
    if (prio_obj == NULL || seq_obj == NULL) {
        Py_XDECREF(prio_obj);
        Py_XDECREF(seq_obj);
        Py_DECREF(item);
        return NULL;
    }
    PyList_SET_ITEM(item, 0, Py_NewRef(e->time));
    PyList_SET_ITEM(item, 1, prio_obj);
    PyList_SET_ITEM(item, 2, seq_obj);
    PyList_SET_ITEM(item, 3, Py_NewRef(e->callback));
    PyList_SET_ITEM(item, 4, Py_NewRef(e->args));
    PyList_SET_ITEM(item, 5, Py_NewRef(e->event ? e->event : Py_None));
    return item;
}

/* _export() -> (heap_entries, lane_entries, seq, live, cancelled).
 * Entries are oracle-format lists [time, prio, seq, callback, args,
 * event-or-None]; the heap list is emitted in C array order, which
 * satisfies the heapq invariant under the identical comparison. */
static PyObject *
core_export(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *heap_list = NULL, *lane_list = NULL, *result = NULL;
    Py_ssize_t i;

    heap_list = PyList_New(self->heap_len);
    if (heap_list == NULL)
        goto fail;
    for (i = 0; i < self->heap_len; i++) {
        PyObject *item = entry_as_list(&self->heap[i]);
        if (item == NULL)
            goto fail;
        PyList_SET_ITEM(heap_list, i, item);
    }
    lane_list = PyList_New(self->lane_len);
    if (lane_list == NULL)
        goto fail;
    for (i = 0; i < self->lane_len; i++) {
        PyObject *item = entry_as_list(&self->lane[self->lane_head + i]);
        if (item == NULL)
            goto fail;
        PyList_SET_ITEM(lane_list, i, item);
    }
    result = Py_BuildValue("(OOLnn)", heap_list, lane_list, self->seq,
                           self->live, self->cancelled);
fail:
    Py_XDECREF(heap_list);
    Py_XDECREF(lane_list);
    return result;
}

static void
core_clear_storage(CoreObject *self)
{
    Py_ssize_t i;
    Py_ssize_t heap_len = self->heap_len;
    Py_ssize_t lane_len = self->lane_len;
    Py_ssize_t lane_head = self->lane_head;
    self->heap_len = 0;
    self->lane_len = 0;
    self->lane_head = 0;
    for (i = 0; i < heap_len; i++)
        entry_clear(&self->heap[i]);
    for (i = 0; i < lane_len; i++)
        entry_clear(&self->lane[lane_head + i]);
}

static int
load_one(CoreObject *self, PyObject *item, centry *out)
{
    PyObject *seq_fast = PySequence_Fast(
        item, "queue state entries must be 6-item sequences");
    PyObject **f;
    if (seq_fast == NULL)
        return -1;
    if (PySequence_Fast_GET_SIZE(seq_fast) != 6) {
        Py_DECREF(seq_fast);
        PyErr_SetString(PyExc_ValueError,
                        "queue state entries must have 6 fields");
        return -1;
    }
    f = PySequence_Fast_ITEMS(seq_fast);
    memset(out, 0, sizeof(*out));
    if (time_key(f[0], &out->key) < 0)
        goto fail;
    out->prio = PyLong_AsLong(f[1]);
    if (out->prio == -1 && PyErr_Occurred())
        goto fail;
    out->seq = PyLong_AsLongLong(f[2]);
    if (out->seq == -1 && PyErr_Occurred())
        goto fail;
    out->time = Py_NewRef(f[0]);
    out->callback = Py_NewRef(f[3]);
    out->args = Py_NewRef(f[4]);
    if (ensure_tuple(&out->args) < 0)
        goto fail;
    out->event = (f[5] == Py_None) ? NULL : Py_NewRef(f[5]);
    Py_DECREF(seq_fast);
    return 0;
fail:
    entry_clear(out);
    Py_DECREF(seq_fast);
    return -1;
}

/* _load(heap_entries, lane_entries, seq, live, cancelled): rebuild from
 * oracle-format state (EventQueue.__getstate__ layout).  The incoming
 * heap list is heapified defensively — a valid heapq list or a sorted
 * list both pass through unchanged in pop order. */
static PyObject *
core_load(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *heap_seq = NULL, *lane_seq = NULL;
    Py_ssize_t i, n;

    if (nargs != 5) {
        PyErr_SetString(PyExc_TypeError,
                        "_load expects (heap_entries, lane_entries, seq, "
                        "live, cancelled)");
        return NULL;
    }
    core_clear_storage(self);
    heap_seq = PySequence_Fast(args[0], "heap entries must be a sequence");
    if (heap_seq == NULL)
        goto fail;
    n = PySequence_Fast_GET_SIZE(heap_seq);
    for (i = 0; i < n; i++) {
        centry e;
        if (load_one(self, PySequence_Fast_GET_ITEM(heap_seq, i), &e) < 0)
            goto fail;
        /* Raw append; one heapify pass below. */
        if (self->heap_len == self->heap_cap) {
            Py_ssize_t cap = self->heap_cap ? self->heap_cap * 2 : 256;
            centry *buf = PyMem_Realloc(self->heap, cap * sizeof(centry));
            if (buf == NULL) {
                entry_clear(&e);
                PyErr_NoMemory();
                goto fail;
            }
            self->heap = buf;
            self->heap_cap = cap;
        }
        self->heap[self->heap_len++] = e;
    }
    for (i = self->heap_len / 2 - 1; i >= 0; i--)
        heap_sift_down(self->heap, self->heap_len, i);
    Py_CLEAR(heap_seq);

    lane_seq = PySequence_Fast(args[1], "lane entries must be a sequence");
    if (lane_seq == NULL)
        goto fail;
    n = PySequence_Fast_GET_SIZE(lane_seq);
    for (i = 0; i < n; i++) {
        centry e;
        if (load_one(self, PySequence_Fast_GET_ITEM(lane_seq, i), &e) < 0)
            goto fail;
        if (lane_push(self, &e) < 0) {
            entry_clear(&e);
            goto fail;
        }
    }
    Py_CLEAR(lane_seq);

    self->seq = PyLong_AsLongLong(args[2]);
    if (self->seq == -1 && PyErr_Occurred())
        goto fail;
    self->live = PyLong_AsSsize_t(args[3]);
    if (self->live == -1 && PyErr_Occurred())
        goto fail;
    self->cancelled = PyLong_AsSsize_t(args[4]);
    if (self->cancelled == -1 && PyErr_Occurred())
        goto fail;
    Py_RETURN_NONE;

fail:
    Py_XDECREF(heap_seq);
    Py_XDECREF(lane_seq);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Type plumbing                                                      */
/* ------------------------------------------------------------------ */

static Py_ssize_t
core_length(CoreObject *self)
{
    return self->live;
}

static int
core_traverse(CoreObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < self->heap_len; i++) {
        Py_VISIT(self->heap[i].time);
        Py_VISIT(self->heap[i].callback);
        Py_VISIT(self->heap[i].args);
        Py_VISIT(self->heap[i].event);
    }
    for (i = 0; i < self->lane_len; i++) {
        Py_VISIT(self->lane[self->lane_head + i].time);
        Py_VISIT(self->lane[self->lane_head + i].callback);
        Py_VISIT(self->lane[self->lane_head + i].args);
        Py_VISIT(self->lane[self->lane_head + i].event);
    }
    return 0;
}

static int
core_clear(CoreObject *self)
{
    core_clear_storage(self);
    return 0;
}

static void
core_dealloc(CoreObject *self)
{
    PyObject_GC_UnTrack(self);
    core_clear_storage(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->lane);
    self->heap = NULL;
    self->lane = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
core_get_live(CoreObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->live);
}

static PyObject *
core_get_cancelled(CoreObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->cancelled);
}

static PyObject *
core_get_seq(CoreObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->seq);
}

static PyGetSetDef core_getset[] = {
    {"_live", (getter)core_get_live, NULL,
     "live (non-cancelled) entry count", NULL},
    {"_cancelled", (getter)core_get_cancelled, NULL,
     "retained cancelled entry count", NULL},
    {"_seq", (getter)core_get_seq, NULL,
     "next sequence number", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef core_methods[] = {
    {"push", (PyCFunction)core_push, METH_O,
     "push(event) -> event: insert with a cancel handle, stamping seq."},
    {"push_entry", (PyCFunction)(void (*)(void))core_push_entry,
     METH_FASTCALL,
     "push_entry(time, priority, callback, args): heap, no handle."},
    {"push_lane", (PyCFunction)(void (*)(void))core_push_lane,
     METH_FASTCALL,
     "push_lane(time, callback, args, event=None): same-cycle FIFO."},
    {"_push_handle", (PyCFunction)(void (*)(void))core_push_handle,
     METH_FASTCALL,
     "Tail of Engine.schedule/schedule_at for a pre-built Event."},
    {"_post", (PyCFunction)(void (*)(void))core_post, METH_FASTCALL,
     "_post(now, delay, callback, args): Engine.post storage leg."},
    {"_post_at", (PyCFunction)(void (*)(void))core_post_at, METH_FASTCALL,
     "_post_at(now, time, callback, args): Engine.post_at storage leg."},
    {"_sched", (PyCFunction)(void (*)(void))core_sched, METH_FASTCALL,
     "_sched(now, time, callback, args): priority-0 at max(time, now)."},
    {"pop", (PyCFunction)core_pop, METH_NOARGS,
     "pop() -> Event | None: earliest live event."},
    {"peek_time", (PyCFunction)core_peek_time, METH_NOARGS,
     "peek_time() -> time | None of the earliest live event."},
    {"_note_cancel", (PyCFunction)(void (*)(void))core_note_cancel,
     METH_FASTCALL,
     "_note_cancel(event=None): cancellation bookkeeping + compaction."},
    {"_request_stop", (PyCFunction)core_request_stop, METH_NOARGS,
     "Ask the drain loop to return after the current event."},
    {"_drain", (PyCFunction)(void (*)(void))core_drain, METH_FASTCALL,
     "_drain(engine, until, max_events, stall_threshold, strict_budget)."},
    {"_export", (PyCFunction)core_export, METH_NOARGS,
     "_export() -> (heap_entries, lane_entries, seq, live, cancelled)."},
    {"_load", (PyCFunction)(void (*)(void))core_load, METH_FASTCALL,
     "_load(heap_entries, lane_entries, seq, live, cancelled)."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods core_as_sequence = {
    .sq_length = (lenfunc)core_length,
};

static PyTypeObject EventCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.EventCore",
    .tp_doc = "C event core mirroring repro.sim.event.EventQueue.",
    .tp_basicsize = sizeof(CoreObject),
    .tp_flags = (Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
                 | Py_TPFLAGS_BASETYPE),
    .tp_new = PyType_GenericNew,
    .tp_dealloc = (destructor)core_dealloc,
    .tp_traverse = (traverseproc)core_traverse,
    .tp_clear = (inquiry)core_clear,
    .tp_methods = core_methods,
    .tp_getset = core_getset,
    .tp_as_sequence = &core_as_sequence,
};

/* ------------------------------------------------------------------ */
/* Module init                                                        */
/* ------------------------------------------------------------------ */

static int
intern_strings(void)
{
#define INTERN(var, text)                                \
    do {                                                 \
        var = PyUnicode_InternFromString(text);          \
        if (var == NULL)                                 \
            return -1;                                   \
    } while (0)
    INTERN(s_time, "time");
    INTERN(s_priority, "priority");
    INTERN(s_seq, "seq");
    INTERN(s_callback, "callback");
    INTERN(s_args, "args");
    INTERN(s_cancelled, "cancelled");
    INTERN(s_uqueue, "_queue");
    INTERN(s_unow, "_now");
    INTERN(s_umonitor, "_monitor");
    INTERN(s_exhausted, "exhausted");
    INTERN(s_events_executed, "events_executed");
    INTERN(s_on_execute, "on_execute");
    INTERN(s_stall_error, "_stall_error");
    INTERN(s_budget_error, "_budget_error");
#undef INTERN
    return 0;
}

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Optional compiled event core (see repro.sim.compiled).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module = NULL, *event_mod = NULL, *engine_mod = NULL;
    PyObject *val;

    if (intern_strings() < 0)
        return NULL;
    event_mod = PyImport_ImportModule("repro.sim.event");
    if (event_mod == NULL)
        goto fail;
    EventClass = PyObject_GetAttrString(event_mod, "Event");
    if (EventClass == NULL)
        goto fail;
    val = PyObject_GetAttrString(event_mod, "_COMPACT_MIN");
    if (val == NULL)
        goto fail;
    compact_min = PyLong_AsLong(val);
    Py_DECREF(val);
    if (compact_min == -1 && PyErr_Occurred())
        goto fail;
    val = PyObject_GetAttrString(event_mod, "_COMPACT_LIMIT");
    if (val == NULL)
        goto fail;
    compact_limit = PyLong_AsLong(val);
    Py_DECREF(val);
    if (compact_limit == -1 && PyErr_Occurred())
        goto fail;
    engine_mod = PyImport_ImportModule("repro.sim.engine");
    if (engine_mod == NULL)
        goto fail;
    SimErrClass = PyObject_GetAttrString(engine_mod, "SimulationError");
    if (SimErrClass == NULL)
        goto fail;

    if (PyType_Ready(&EventCoreType) < 0)
        goto fail;
    module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        goto fail;
    if (PyModule_AddObjectRef(module, "EventCore",
                              (PyObject *)&EventCoreType) < 0) {
        Py_DECREF(module);
        module = NULL;
        goto fail;
    }
    Py_DECREF(event_mod);
    Py_DECREF(engine_mod);
    return module;

fail:
    Py_XDECREF(event_mod);
    Py_XDECREF(engine_mod);
    return NULL;
}
