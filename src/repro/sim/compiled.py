"""Optional compiled event core: the ``"compiled"`` engine backend.

This module wraps the hand-written C extension ``repro.sim._ckernel``
(built via ``make ext`` / ``python setup.py build_ext --inplace``) into
the engine backend seam defined by :mod:`repro.sim.backends`:

* :class:`CompiledQueue` subclasses the C ``EventCore`` — binary heap +
  same-cycle FIFO lane + cancellation bookkeeping live in C — and adds
  the rare-path surfaces (``snapshot`` diagnostics, pickling).
* :class:`CompiledEngine` keeps :class:`repro.sim.engine.Engine`'s
  scheduling semantics (including the exact error messages and the
  monitor hook order the sanitizer depends on) but delegates entry
  storage and the whole run loop to C: ``run()`` is a thin guard around
  ``EventCore._drain``, which executes events without re-entering the
  interpreter between callback dispatches.

The build is strictly optional.  When the extension is absent this
module still imports — :func:`is_available` returns False, backend
resolution refuses ``"compiled"`` eagerly (:func:`repro.sim.backends.
resolve_backend`), and snapshots *taken* under the compiled backend
restore onto the pure-Python heap engine with a logged warning and
byte-identical behaviour: :meth:`CompiledQueue.__getstate__` emits the
exact ``EventQueue.__getstate__`` layout, so the ``__reduce__`` hooks
below can rebuild either class from one state format.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.engine import Engine, SimulationError, SimulationStall
from repro.sim.event import Event, EventQueue, _is_live

try:  # Strictly optional: no compiler at install time -> heap oracle.
    from repro.sim import _ckernel
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _ckernel = None

logger = logging.getLogger(__name__)


def is_available() -> bool:
    """True when the compiled event core imported successfully."""
    return _ckernel is not None


def _restore_queue():
    """Unpickle target for queues captured under the compiled backend.

    Returns an empty queue; pickle then applies the captured state via
    ``__setstate__``.  On hosts without the extension the state loads
    into the pure-Python :class:`EventQueue` instead — same entry
    layout, byte-identical scheduling from there on.
    """
    if is_available():
        return CompiledQueue()
    logger.warning(
        "repro.sim._ckernel is not built on this host; restoring a "
        "compiled-backend event queue onto the pure-Python heap oracle"
    )
    return EventQueue.__new__(EventQueue)


def _restore_engine():
    """Unpickle target for engines captured under the compiled backend."""
    if is_available():
        return CompiledEngine.__new__(CompiledEngine)
    logger.warning(
        "repro.sim._ckernel is not built on this host; restoring a "
        "compiled-backend engine snapshot onto the pure-Python heap engine"
    )
    return Engine.__new__(Engine)


if _ckernel is not None:

    class CompiledQueue(_ckernel.EventCore):
        """C event core plus the oracle's diagnostic/pickling surfaces."""

        __slots__ = ()

        def snapshot(self, limit: int = 20) -> list:
            """The earliest ``limit`` live events, in firing order."""
            heap_entries, lane_entries, _seq, _live, _cancelled = self._export()
            entries = [e for e in heap_entries if _is_live(e)]
            entries.extend(e for e in lane_entries if _is_live(e))
            entries.sort()
            out = []
            for entry in entries[:limit]:
                event = entry[5]
                if event is None:
                    event = Event(entry[0], entry[3], entry[4], entry[1])
                    event.seq = entry[2]
                out.append(event)
            return out

        def __getstate__(self) -> dict:
            """Capture in the exact ``EventQueue.__getstate__`` layout.

            One state format for every backend is what lets a snapshot
            taken under ``compiled`` restore on an extension-less host:
            these keys drop straight into ``EventQueue.__dict__``.  The
            heap entries are emitted in C array order, which satisfies
            the ``heapq`` invariant under the identical comparison.
            """
            heap_entries, lane_entries, seq, live, cancelled = self._export()
            return {
                "_heap": heap_entries,
                "_lane": deque(lane_entries),
                "_seq": seq,
                "_live": live,
                "_cancelled": cancelled,
                "_pool": [],
            }

        def __setstate__(self, state: dict) -> None:
            # Live events in the state already reference this queue via
            # the pickle memo; cancelled ones carry _queue=None.  _load
            # must not (and does not) touch event._queue.
            self._load(
                list(state["_heap"]),
                list(state["_lane"]),
                state["_seq"],
                state["_live"],
                state["_cancelled"],
            )

        def __reduce__(self):
            # Three-tuple form: pickle memoizes the empty queue before
            # unpickling the state, so Event._queue back-references in
            # the entries resolve to the new queue object.
            return (_restore_queue, (), self.__getstate__())

    class CompiledEngine(Engine):
        """Engine whose queue and run loop live in the C extension.

        The scheduling surfaces replicate :class:`Engine` semantics
        exactly — same validation errors (sequence numbers are consumed
        even by rejected posts, like the oracle), same monitor hook
        order — then hand storage to C.  ``run()`` delegates the whole
        drain loop; ``_stall_error``/``_budget_error`` are called back
        from C so the watchdog and budget exceptions carry the oracle's
        byte-exact messages and diagnostics.
        """

        def __init__(self) -> None:
            super().__init__()
            self._queue = CompiledQueue()

        def __reduce__(self):
            # Engine.__getstate__ enforces the pause-only contract (and
            # drops the monitor); _restore_engine degrades to the heap
            # Engine when the extension is absent on the restore host.
            return (_restore_engine, (), self.__getstate__())

        def schedule(
            self,
            delay: float,
            callback: Callable[..., Any],
            *args: Any,
            priority: int = 0,
        ) -> Event:
            """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})"
                )
            monitor = self._monitor
            if monitor is not None:
                monitor.on_schedule(callback)
            event = Event.__new__(Event)
            event.time = time = self._now + delay
            event.priority = priority
            event.callback = callback
            event.args = args
            event.cancelled = False
            # C stamps seq and _queue and stores the entry.
            self._queue._push_handle(
                time, priority, callback, args, event,
                delay == 0 and priority == 0,
            )
            return event

        def schedule_at(
            self,
            time: float,
            callback: Callable[..., Any],
            *args: Any,
            priority: int = 0,
        ) -> Event:
            """Schedule ``callback(*args)`` to run at absolute time ``time``."""
            now = self._now
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time}, current time is {now}"
                )
            monitor = self._monitor
            if monitor is not None:
                monitor.on_schedule(callback)
            event = Event.__new__(Event)
            event.time = time
            event.priority = priority
            event.callback = callback
            event.args = args
            event.cancelled = False
            self._queue._push_handle(
                time, priority, callback, args, event,
                time == now and priority == 0,
            )
            return event

        def post(
            self, delay: float, callback: Callable[..., Any], *args: Any
        ) -> None:
            """Hot-path :meth:`schedule`: priority 0, no cancel handle."""
            monitor = self._monitor
            if monitor is not None:
                monitor.on_schedule(callback)
            self._queue._post(self._now, delay, callback, args)

        def post_at(
            self, time: float, callback: Callable[..., Any], *args: Any
        ) -> None:
            """Hot-path :meth:`schedule_at`: priority 0, no cancel handle."""
            monitor = self._monitor
            if monitor is not None:
                monitor.on_schedule(callback)
            self._queue._post_at(self._now, time, callback, args)

        def stop(self) -> None:
            """Request that :meth:`run` return after the current event."""
            self._stopped = True
            self._queue._request_stop()

        def run(
            self,
            until: Optional[float] = None,
            max_events: Optional[int] = None,
            stall_threshold: Optional[int] = None,
            strict_budget: bool = False,
        ) -> float:
            """Run events until the queue drains, ``until``, or stop()."""
            if self._running:
                raise SimulationError("engine is not reentrant")
            self._running = True
            self._stopped = False
            self.exhausted = False
            try:
                # C owns the loop: head selection, bound parking, stall
                # watchdog, monitor dispatch, budget accounting — and it
                # accumulates events_executed even when an exception
                # unwinds, mirroring the oracle's try/finally.
                return self._queue._drain(
                    self, until, max_events, stall_threshold, strict_budget
                )
            finally:
                self._running = False

        def _stall_error(
            self, stalled_events, time, priority, callback, args, event
        ):
            """Raise the oracle's livelock error (called back from C)."""
            if event is None:
                event = Event(time, callback, args, priority)
            raise SimulationStall(
                f"no-progress livelock: {stalled_events} consecutive "
                f"events at t={self._now} without the clock advancing",
                self._format_event(event, " <- executing")
                + ("\n" + self.dump_pending() if len(self._queue) else ""),
            )

        def _budget_error(self, max_events):
            """Raise the oracle's budget error (called back from C)."""
            raise SimulationStall(
                f"event budget exhausted ({max_events} events) "
                f"at t={self._now} with "
                f"{self.pending_events()} events pending",
                self.dump_pending(),
            )

else:  # pragma: no cover - extension-less hosts
    CompiledQueue = None  # type: ignore[assignment]
    CompiledEngine = None  # type: ignore[assignment]
