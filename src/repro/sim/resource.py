"""Shared-resource queuing primitives.

These model hardware blocks whose service capacity is the bottleneck that
Griffin's mechanisms manipulate:

* :class:`ThroughputResource` — a serializing pipe with a byte/cycle rate
  (inter-GPU link direction, DRAM channel, RDMA engine).  Transfers queue
  behind one another; latency is added on top of serialization delay.
* :class:`SlotResource` — ``k`` identical servers with caller-supplied
  per-job service time (the IOMMU's eight page-table walkers).

Both use "next-free-time" bookkeeping: an acquisition at time ``t`` for a
job of duration ``d`` begins at ``max(t, next_free)`` and the resource's
availability advances accordingly.  This is the classic analytic queuing
approximation used by transaction-level simulators; it preserves
serialization and congestion while avoiding per-cycle simulation.
"""

from __future__ import annotations

import heapq


class ThroughputResource:
    """A serializing resource with finite bandwidth.

    Attributes:
        bytes_per_cycle: Service rate.
        busy_until: Time at which the pipe next becomes free.
        total_bytes: Cumulative bytes serviced (for utilization stats).
        total_jobs: Number of transfers serviced.
    """

    __slots__ = ("name", "bytes_per_cycle", "busy_until", "total_bytes", "total_jobs", "total_wait")

    def __init__(self, name: str, bytes_per_cycle: float) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.busy_until = 0.0
        self.total_bytes = 0
        self.total_jobs = 0
        self.total_wait = 0.0

    def acquire(self, now: float, size_bytes: float) -> float:
        """Serialize a transfer of ``size_bytes`` starting no earlier than now.

        Returns the time at which the last byte leaves the pipe.
        """
        start = now if now > self.busy_until else self.busy_until
        self.total_wait += start - now
        duration = size_bytes / self.bytes_per_cycle
        finish = start + duration
        self.busy_until = finish
        self.total_bytes += size_bytes
        self.total_jobs += 1
        return finish

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` cycles the pipe spent transferring."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.total_bytes / self.bytes_per_cycle) / elapsed)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_bytes = 0
        self.total_jobs = 0
        self.total_wait = 0.0


class SlotResource:
    """``k`` identical servers, each serving one job at a time.

    Models the IOMMU's multithreaded page-table walkers: a translation that
    arrives when all walkers are busy waits for the earliest walker to free.
    """

    __slots__ = ("name", "num_slots", "_free_times", "total_jobs", "total_wait")

    def __init__(self, name: str, num_slots: int) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        self.name = name
        self.num_slots = num_slots
        self._free_times = [0.0] * num_slots
        heapq.heapify(self._free_times)
        self.total_jobs = 0
        self.total_wait = 0.0

    def acquire(self, now: float, service_time: float) -> float:
        """Occupy the earliest-free server for ``service_time`` cycles.

        Returns the completion time of the job.
        """
        earliest = heapq.heappop(self._free_times)
        start = now if now > earliest else earliest
        self.total_wait += start - now
        finish = start + service_time
        heapq.heappush(self._free_times, finish)
        self.total_jobs += 1
        return finish

    def earliest_free(self) -> float:
        """Time at which at least one server is free."""
        return self._free_times[0]

    def all_free_by(self) -> float:
        """Time at which every server is free (used by CPMS batching)."""
        return max(self._free_times)

    def reset(self) -> None:
        self._free_times = [0.0] * self.num_slots
        heapq.heapify(self._free_times)
        self.total_jobs = 0
        self.total_wait = 0.0
