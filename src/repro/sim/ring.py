"""The event-ring backend: structured-array slots + dense handler table.

:class:`EventRing` is a drop-in alternative to
:class:`repro.sim.event.EventQueue` selected via
``SimConfig.engine_backend = "ring"`` (see :mod:`repro.config.system`).
The pure-Python heap queue stays the default and is the parity oracle:
both backends must pop events in exactly the same ``(time, priority,
seq)`` order, invoke the same sanitizer hooks, and serialize to the same
``RunResult`` bytes — the golden/parity suites and the hypothesis suite
in ``tests/property/test_event_ring.py`` pin this.

Layout
------

Scheduling-critical per-event fields live in one numpy structured array
(``time f8, prio i8, seq i8, handler i8, cancelled bool``) indexed by
slot.  Callback *objects* are interned once into a dense handler table
(``_handlers``) and each slot stores only the handler id; ``args`` tuples
and optional :class:`~repro.sim.event.Event` cancel handles sit in plain
per-slot lists.  Free slots are recycled through a free list, so
steady-state scheduling allocates nothing.

Ordering uses a bucket calendar instead of one global heap: a dict maps
each distinct timestamp to a bucket ``[fifo, pri, pos]`` where ``fifo``
is the slot-index list of priority-0 entries in push (= seq) order,
``pri`` is a lazily created ``(priority, seq, slot)`` heap for the rare
non-zero priorities, and ``pos`` is the consumed-prefix cursor.  A small
heap of distinct times orders the buckets.  Within one timestamp the
global ``(priority, seq)`` minimum among *pending* entries is always
either the FIFO head (priority 0) or the ``pri`` head, so the pop order
matches the oracle exactly — including entries pushed into the current
timestamp mid-drain, and the sanitizer's past-time corruption drills
(a push below the draining timestamp preempts the current bucket, just
as a smaller heap key would).

Why this shape: zero-delay chains and clamped access-path legs — the
hot path — become list appends and indexed reads with no heap
discipline at all; and a snapshot serializes each distinct handler
once (the table) instead of once per pending event, which shrinks the
prefix snapshots the sweep ships to workers.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.event import _COMPACT_LIMIT, _COMPACT_MIN, Event
from repro.sim.engine import Engine, SimulationError, SimulationStall

_RING_CAP = 1024  # initial slot capacity; doubles on demand

_SLOT_DTYPE = np.dtype([
    ("time", np.float64),
    ("prio", np.int64),
    ("seq", np.int64),
    ("handler", np.int64),
    ("cancelled", np.bool_),
])

# The backend registry grew out of this module when the third backend
# landed; it now lives in repro.sim.backends.  Re-exported here because
# existing callers and tests import the registry from repro.sim.ring.
from repro.sim.backends import (  # noqa: F401  (re-exports)
    BACKEND_ENV,
    ENGINE_BACKENDS,
    ConfigError,
    build_engine,
    resolve_backend,
)


class EventRing:
    """Structured-array event store with :class:`EventQueue` semantics."""

    def __init__(self) -> None:
        self._init_storage(_RING_CAP)
        self._seq = 0
        self._live = 0
        self._cancelled = 0

    def _init_storage(self, cap: int) -> None:
        self._slots = np.zeros(cap, dtype=_SLOT_DTYPE)
        self._time = self._slots["time"]
        self._prio = self._slots["prio"]
        self._seqs = self._slots["seq"]
        self._handler = self._slots["handler"]
        self._cflag = self._slots["cancelled"]
        self._args: list = [None] * cap
        self._events: list = [None] * cap
        # Popping yields 0, 1, 2, ... while the ring is cold.
        self._free: list[int] = list(range(cap - 1, -1, -1))
        self._handlers: list = []
        self._hids: dict = {}
        self._hids_by_id: dict[int, int] = {}
        # time -> [fifo slot list (prio 0, seq order), pri heap or None,
        #          consumed-prefix cursor]
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        # Retired bucket triples, recycled by _place: sparse schedules
        # (every event at a distinct time) create and retire one bucket
        # per event, so reusing the two list allocations matters.
        self._bucket_pool: list[list] = []
        # The fifo list the engine loop is currently draining (it holds
        # a cursor in a local); compaction must not reorder it.
        self._active_fifo: Optional[list] = None

    # ------------------------------------------------------------------
    # Slot and handler plumbing
    # ------------------------------------------------------------------

    def _grow(self) -> None:
        """Double capacity.  Per-slot lists grow in place so any aliases
        (the engine loop caches them) stay valid; only the numpy columns
        are re-derived, and every reader fetches those through ``self``.
        """
        old = self._slots
        cap = len(old)
        slots = np.zeros(cap * 2, dtype=_SLOT_DTYPE)
        slots[:cap] = old
        self._slots = slots
        self._time = slots["time"]
        self._prio = slots["prio"]
        self._seqs = slots["seq"]
        self._handler = slots["handler"]
        self._cflag = slots["cancelled"]
        self._args.extend([None] * cap)
        self._events.extend([None] * cap)
        self._free.extend(range(cap * 2 - 1, cap - 1, -1))

    def _intern(self, callback) -> int:
        """Dense handler id for ``callback`` (interned by equality when
        hashable, by identity otherwise; the table keeps it alive)."""
        hids = self._hids
        try:
            hid = hids.get(callback)
        except TypeError:  # unhashable callable
            key = id(callback)
            by_id = self._hids_by_id
            hid = by_id.get(key)
            if hid is None:
                hid = len(self._handlers)
                self._handlers.append(callback)
                by_id[key] = hid
            return hid
        if hid is None:
            hid = len(self._handlers)
            self._handlers.append(callback)
            hids[callback] = hid
        return hid

    def _place(self, time, priority, callback, args, event) -> None:
        """Allocate a slot and route it into the bucket calendar."""
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if not free:
            self._grow()
            free = self._free
        idx = free.pop()
        # Inlined _intern fast path: repeat handlers (the common case)
        # resolve with one dict probe; misses and unhashable callables
        # take the full method.
        try:
            hid = self._hids.get(callback)
        except TypeError:
            hid = None
        if hid is None:
            hid = self._intern(callback)
        self._time[idx] = time
        self._seqs[idx] = seq
        self._handler[idx] = hid
        self._args[idx] = args
        if event is not None:
            event.seq = seq
            event._queue = self
            event._ridx = idx
            self._events[idx] = event
        bucket = self._buckets.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else [[], None, 0]
            self._buckets[time] = bucket
            _heappush(self._times, time)
        if priority == 0:
            bucket[0].append(idx)
        else:
            self._prio[idx] = priority
            pri = bucket[1]
            if pri is None:
                bucket[1] = pri = []
            _heappush(pri, (priority, seq, idx))
        self._live += 1

    def _release(self, idx: int) -> None:
        """Return an executed slot to the free list."""
        self._args[idx] = None
        self._events[idx] = None
        self._free.append(idx)

    def _release_cancelled(self, idx: int) -> None:
        """Return a cancelled slot (clears the flag column; live count
        was already decremented by :meth:`_note_cancel`)."""
        self._cflag[idx] = False
        self._args[idx] = None
        self._events[idx] = None
        self._free.append(idx)
        self._cancelled -= 1

    def _retire_bucket(self, time, bucket) -> None:
        """Drop an exhausted bucket (``time`` must head the times heap)
        and recycle its triple through the bucket pool."""
        del self._buckets[time]
        _heappop(self._times)
        bucket[0].clear()
        bucket[1] = None
        bucket[2] = 0
        self._bucket_pool.append(bucket)

    # ------------------------------------------------------------------
    # Scheduling (EventQueue-compatible surface)
    # ------------------------------------------------------------------

    def push(self, event: Event) -> Event:
        """Insert ``event`` and stamp its sequence number."""
        self._place(event.time, event.priority, event.callback,
                    event.args, event)
        return event

    def push_entry(self, time, priority, callback, args) -> None:
        """Schedule a callback with no cancel handle (hot path)."""
        self._place(time, priority, callback, args, None)

    def push_lane(self, time, callback, args,
                  event: Optional[Event] = None) -> None:
        """Priority-0 push at the current engine time (oracle-compatible
        name; the ring routes it through the same bucket calendar)."""
        self._place(time, 0, callback, args, event)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------

    def _note_cancel(self, event: Optional[Event] = None) -> None:
        """A live event was cancelled (called from :meth:`Event.cancel`)."""
        self._live -= 1
        if event is not None:
            self._cflag[event._ridx] = True
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled >= _COMPACT_MIN and (
            cancelled > self._live or cancelled >= _COMPACT_LIMIT
        ):
            self._compact()

    def _compact(self) -> None:
        """Release cancelled slots from every bucket.

        The fifo the engine loop is currently draining is skipped (the
        loop holds a position cursor; its cancelled entries are cheap to
        skip at pop time anyway).  Partially consumed fifos are filtered
        only past their cursor, and ``pri`` heaps are rebuilt — the loop
        re-reads ``bucket[1]`` every iteration, so replacing it is safe.
        """
        active = self._active_fifo
        events = self._events
        for bucket in self._buckets.values():
            fifo = bucket[0]
            if fifo is not active:
                pos = bucket[2]
                keep = []
                for idx in fifo[pos:]:
                    ev = events[idx]
                    if ev is not None and ev.cancelled:
                        self._release_cancelled(idx)
                    else:
                        keep.append(idx)
                fifo[pos:] = keep
            pri = bucket[1]
            if pri:
                keep = []
                dropped = False
                for entry in pri:
                    ev = events[entry[2]]
                    if ev is not None and ev.cancelled:
                        self._prio[entry[2]] = 0
                        self._release_cancelled(entry[2])
                        dropped = True
                    else:
                        keep.append(entry)
                if dropped:
                    heapq.heapify(keep)
                    bucket[1] = keep
        # Empty buckets stay registered; the drain loop discards them
        # when their timestamp is reached (removing a middle element of
        # the times heap would cost more than carrying it).

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def _pop_bucket(self, bucket: list):
        """Earliest live ``(priority, seq, slot)`` within ``bucket``.

        Releases cancelled entries encountered on the way; returns None
        when the bucket is exhausted.  ``pri`` entries always have
        non-zero priority, so the FIFO head wins unless a negative
        priority is pending.
        """
        fifo, pri, pos = bucket[0], bucket[1], bucket[2]
        events = self._events
        fifo_len = len(fifo)
        head = -1
        while pos < fifo_len:
            idx = fifo[pos]
            ev = events[idx]
            if ev is not None and ev.cancelled:
                pos += 1
                self._release_cancelled(idx)
            else:
                head = idx
                break
        bucket[2] = pos
        while pri:
            entry = pri[0]
            ev = events[entry[2]]
            if ev is not None and ev.cancelled:
                _heappop(pri)
                self._prio[entry[2]] = 0
                self._release_cancelled(entry[2])
            else:
                break
        if head >= 0:
            if pri and pri[0][0] < 0:
                priority, seq, idx = _heappop(pri)
                self._prio[idx] = 0
                return priority, seq, idx
            bucket[2] = pos + 1
            return 0, int(self._seqs[head]), head
        if pri:
            priority, seq, idx = _heappop(pri)
            self._prio[idx] = 0
            return priority, seq, idx
        return None

    def _next_live(self):
        """Remove and return the earliest live ``(time, prio, seq, slot)``,
        or None when drained.  Discards exhausted buckets."""
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            nxt = self._pop_bucket(bucket)
            if nxt is None:
                self._retire_bucket(time, bucket)
                continue
            priority, seq, idx = nxt
            return time, priority, seq, idx
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        nxt = self._next_live()
        if nxt is None:
            return None
        time, priority, seq, idx = nxt
        self._live -= 1
        event = self._events[idx]
        if event is None:
            event = Event(time, self._handlers[self._handler[idx]],
                          self._args[idx], priority)
            event.seq = seq
        else:
            event._queue = None
        self._release(idx)
        return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or None.

        Like the oracle's, this tidies cancelled heads (and here, empty
        buckets) as a side effect; pop order is unaffected.
        """
        times = self._times
        buckets = self._buckets
        events = self._events
        while times:
            time = times[0]
            bucket = buckets[time]
            fifo, pri, pos = bucket[0], bucket[1], bucket[2]
            fifo_len = len(fifo)
            while pos < fifo_len:
                idx = fifo[pos]
                ev = events[idx]
                if ev is not None and ev.cancelled:
                    pos += 1
                    self._release_cancelled(idx)
                else:
                    break
            bucket[2] = pos
            while pri:
                entry = pri[0]
                ev = events[entry[2]]
                if ev is not None and ev.cancelled:
                    _heappop(pri)
                    self._prio[entry[2]] = 0
                    self._release_cancelled(entry[2])
                else:
                    break
            if pos < fifo_len or pri:
                return time
            if fifo is self._active_fifo:
                # Mid-drain peek on an exhausted current bucket: the
                # engine loop owns its retirement (it will `del` the
                # bucket and pop the times heap itself), so scan the
                # other buckets non-destructively instead.
                return self._peek_beyond(time)
            self._retire_bucket(time, bucket)
        return None

    def _peek_beyond(self, active_time: float) -> Optional[float]:
        """Earliest live time excluding ``active_time`` (rare slow path)."""
        events = self._events
        best = None
        for time, bucket in self._buckets.items():
            if time == active_time or (best is not None and time >= best):
                continue
            fifo, pri, pos = bucket[0], bucket[1], bucket[2]
            live = any(
                events[idx] is None or not events[idx].cancelled
                for idx in fifo[pos:]
            ) or (pri and any(
                events[entry[2]] is None or not events[entry[2]].cancelled
                for entry in pri
            ))
            if live:
                best = time
        return best

    def snapshot(self, limit: int = 20) -> list[Event]:
        """The earliest ``limit`` live events, in firing order."""
        out = []
        for time, priority, seq, callback, args, event in self._iter_live():
            if event is None:
                event = Event(time, callback, args, priority)
                event.seq = seq
            out.append(event)
        out.sort()
        return out[:limit]

    def _iter_live(self):
        """Yield ``(time, prio, seq, callback, args, event)`` for every
        live entry, bucket-by-bucket in time order."""
        events = self._events
        args = self._args
        handlers = self._handlers
        handler = self._handler
        seqs = self._seqs
        for time in sorted(self._buckets):
            fifo, pri, pos = self._buckets[time]
            for idx in fifo[pos:]:
                ev = events[idx]
                if ev is not None and ev.cancelled:
                    continue
                yield (time, 0, int(seqs[idx]),
                       handlers[handler[idx]], args[idx], ev)
            if pri:
                for priority, seq, idx in sorted(pri):
                    ev = events[idx]
                    if ev is not None and ev.cancelled:
                        continue
                    yield (time, int(priority), int(seq),
                           handlers[handler[idx]], args[idx], ev)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # State capture (snapshot/fork support)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Serialize live entries only, in firing order.

        Entries reference their callback *through the handler table*, so
        pickle's memo writes each distinct handler once no matter how
        many pending events share it — snapshots stay proportional to
        the live event count, not to slot capacity.  Cancelled entries
        are dropped (they could never be observed again), mirroring how
        the oracle drops its free pool.
        """
        return {
            "entries": list(self._iter_live()),
            "seq": self._seq,
        }

    def __setstate__(self, state: dict) -> None:
        entries = state["entries"]
        cap = _RING_CAP
        while cap < len(entries):
            cap *= 2
        self._init_storage(cap)
        self._live = 0
        self._cancelled = 0
        # Re-place each entry with its *recorded* sequence number —
        # entries within one bucket arrive in seq order, so the rebuilt
        # FIFOs are sorted by construction, like the originals.
        for time, priority, seq, callback, args, event in entries:
            idx = self._free.pop()
            self._time[idx] = time
            self._seqs[idx] = seq
            self._handler[idx] = self._intern(callback)
            self._args[idx] = args
            if event is not None:
                event.seq = seq
                event._queue = self
                event._ridx = idx
                self._events[idx] = event
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = bucket = [[], None, 0]
                _heappush(self._times, time)
            if priority == 0:
                bucket[0].append(idx)
            else:
                self._prio[idx] = priority
                pri = bucket[1]
                if pri is None:
                    bucket[1] = pri = []
                _heappush(pri, (priority, seq, idx))
            self._live += 1
        self._seq = state["seq"]


class RingEngine(Engine):
    """:class:`Engine` running on the :class:`EventRing` backend.

    Scheduling surfaces, sanitizer hooks, stall watchdog, event budget,
    and pickling rules are semantically identical to the heap engine;
    only the event store and the run loop differ.
    """

    def __init__(self) -> None:
        super().__init__()
        self._queue = EventRing()

    # -- scheduling ----------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        event = Event.__new__(Event)
        event.time = time = self._now + delay
        event.priority = priority
        event.callback = callback
        event.args = args
        event.cancelled = False
        self._queue._place(time, priority, callback, args, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.callback = callback
        event.args = args
        event.cancelled = False
        self._queue._place(time, priority, callback, args, event)
        return event

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Hot-path :meth:`schedule`: priority 0, no cancel handle.

        The slot placement is inlined (mirroring how the heap engine
        inlines its entry push) — one call frame on the hottest path.
        """
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        if delay <= 0:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})"
                )
            time = self._now
        else:
            time = self._now + delay
        ring = self._queue
        seq = ring._seq
        ring._seq = seq + 1
        free = ring._free
        if not free:
            ring._grow()
            free = ring._free
        idx = free.pop()
        try:
            hid = ring._hids.get(callback)
        except TypeError:
            hid = None
        if hid is None:
            hid = ring._intern(callback)
        ring._time[idx] = time
        ring._seqs[idx] = seq
        ring._handler[idx] = hid
        ring._args[idx] = args
        bucket = ring._buckets.get(time)
        if bucket is None:
            pool = ring._bucket_pool
            bucket = pool.pop() if pool else [[], None, 0]
            ring._buckets[time] = bucket
            _heappush(ring._times, time)
        bucket[0].append(idx)
        ring._live += 1

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Hot-path :meth:`schedule_at`: priority 0, no cancel handle."""
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        now = self._now
        if time <= now:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time}, current time is {now}"
                )
            time = now
        ring = self._queue
        seq = ring._seq
        ring._seq = seq + 1
        free = ring._free
        if not free:
            ring._grow()
            free = ring._free
        idx = free.pop()
        try:
            hid = ring._hids.get(callback)
        except TypeError:
            hid = None
        if hid is None:
            hid = ring._intern(callback)
        ring._time[idx] = time
        ring._seqs[idx] = seq
        ring._handler[idx] = hid
        ring._args[idx] = args
        bucket = ring._buckets.get(time)
        if bucket is None:
            pool = ring._bucket_pool
            bucket = pool.pop() if pool else [[], None, 0]
            ring._buckets[time] = bucket
            _heappush(ring._times, time)
        bucket[0].append(idx)
        ring._live += 1

    # -- run loop ------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stall_threshold: Optional[int] = None,
        strict_budget: bool = False,
    ) -> float:
        """Ring variant of :meth:`Engine.run`; same observable contract."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        self.exhausted = False
        executed = 0
        stalled_events = 0
        ring = self._queue
        times = ring._times
        buckets = ring._buckets
        events = ring._events
        argsl = ring._args
        free = ring._free
        handlers = ring._handlers
        bucket_pool = ring._bucket_pool
        # Numpy columns are re-derived on _grow(), so the cached views
        # are refreshed whenever the backing array's identity changes.
        slots_ref = ring._slots
        hcol = ring._handler
        scol = ring._seqs
        heappop = _heappop
        monitor = self._monitor
        check_stall = stall_threshold is not None
        bound = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        # Current bucket drain state.  ``time``'s bucket stays at the top
        # of the times heap while draining; a push below it (the
        # sanitizer's corruption drill) surfaces as times[0] < time.
        bucket = None
        fifo = None
        pos = 0
        time = 0.0
        try:
            while not self._stopped:
                if bucket is None:
                    if not times:
                        break
                    time = times[0]
                    if time > bound:
                        self._now = bound
                        break
                    bucket = buckets[time]
                    fifo = bucket[0]
                    pos = bucket[2]
                    ring._active_fifo = fifo
                elif times[0] < time:
                    # A smaller timestamp appeared mid-drain; preempt.
                    bucket[2] = pos
                    ring._active_fifo = None
                    bucket = None
                    continue
                pri = bucket[1]
                if pri:
                    # Rare: non-zero priorities share this timestamp.
                    bucket[2] = pos
                    nxt = ring._pop_bucket(bucket)
                    pos = bucket[2]
                    if nxt is None:
                        ring._active_fifo = None
                        del buckets[time]
                        heappop(times)
                        fifo.clear()
                        bucket[1] = None
                        bucket[2] = 0
                        bucket_pool.append(bucket)
                        bucket = None
                        continue
                    priority, seq, idx = nxt
                    event = events[idx]
                else:
                    if pos >= len(fifo):
                        ring._active_fifo = None
                        del buckets[time]
                        heappop(times)
                        fifo.clear()
                        bucket[2] = 0
                        bucket_pool.append(bucket)
                        bucket = None
                        continue
                    idx = fifo[pos]
                    pos += 1
                    event = events[idx]
                    if event is not None and event.cancelled:
                        ring._release_cancelled(idx)
                        continue
                    if pos >= len(fifo):
                        # Last pending entry at this timestamp: retire
                        # the bucket *before* executing, skipping the
                        # extra discover-exhausted pass.  A same-time
                        # push from the callback recreates the bucket
                        # and drains after this event — oracle order.
                        ring._active_fifo = None
                        del buckets[time]
                        heappop(times)
                        fifo.clear()
                        bucket[2] = 0
                        bucket_pool.append(bucket)
                        bucket = None
                    priority = 0
                    seq = -1  # lazily materialized when observed
                ring._live -= 1
                if check_stall:
                    if time > self._now:
                        stalled_events = 0
                    else:
                        stalled_events += 1
                        if stalled_events >= stall_threshold:
                            if event is None:
                                event = Event(
                                    time, handlers[hcol[idx]],
                                    argsl[idx], priority,
                                )
                            raise SimulationStall(
                                f"no-progress livelock: {stalled_events} "
                                f"consecutive events at t={self._now} "
                                "without the clock advancing",
                                self._format_event(event, " <- executing")
                                + ("\n" + self.dump_pending()
                                   if ring._live else ""),
                            )
                self._now = time
                callback = handlers[hcol[idx]]
                args = argsl[idx]
                if monitor is not None:
                    if seq < 0:
                        seq = int(scol[idx])
                    monitor.on_execute(time, priority, seq, callback, args)
                if event is not None:
                    event._queue = None
                argsl[idx] = None
                events[idx] = None
                free.append(idx)
                callback(*args)
                if ring._slots is not slots_ref:  # _grow() ran in the callback
                    slots_ref = ring._slots
                    hcol = ring._handler
                    scol = ring._seqs
                executed += 1
                if executed >= budget:
                    self.exhausted = True
                    if strict_budget:
                        raise SimulationStall(
                            f"event budget exhausted ({max_events} events) "
                            f"at t={self._now} with "
                            f"{self.pending_events()} events pending",
                            self.dump_pending(),
                        )
                    break
        finally:
            if bucket is not None:
                bucket[2] = pos
            ring._active_fifo = None
            self.events_executed += executed
            self._running = False
        return self._now
