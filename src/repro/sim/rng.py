"""Deterministic random-number streams.

Every stochastic decision in the simulator draws from a stream derived from
``(base_seed, *labels)`` so that runs are reproducible and independent
subsystems do not perturb one another's sequences when code paths change.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream_seed(base_seed: int, *labels: object) -> int:
    """Derive a 64-bit seed from a base seed and a label path."""
    text = f"{base_seed}|" + "|".join(str(label) for label in labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Create an independent numpy Generator for a labelled stream."""
    return np.random.default_rng(stream_seed(base_seed, *labels))


def capture_rng_state(rng: np.random.Generator) -> dict:
    """The stream's exact position, as plain picklable data.

    numpy Generators already pickle with their full bit-generator state —
    a restored snapshot continues every stream where the original left
    off.  These helpers exist so tests (and diagnostics) can assert that
    without comparing whole Generator objects.
    """
    return rng.bit_generator.state


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Rewind/advance ``rng`` to a state captured by ``capture_rng_state``."""
    rng.bit_generator.state = state
