"""Event and event-queue primitives.

Events are ordered by ``(time, priority, seq)``.  ``priority`` breaks ties at
identical timestamps (lower runs first) and ``seq`` guarantees FIFO order —
and therefore determinism — among events with equal time and priority.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time (cycles) at which the event fires.
        priority: Tie-breaker at equal times; lower fires first.
        seq: Monotonic sequence number assigned by the queue.
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to the callback.
        cancelled: When True the event is skipped at fire time.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = -1
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time}, prio={self.priority}, cb={name})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> Event:
        """Insert ``event`` and stamp its sequence number."""
        event.seq = next(self._counter)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def snapshot(self, limit: int = 20) -> list[Event]:
        """The earliest ``limit`` live events, in firing order (diagnostics)."""
        live = [e for e in self._heap if not e.cancelled]
        live.sort()
        return live[:limit]

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
