"""Event and event-queue primitives.

Events are ordered by ``(time, priority, seq)``.  ``priority`` breaks ties at
identical timestamps (lower runs first) and ``seq`` guarantees FIFO order —
and therefore determinism — among events with equal time and priority.

Internally the queue stores plain list entries
``[time, priority, seq, callback, args, event]`` so ordering uses C-level
list comparison (``seq`` is unique, so a comparison never reaches the
callback field).  The ``event`` slot is the optional cancel handle: it is
only allocated when the caller asked for one (:meth:`EventQueue.push`,
``Engine.schedule``); the engine's no-handle ``post`` paths leave it
``None``.  Entry lists are recycled through a bounded free pool, which
keeps steady-state scheduling allocation-free.

Two structures hold pending entries:

* a heap, for arbitrary future times;
* a same-cycle FIFO lane (deque), fed only with priority-0 entries stamped
  at the *current* simulation time.  The clock never moves backwards, so
  lane entries are appended in non-decreasing key order and the lane stays
  sorted by construction; the true next event is whichever of the two
  heads compares smaller.  This gives zero-delay chains (the common case
  in the access fast path) O(1) scheduling instead of O(log n).

Cancellation keeps exact semantics: a cancelled event is skipped at pop
time.  A live-entry counter updated on push/pop/cancel makes ``len`` and
``bool`` O(1), and the backing stores are compacted in place once
cancelled entries outnumber live ones (in place, so the engine's run-loop
aliases stay valid).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

_POOL_MAX = 4096
_COMPACT_MIN = 16
# Absolute ceiling on retained cancelled entries.  The relative trigger
# (cancelled > live) alone lets a queue with a large live population
# carry an equally large cancelled population between compactions; the
# ceiling bounds the backing store at live + _COMPACT_LIMIT entries no
# matter how lopsided the cancel traffic gets.
_COMPACT_LIMIT = 4096


class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time (cycles) at which the event fires.
        priority: Tie-breaker at equal times; lower fires first.
        seq: Monotonic sequence number assigned by the queue.
        callback: Callable invoked when the event fires.
        args: Positional arguments passed to the callback.
        cancelled: When True the event is skipped at fire time.
    """

    # ``_ridx`` is the ring backend's slot index (set only when the event
    # was scheduled through an EventRing; unset slots pickle away cleanly).
    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "_queue",
        "_ridx",
    )

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = -1
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                self._queue = None
                queue._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time}, prio={self.priority}, cb={name})"


def _is_live(entry: list) -> bool:
    event = entry[5]
    return event is None or not event.cancelled


class EventQueue:
    """A deterministic priority queue of scheduled callbacks."""

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._lane: deque = deque()
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        self._pool: list[list] = []

    # ------------------------------------------------------------------
    # Entry plumbing
    # ------------------------------------------------------------------

    def _entry(self, time, priority, callback, args, event) -> list:
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = priority
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
            entry[5] = event
            return entry
        return [time, priority, seq, callback, args, event]

    def _recycle(self, entry: list) -> None:
        if len(self._pool) < _POOL_MAX:
            entry[3] = entry[4] = entry[5] = None
            self._pool.append(entry)

    def _note_cancel(self, event: Optional[Event] = None) -> None:
        """A live event was cancelled (called from :meth:`Event.cancel`).

        ``event`` identifies the cancelled handle; the heap backend does
        not need it (liveness is re-read from the handle at pop time) but
        the ring backend uses it to flag the slot, so the signature is
        shared.
        """
        self._live -= 1
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled >= _COMPACT_MIN and (
            cancelled > self._live or cancelled >= _COMPACT_LIMIT
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries, *in place* so run-loop aliases survive."""
        heap = self._heap
        heap[:] = [entry for entry in heap if _is_live(entry)]
        heapq.heapify(heap)
        lane = self._lane
        if lane:
            keep = [entry for entry in lane if _is_live(entry)]
            lane.clear()
            lane.extend(keep)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def push(self, event: Event) -> Event:
        """Insert ``event`` and stamp its sequence number."""
        entry = self._entry(
            event.time, event.priority, event.callback, event.args, event
        )
        event.seq = entry[2]
        event._queue = self
        heapq.heappush(self._heap, entry)
        self._live += 1
        return event

    def push_entry(self, time, priority, callback, args) -> None:
        """Heap-schedule a callback with no cancel handle (hot path)."""
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = priority
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
        else:
            entry = [time, priority, seq, callback, args, None]
        heapq.heappush(self._heap, entry)
        self._live += 1

    def push_lane(self, time, callback, args, event: Optional[Event] = None) -> None:
        """Append a priority-0 entry stamped at the current engine time.

        Only the engine may call this, and only with ``time`` equal to its
        clock: that invariant is what keeps the lane sorted.
        """
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = 0
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
            entry[5] = event
        else:
            entry = [time, 0, seq, callback, args, event]
        if event is not None:
            event.seq = seq
            event._queue = self
        self._lane.append(entry)
        self._live += 1

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def _skip_cancelled_heads(self) -> None:
        heap = self._heap
        while heap:
            event = heap[0][5]
            if event is not None and event.cancelled:
                self._recycle(heapq.heappop(heap))
                self._cancelled -= 1
            else:
                break
        lane = self._lane
        while lane:
            event = lane[0][5]
            if event is not None and event.cancelled:
                self._recycle(lane.popleft())
                self._cancelled -= 1
            else:
                break

    def _pop_entry(self) -> Optional[list]:
        """Remove and return the earliest live entry, or None."""
        self._skip_cancelled_heads()
        heap = self._heap
        lane = self._lane
        if lane:
            if heap and heap[0] < lane[0]:
                entry = heapq.heappop(heap)
            else:
                entry = lane.popleft()
        elif heap:
            entry = heapq.heappop(heap)
        else:
            return None
        self._live -= 1
        return entry

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        entry = self._pop_entry()
        if entry is None:
            return None
        event = entry[5]
        if event is None:
            event = Event(entry[0], entry[3], entry[4], entry[1])
            event.seq = entry[2]
        else:
            event._queue = None
        self._recycle(entry)
        return event

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event, or None."""
        self._skip_cancelled_heads()
        heap = self._heap
        lane = self._lane
        if heap and lane:
            return heap[0][0] if heap[0] < lane[0] else lane[0][0]
        if heap:
            return heap[0][0]
        if lane:
            return lane[0][0]
        return None

    def snapshot(self, limit: int = 20) -> list[Event]:
        """The earliest ``limit`` live events, in firing order (diagnostics)."""
        entries = [e for e in self._heap if _is_live(e)]
        entries.extend(e for e in self._lane if _is_live(e))
        entries.sort()
        out = []
        for entry in entries[:limit]:
            event = entry[5]
            if event is None:
                event = Event(entry[0], entry[3], entry[4], entry[1])
                event.seq = entry[2]
            out.append(event)
        return out

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # State capture (snapshot/fork support)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle everything observable; drop the free pool.

        Pooled entries are recycled storage whose contents can never be
        observed again, so a restored queue starts with an empty pool:
        entry allocation order is not part of simulation state, and
        scheduling behaviour is byte-identical either way.
        """
        state = self.__dict__.copy()
        state["_pool"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool = []
