"""The simulation engine: clock plus event loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.event import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the engine is driven into an invalid state."""


class Engine:
    """Owns the simulation clock and runs events in timestamp order.

    Time is measured in cycles of the system clock (1 GHz in the paper's
    configuration, Table II).  All hardware components hold a reference to
    the engine and schedule work through :meth:`schedule`.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now: float = 0.0
        self._running = False
        self._stopped = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, callback, args, priority)
        return self._queue.push(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        event = Event(time, callback, args, priority)
        return self._queue.push(event)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or stop().

        Args:
            until: Absolute time bound; events at later times stay queued.
            max_events: Safety valve on the number of events to execute.

        Returns:
            The simulation time when the loop exited.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while True:
                if self._stopped:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.callback(*event.args)
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
