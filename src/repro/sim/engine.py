"""The simulation engine: clock plus event loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.event import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the engine is driven into an invalid state."""


class SimulationStall(SimulationError):
    """The engine detected livelock or blew through its event budget.

    Carries a diagnostic dump of the earliest pending events so a stalled
    run can be debugged post-mortem instead of spinning forever.
    """

    def __init__(self, message: str, diagnostics: str = "") -> None:
        super().__init__(
            message + (f"\npending events:\n{diagnostics}" if diagnostics else "")
        )
        self.diagnostics = diagnostics


class Engine:
    """Owns the simulation clock and runs events in timestamp order.

    Time is measured in cycles of the system clock (1 GHz in the paper's
    configuration, Table II).  All hardware components hold a reference to
    the engine and schedule work through :meth:`schedule`.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now: float = 0.0
        self._running = False
        self._stopped = False
        self.events_executed = 0
        # True when the last run() exited because max_events tripped —
        # distinguishable from a clean queue drain.
        self.exhausted = False

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, callback, args, priority)
        return self._queue.push(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        event = Event(time, callback, args, priority)
        return self._queue.push(event)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stall_threshold: Optional[int] = None,
        strict_budget: bool = False,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or stop().

        Args:
            until: Absolute time bound; events at later times stay queued.
            max_events: Safety valve on the number of events to execute.
                Tripping it sets :attr:`exhausted` (and raises
                :class:`SimulationStall` under ``strict_budget``) so the
                caller can tell a blown budget from a clean drain.
            stall_threshold: Watchdog — if this many consecutive events
                execute without the clock advancing (a zero-delay livelock
                cycle), raise :class:`SimulationStall` with a dump of the
                pending events instead of spinning forever.
            strict_budget: Raise :class:`SimulationStall` when the event
                budget trips instead of returning with the flag set.

        Returns:
            The simulation time when the loop exited.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        self.exhausted = False
        executed = 0
        stalled_events = 0
        try:
            while True:
                if self._stopped:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                if stall_threshold is not None:
                    if event.time > self._now:
                        stalled_events = 0
                    else:
                        stalled_events += 1
                        if stalled_events >= stall_threshold:
                            # The event being executed is already popped, so
                            # name it explicitly alongside the queue dump.
                            raise SimulationStall(
                                f"no-progress livelock: {stalled_events} "
                                f"consecutive events at t={self._now} "
                                "without the clock advancing",
                                self._format_event(event, " <- executing")
                                + ("\n" + self.dump_pending()
                                   if len(self._queue) else ""),
                            )
                self._now = event.time
                event.callback(*event.args)
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    self.exhausted = True
                    if strict_budget:
                        raise SimulationStall(
                            f"event budget exhausted ({max_events} events) "
                            f"at t={self._now} with "
                            f"{self.pending_events()} events pending",
                            self.dump_pending(),
                        )
                    break
        finally:
            self._running = False
        return self._now

    @staticmethod
    def _format_event(event: Event, suffix: str = "") -> str:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        args = ", ".join(repr(a) for a in event.args[:4])
        return f"  t={event.time:.1f} prio={event.priority} {name}({args}){suffix}"

    def dump_pending(self, limit: int = 20) -> str:
        """Human-readable dump of the earliest pending events (diagnostics)."""
        lines = [self._format_event(e) for e in self._queue.snapshot(limit)]
        remaining = self.pending_events() - len(lines)
        if remaining > 0:
            lines.append(f"  ... and {remaining} more")
        return "\n".join(lines)

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
