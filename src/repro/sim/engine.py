"""The simulation engine: clock plus event loop.

The run loop is the hottest code in the simulator, so it is written
against the queue's internal entry representation (plain lists, a heap
plus a same-cycle FIFO lane — see :mod:`repro.sim.event`) with bound
functions cached in locals.  Semantics are identical to the classic
peek-then-pop loop: events fire in exact ``(time, priority, seq)`` order,
the golden/parity suites pin this byte-for-byte.

Two scheduling surfaces:

* :meth:`Engine.schedule` / :meth:`Engine.schedule_at` return an
  :class:`Event` cancel handle, as always.
* :meth:`Engine.post` / :meth:`Engine.post_at` are the hot-path variants
  for the overwhelmingly common case where the caller never cancels:
  they allocate no Event object at all (recycled list entries only), and
  zero-delay posts go to the FIFO lane instead of the heap.
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from typing import Any, Callable, Optional

from repro.sim.event import _POOL_MAX, Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the engine is driven into an invalid state."""


class SimulationStall(SimulationError):
    """The engine detected livelock or blew through its event budget.

    Carries a diagnostic dump of the earliest pending events so a stalled
    run can be debugged post-mortem instead of spinning forever.
    """

    def __init__(self, message: str, diagnostics: str = "") -> None:
        super().__init__(
            message + (f"\npending events:\n{diagnostics}" if diagnostics else "")
        )
        self.diagnostics = diagnostics


class Engine:
    """Owns the simulation clock and runs events in timestamp order.

    Time is measured in cycles of the system clock (1 GHz in the paper's
    configuration, Table II).  All hardware components hold a reference to
    the engine and schedule work through :meth:`schedule` (cancellable)
    or :meth:`post` (fire-and-forget fast path).
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now: float = 0.0
        self._running = False
        self._stopped = False
        self.events_executed = 0
        # True when the last run() exited because max_events tripped —
        # distinguishable from a clean queue drain.
        self.exhausted = False
        # Sanitizer tap (repro.check.runtime.CheckRuntime) — None on
        # ordinary runs, leaving every path below a single is-None test.
        self._monitor = None

    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    def __getstate__(self) -> dict:
        """State capture: an engine is only picklable while paused.

        Mid-callback capture would lose the run loop's local aliases (the
        entry being executed, the executed-event count in flight), so a
        snapshot taken from inside an event is a bug, not a degraded copy.
        Pause first via ``run(until=...)`` — the clock parks at the bound
        with every later event still queued.
        """
        if self._running:
            raise SimulationError(
                "cannot snapshot a running engine; pause it with "
                "run(until=...) and snapshot between events"
            )
        state = self.__dict__.copy()
        state["_monitor"] = None
        return state

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        # Build the Event and its queue entry directly (no __init__ frame,
        # no push() call): identical (time, priority, seq) ordering.
        queue = self._queue
        event = Event.__new__(Event)
        event.time = time = self._now + delay
        event.priority = priority
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._queue = queue
        event.seq = seq = queue._seq
        queue._seq = seq + 1
        pool = queue._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = priority
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
            entry[5] = event
        else:
            entry = [time, priority, seq, callback, args, event]
        if delay == 0 and priority == 0:
            queue._lane.append(entry)
        else:
            _heappush(queue._heap, entry)
        queue._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {now}"
            )
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        queue = self._queue
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._queue = queue
        event.seq = seq = queue._seq
        queue._seq = seq + 1
        pool = queue._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = priority
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
            entry[5] = event
        else:
            entry = [time, priority, seq, callback, args, event]
        if time == now and priority == 0:
            queue._lane.append(entry)
        else:
            _heappush(queue._heap, entry)
        queue._live += 1
        return event

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Hot-path :meth:`schedule`: priority 0, no cancel handle.

        Allocates no Event; zero-delay posts take the same-cycle FIFO lane.
        """
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        if delay <= 0:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})"
                )
            time = self._now
            lane = True
        else:
            time = self._now + delay
            lane = False
        pool = queue._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = 0
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
        else:
            entry = [time, 0, seq, callback, args, None]
        if lane:
            queue._lane.append(entry)
        else:
            _heappush(queue._heap, entry)
        queue._live += 1

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Hot-path :meth:`schedule_at`: priority 0, no cancel handle."""
        monitor = self._monitor
        if monitor is not None:
            monitor.on_schedule(callback)
        now = self._now
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        if time <= now:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time}, current time is {now}"
                )
            time = now
            lane = True
        else:
            lane = False
        pool = queue._pool
        if pool:
            entry = pool.pop()
            entry[0] = time
            entry[1] = 0
            entry[2] = seq
            entry[3] = callback
            entry[4] = args
        else:
            entry = [time, 0, seq, callback, args, None]
        if lane:
            queue._lane.append(entry)
        else:
            _heappush(queue._heap, entry)
        queue._live += 1

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stall_threshold: Optional[int] = None,
        strict_budget: bool = False,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or stop().

        Args:
            until: Absolute time bound; events at later times stay queued.
            max_events: Safety valve on the number of events to execute.
                Tripping it sets :attr:`exhausted` (and raises
                :class:`SimulationStall` under ``strict_budget``) so the
                caller can tell a blown budget from a clean drain.
            stall_threshold: Watchdog — if this many consecutive events
                execute without the clock advancing (a zero-delay livelock
                cycle), raise :class:`SimulationStall` with a dump of the
                pending events instead of spinning forever.
            strict_budget: Raise :class:`SimulationStall` when the event
                budget trips instead of returning with the flag set.

        Returns:
            The simulation time when the loop exited.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        self.exhausted = False
        executed = 0
        stalled_events = 0
        queue = self._queue
        # The loop aliases the queue's backing stores; EventQueue mutates
        # them only in place (compaction included), so these stay valid
        # across arbitrary callback activity.
        heap = queue._heap
        lane = queue._lane
        pool = queue._pool
        heappop = heapq.heappop
        lane_popleft = lane.popleft
        recycle = queue._recycle
        monitor = self._monitor
        check_stall = stall_threshold is not None
        bound = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        try:
            while not self._stopped:
                # Skip cancelled heads so the head comparison below only
                # sees live entries (only worth scanning when something is
                # actually cancelled).
                if queue._cancelled:
                    while heap:
                        event = heap[0][5]
                        if event is not None and event.cancelled:
                            recycle(heappop(heap))
                            queue._cancelled -= 1
                        else:
                            break
                    while lane:
                        event = lane[0][5]
                        if event is not None and event.cancelled:
                            recycle(lane_popleft())
                            queue._cancelled -= 1
                        else:
                            break
                # The next event is the smaller of the two heads: the lane
                # is sorted by construction (engine clock never moves
                # backwards), the heap by heap order.
                if lane:
                    head = lane[0]
                    from_heap = bool(heap) and heap[0] < head
                    if from_heap:
                        head = heap[0]
                elif heap:
                    head = heap[0]
                    from_heap = True
                else:
                    break
                time = head[0]
                if time > bound:
                    self._now = bound
                    break
                entry = heappop(heap) if from_heap else lane_popleft()
                queue._live -= 1
                if check_stall:
                    if time > self._now:
                        stalled_events = 0
                    else:
                        stalled_events += 1
                        if stalled_events >= stall_threshold:
                            # The event being executed is already popped, so
                            # name it explicitly alongside the queue dump.
                            event = entry[5]
                            if event is None:
                                event = Event(
                                    time, entry[3], entry[4], entry[1]
                                )
                            raise SimulationStall(
                                f"no-progress livelock: {stalled_events} "
                                f"consecutive events at t={self._now} "
                                "without the clock advancing",
                                self._format_event(event, " <- executing")
                                + ("\n" + self.dump_pending()
                                   if queue._live else ""),
                            )
                self._now = time
                callback = entry[3]
                args = entry[4]
                event = entry[5]
                if monitor is not None:
                    monitor.on_execute(time, entry[1], entry[2], callback, args)
                if event is not None:
                    event._queue = None
                entry[3] = entry[4] = entry[5] = None
                if len(pool) < _POOL_MAX:
                    pool.append(entry)
                callback(*args)
                executed += 1
                if executed >= budget:
                    self.exhausted = True
                    if strict_budget:
                        raise SimulationStall(
                            f"event budget exhausted ({max_events} events) "
                            f"at t={self._now} with "
                            f"{self.pending_events()} events pending",
                            self.dump_pending(),
                        )
                    break
        finally:
            self.events_executed += executed
            self._running = False
        return self._now

    @staticmethod
    def _format_event(event: Event, suffix: str = "") -> str:
        name = getattr(event.callback, "__qualname__", repr(event.callback))
        args = ", ".join(repr(a) for a in event.args[:4])
        return f"  t={event.time:.1f} prio={event.priority} {name}({args}){suffix}"

    def dump_pending(self, limit: int = 20) -> str:
        """Human-readable dump of the earliest pending events (diagnostics)."""
        lines = [self._format_event(e) for e in self._queue.snapshot(limit)]
        remaining = self.pending_events() - len(lines)
        if remaining > 0:
            lines.append(f"  ... and {remaining} more")
        return "\n".join(lines)

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest queued event, or None when drained."""
        return self._queue.peek_time()
