"""Engine backend registry: the seam every event core plugs into.

Three interchangeable event cores implement the same queue protocol and
drive the same :class:`repro.sim.engine.Engine` contract:

* ``"heap"`` — the pure-Python heap + same-cycle-lane queue
  (:mod:`repro.sim.event` / :mod:`repro.sim.engine`).  Always available;
  it is the parity oracle every other backend is pinned against.
* ``"ring"`` — the numpy structured-array event ring with a per-timestamp
  bucket calendar (:mod:`repro.sim.ring`).
* ``"compiled"`` — the optional C extension event core
  (:mod:`repro.sim.compiled`, backed by ``repro.sim._ckernel``).  Only
  selectable when the extension was built; the build is strictly
  optional and its absence degrades to the heap oracle.

Selection goes through :func:`resolve_backend`, which validates eagerly:
an unknown backend name — or ``"compiled"`` on a host where the
extension is not built — raises :class:`ConfigError` naming the
available backends *before* any engine or machine is constructed,
instead of failing deep inside engine wiring.  The
``REPRO_ENGINE_BACKEND`` environment variable overrides the configured
value, which is how CI replays the entire golden/parity suite on the
ring and compiled backends with no test changes.

The queue protocol below is what a backend's queue must provide; the
engine adds the scheduling surfaces (``schedule``/``schedule_at``/
``post``/``post_at``), the run loop with budget/watchdog hooks, and the
pause-only pickling contract (see ``Engine.__getstate__``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.sim.engine import Engine, SimulationError
from repro.sim.event import Event

#: Environment override for the engine backend.  Lets CI run the entire
#: golden/parity suite against an alternate backend with no test changes
#: (the ``ring-parity`` and ``compiled-parity`` jobs set it).
BACKEND_ENV = "REPRO_ENGINE_BACKEND"

#: Every backend name the registry knows.  ``available_backends()``
#: filters this down to what the current host can actually construct.
ENGINE_BACKENDS = ("heap", "ring", "compiled")


class ConfigError(SimulationError, ValueError):
    """Invalid engine/backend configuration, raised before wiring begins.

    Subclasses both :class:`SimulationError` (the simulator's error
    hierarchy) and :class:`ValueError` (what config validation and the
    CLI's top-level handler historically catch), so every existing
    caller keeps working while new code can catch the precise type.
    """


@runtime_checkable
class EventQueueProtocol(Protocol):
    """What an engine backend's queue must provide.

    Semantics are pinned by the heap oracle (:class:`repro.sim.event.
    EventQueue`): exact ``(time, priority, seq)`` pop order, cancelled
    events skipped at pop time with ``_note_cancel`` bookkeeping, O(1)
    ``len``, and a ``__getstate__``/``__setstate__`` (or ``__reduce__``)
    contract that snapshot fork/restore round-trips byte-identically.
    """

    def push(self, event: Event) -> Event: ...

    def push_entry(
        self, time: float, priority: int,
        callback: Callable[..., Any], args: tuple,
    ) -> None: ...

    def push_lane(
        self, time: float, callback: Callable[..., Any], args: tuple,
        event: Optional[Event] = None,
    ) -> None: ...

    def pop(self) -> Optional[Event]: ...

    def peek_time(self) -> Optional[float]: ...

    def snapshot(self, limit: int = 20) -> list: ...

    def _note_cancel(self, event: Optional[Event] = None) -> None: ...

    def __len__(self) -> int: ...


def compiled_available() -> bool:
    """True when the optional ``repro.sim._ckernel`` extension imports."""
    from repro.sim.compiled import is_available

    return is_available()


def available_backends() -> tuple:
    """Backend names constructible on this host, in registry order."""
    return tuple(
        name for name in ENGINE_BACKENDS
        if name != "compiled" or compiled_available()
    )


def resolve_backend(configured: str = "heap") -> str:
    """The effective backend: the env override, else the config value.

    Validation is eager and complete: both an unknown name and a
    ``"compiled"`` request without the built extension raise
    :class:`ConfigError` here, naming the valid/available choices, so a
    bad ``--engine-backend`` flag or ``REPRO_ENGINE_BACKEND`` value
    fails at configuration time rather than deep inside engine
    construction.
    """
    backend = os.environ.get(BACKEND_ENV) or configured
    if backend not in ENGINE_BACKENDS:
        raise ConfigError(
            f"unknown engine backend {backend!r}; "
            f"valid choices: {', '.join(ENGINE_BACKENDS)}"
        )
    if backend == "compiled" and not compiled_available():
        raise ConfigError(
            "engine backend 'compiled' requested but the repro.sim._ckernel "
            "extension is not built (run 'make ext' or "
            "'python setup.py build_ext --inplace'); "
            f"available backends: {', '.join(available_backends())}"
        )
    return backend


def build_engine(backend: str = "heap") -> Engine:
    """Construct the engine for a resolved backend name."""
    if backend == "ring":
        from repro.sim.ring import RingEngine

        return RingEngine()
    if backend == "compiled":
        from repro.sim.compiled import CompiledEngine

        return CompiledEngine()
    return Engine()
