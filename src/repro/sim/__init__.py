"""Discrete-event simulation engine underpinning the Griffin reproduction.

The engine is deliberately small: an event queue ordered by (time, priority,
sequence), a handful of shared-resource queuing primitives that model
bandwidth- and occupancy-limited hardware (links, DRAM channels, page-table
walkers), and a ``Component`` base class that gives every simulated hardware
block a name, a pointer to the engine, and a statistics registry.

The paper's evaluation platform, MGPUSim, is a cycle-level simulator.  This
reproduction operates at memory-transaction granularity instead: every
post-coalescing memory transaction is an event chain whose completion time is
computed from cache/TLB lookups plus queuing delays on shared resources.
That preserves the contention behaviour Griffin exploits (link serialization,
IOMMU walker occupancy, DRAM bandwidth) at a fidelity Python can execute.
"""

from repro.sim.engine import Engine
from repro.sim.event import Event, EventQueue
from repro.sim.component import Component
from repro.sim.resource import SlotResource, ThroughputResource
from repro.sim.rng import make_rng

__all__ = [
    "Engine",
    "Event",
    "EventQueue",
    "Component",
    "SlotResource",
    "ThroughputResource",
    "make_rng",
]
