"""The pinned benchmark suite measured by ``griffin-sim bench``.

Two kinds of cases:

* **micro** — tight loops over one subsystem (event loop, event queue,
  cache, TLB).  They return the number of operations performed so the
  harness can report ops/sec per subsystem.
* **e2e** — full :func:`repro.harness.runner.run_workload` simulations with
  pinned (workload, policy, config, scale, seed).  They return the number
  of engine events executed, the figure the ≥3x events/sec target is
  measured on.

Everything here is deliberately deterministic: same suite, same simulated
work, every run.  The ``calibration`` micro case is a machine-speed proxy —
comparisons across machines normalize end-to-end events/sec by it, so a
committed ``BENCH_*.json`` from one host still yields a meaningful
regression gate on another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config.faults import FaultConfig
from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system, tiny_system
from repro.config.system import CacheConfig, TLBConfig


@dataclass(frozen=True)
class MicroCase:
    """One micro benchmark: ``fn(scale_factor) -> ops_performed``."""

    name: str
    fn: Callable[[int], int]
    unit: str = "ops"


@dataclass(frozen=True)
class E2ECase:
    """One pinned end-to-end simulation."""

    name: str
    workload: str
    policy: str
    gpus: int
    scale: float
    seed: int
    config_name: str = "small"  # "small" | "tiny"
    faults: bool = False

    def build_config(self):
        factory = {"small": small_system, "tiny": tiny_system}[self.config_name]
        return factory(self.gpus)

    def build_faults(self):
        if not self.faults:
            return None
        return FaultConfig(
            migration_drop_rate=0.3,
            shootdown_ack_delay=25,
            shootdown_timeout_rate=0.2,
            max_migration_attempts=3,
        )


@dataclass(frozen=True)
class SweepCase:
    """One pinned knob-only sweep grid, measured cold vs snapshot-forked.

    The grid varies only late-binding knobs (policy drain strategy plus
    ``hyper_variants`` overrides of late hyperparameters), so every cell
    shares one warm-up prefix — the configuration the snapshot-fork
    scheduler is built to accelerate.  The harness times the same grid
    with ``fork=False`` and ``fork=True`` and reports cells/sec for both.
    """

    name: str
    workload: str
    policies: tuple  # late-compatible policy names, e.g. griffin+flush
    gpus: int
    scale: float
    seed: int
    config_name: str = "tiny"  # "small" | "tiny"
    # Applied to every variant (shared prefix): non-late fields such as
    # migration_period, as (field, value) pairs.
    base_overrides: tuple = ()
    # Each variant: a tuple of (late_hyper_field, value) pairs.
    hyper_variants: tuple = ()

    def build_sweep(self):
        """Materialize the pinned :class:`repro.harness.sweep.Sweep`."""
        # Imported lazily: repro.harness.sweep reaches back into
        # repro.perf for the code fingerprint.
        from repro.harness.sweep import Sweep

        factory = {"small": small_system, "tiny": tiny_system}[self.config_name]
        base = GriffinHyperParams.calibrated().with_overrides(
            **dict(self.base_overrides)
        )
        hypers = {"default": base}
        for index, overrides in enumerate(self.hyper_variants):
            hypers[f"v{index}"] = base.with_overrides(**dict(overrides))
        return Sweep(
            workloads=[self.workload],
            policies=list(self.policies),
            configs={self.config_name: factory(self.gpus)},
            hypers=hypers,
        )


@dataclass(frozen=True)
class RingCase:
    """One pinned e2e cell timed under both event-core backends.

    The same (workload, policy, config, scale, seed) runs once with the
    pure-Python heap queue and once with the numpy ring backend; the case
    reports both throughputs, the ring/heap speedup, and whether the two
    result dicts came out identical (they must — the heap queue is the
    parity oracle for the ring).
    """

    name: str
    workload: str
    policy: str
    gpus: int
    scale: float
    seed: int
    config_name: str = "small"  # "small" | "tiny"

    def build_config(self):
        factory = {"small": small_system, "tiny": tiny_system}[self.config_name]
        return factory(self.gpus)


@dataclass(frozen=True)
class CompiledCase:
    """One pinned e2e cell timed heap-vs-compiled (the C event core).

    Same shape as :class:`RingCase`: the identical (workload, policy,
    config, scale, seed) runs once on the pure-Python heap queue and once
    on the compiled C extension backend; the case reports both
    throughputs, the compiled/heap speedup, and whether the two result
    dicts came out identical.  On hosts where ``repro.sim._ckernel`` is
    not built the case degrades to a heap-only measurement flagged with
    ``compiled_available: false`` instead of failing the bench run.
    """

    name: str
    workload: str
    policy: str
    gpus: int
    scale: float
    seed: int
    config_name: str = "small"  # "small" | "tiny"

    def build_config(self):
        factory = {"small": small_system, "tiny": tiny_system}[self.config_name]
        return factory(self.gpus)


@dataclass(frozen=True)
class BatchCase:
    """One pinned seed-replica campaign, batched vs process-per-replica.

    ``run_replicas`` advances all K seeds in one process; the baseline
    spawns one fresh interpreter per seed (the cost campaign scripts pay
    today).  The case reports replicas/sec for both and the speedup.
    """

    name: str
    workload: str
    policy: str
    gpus: int
    scale: float
    seeds: tuple
    config_name: str = "tiny"  # "small" | "tiny"

    def build_config(self):
        factory = {"small": small_system, "tiny": tiny_system}[self.config_name]
        return factory(self.gpus)


@dataclass(frozen=True)
class BenchSuite:
    """The full pinned suite (micro + e2e + sweep + ring + batch)."""

    name: str
    micro: tuple = field(default_factory=tuple)
    e2e: tuple = field(default_factory=tuple)
    sweeps: tuple = field(default_factory=tuple)
    rings: tuple = field(default_factory=tuple)
    batches: tuple = field(default_factory=tuple)
    compiled: tuple = field(default_factory=tuple)

    def fingerprint_payload(self) -> dict:
        """The suite definition, as data, for the config fingerprint."""
        return {
            "suite": self.name,
            "micro": [m.name for m in self.micro],
            "e2e": [
                {
                    "name": c.name,
                    "workload": c.workload,
                    "policy": c.policy,
                    "gpus": c.gpus,
                    "scale": c.scale,
                    "seed": c.seed,
                    "config": c.config_name,
                    "faults": c.faults,
                }
                for c in self.e2e
            ],
            "sweeps": [
                {
                    "name": c.name,
                    "workload": c.workload,
                    "policies": list(c.policies),
                    "gpus": c.gpus,
                    "scale": c.scale,
                    "seed": c.seed,
                    "config": c.config_name,
                    "base_overrides": [list(pair) for pair in c.base_overrides],
                    "hyper_variants": [
                        [list(pair) for pair in variant]
                        for variant in c.hyper_variants
                    ],
                }
                for c in self.sweeps
            ],
            "rings": [
                {
                    "name": c.name,
                    "workload": c.workload,
                    "policy": c.policy,
                    "gpus": c.gpus,
                    "scale": c.scale,
                    "seed": c.seed,
                    "config": c.config_name,
                }
                for c in self.rings
            ],
            "batches": [
                {
                    "name": c.name,
                    "workload": c.workload,
                    "policy": c.policy,
                    "gpus": c.gpus,
                    "scale": c.scale,
                    "seeds": list(c.seeds),
                    "config": c.config_name,
                }
                for c in self.batches
            ],
            "compiled": [
                {
                    "name": c.name,
                    "workload": c.workload,
                    "policy": c.policy,
                    "gpus": c.gpus,
                    "scale": c.scale,
                    "seed": c.seed,
                    "config": c.config_name,
                }
                for c in self.compiled
            ],
        }


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------

def _micro_engine_chain(scale: int) -> int:
    """Self-rescheduling event chains: raw scheduler dispatch throughput.

    Also the **calibration** case: a machine-speed proxy used to normalize
    end-to-end events/sec across hosts.
    """
    from repro.sim.engine import Engine

    n_chains = 8
    hops = 2_000 * scale
    engine = Engine()
    remaining = [hops] * n_chains

    def hop(i: int) -> None:
        remaining[i] -= 1
        if remaining[i]:
            engine.schedule(1, hop, i)

    for i in range(n_chains):
        engine.schedule(1, hop, i)
    engine.run()
    return engine.events_executed


def _micro_engine_zero_delay(scale: int) -> int:
    """Zero-delay event bursts: the same-cycle fast-lane path."""
    from repro.sim.engine import Engine

    rounds = 400 * scale
    burst = 16
    engine = Engine()
    executed = [0]

    def leaf() -> None:
        executed[0] += 1

    def fan_out(r: int) -> None:
        for _ in range(burst):
            engine.schedule(0, leaf)
        if r:
            engine.schedule(1, fan_out, r - 1)

    engine.schedule(1, fan_out, rounds)
    engine.run()
    return engine.events_executed


def _micro_queue_churn(scale: int) -> int:
    """Interleaved push/pop on the event queue (heap pressure)."""
    from repro.sim.event import Event, EventQueue

    ops = 20_000 * scale
    q = EventQueue()

    def noop() -> None:
        pass

    t = 0.0
    for i in range(ops):
        # Deterministic, mildly out-of-order times.
        q.push(Event(t + ((i * 7919) % 97), noop))
        t += 1.0
        if i % 3 == 2:
            q.pop()
    while q.pop() is not None:
        pass
    return ops


def _micro_cache_hits(scale: int) -> int:
    """L1-sized cache access loop (hit-dominated, some conflict misses)."""
    from repro.mem.cache import Cache

    accesses = 30_000 * scale
    cache = Cache("bench.l1", CacheConfig(16 * 1024, 4), 4096)
    line = 64
    for i in range(accesses):
        # 8 hot lines with a periodic cold stride.
        addr = (i % 8) * line if i % 17 else (i * 13) * line
        cache.access(addr, i % 5 == 0)
    return accesses


def _micro_tlb_lookup(scale: int) -> int:
    """TLB lookup/insert loop over a small hot page set."""
    from repro.vm.tlb import TLB

    lookups = 30_000 * scale
    tlb = TLB("bench.tlb", TLBConfig(32, 16))
    for i in range(lookups):
        page = i % 24 if i % 11 else i
        if not tlb.lookup(page):
            tlb.insert(page, 0)
    return lookups


MICRO_CASES = (
    MicroCase("calibration", _micro_engine_chain, unit="events"),
    MicroCase("engine_zero_delay", _micro_engine_zero_delay, unit="events"),
    MicroCase("queue_churn", _micro_queue_churn, unit="pushes"),
    MicroCase("cache_hits", _micro_cache_hits, unit="accesses"),
    MicroCase("tlb_lookup", _micro_tlb_lookup, unit="lookups"),
)


# ----------------------------------------------------------------------
# Pinned suites
# ----------------------------------------------------------------------

# A knob-only grid in the regime snapshot-forking targets: warm-up is
# most of each MT run, and ``migration_period=45000`` (shared by every
# variant, so it does not split the fork group) leaves one migration
# phase in the continuation.  ``min_pages_per_source=1`` lets that phase
# actually migrate at this scale, so the late knobs produce genuinely
# divergent cells rather than eight replays of the same run.
_MT_KNOB_SWEEP = SweepCase(
    "mt_knob_sweep", "MT", ("griffin", "griffin_flush"),
    gpus=4, scale=0.015, seed=3, config_name="small",
    base_overrides=(("migration_period", 45000),),
    hyper_variants=(
        (("min_pages_per_source", 1),),
        (("min_pages_per_source", 1), ("lambda_d", 1.5),
         ("max_pages_per_round", 64)),
        (("min_pages_per_source", 1), ("lambda_s", 1.1),
         ("shared_min_share", 0.25)),
    ),
)

# Heap-vs-ring on the heaviest pinned e2e cell: MT under griffin drives
# the access path hardest, which is where the ring's inlined `_place`
# scheduling either pays off or doesn't.
_RING_VS_HEAP = RingCase(
    "ring_vs_heap", "MT", "griffin", gpus=4, scale=0.015, seed=3,
    config_name="small",
)

# Heap-vs-compiled on the same pinned cell the ring case uses, so the
# three backends are directly comparable from one report.  The compiled
# core's win concentrates in queue ops and the drain loop, so the
# speedup here is an end-to-end (Amdahl-limited) figure, not the pure
# event-chain micro number.
_COMPILED_VS_PYTHON = CompiledCase(
    "compiled_vs_python", "MT", "griffin", gpus=4, scale=0.015, seed=3,
    config_name="small",
)

# Four seed replicas of a tiny MT/griffin run: small enough that the
# per-process overhead the batched executor eliminates dominates the
# baseline, which is exactly the campaign regime it targets.
_BATCHED_REPLICAS = BatchCase(
    "batched_replicas", "MT", "griffin", gpus=2, scale=0.008,
    seeds=(5, 6, 7, 8), config_name="tiny",
)

FULL_SUITE = BenchSuite(
    name="full",
    micro=MICRO_CASES,
    e2e=(
        E2ECase("sc_griffin", "SC", "griffin", gpus=4, scale=0.015, seed=3),
        E2ECase("sc_baseline", "SC", "baseline", gpus=4, scale=0.015, seed=3),
        E2ECase("mt_griffin", "MT", "griffin", gpus=4, scale=0.015, seed=3),
        E2ECase("pr_griffin", "PR", "griffin", gpus=4, scale=0.015, seed=3),
        E2ECase("bfs_baseline", "BFS", "baseline", gpus=4, scale=0.015, seed=3),
        E2ECase("mt_griffin_faults", "MT", "griffin", gpus=2, scale=0.01,
                seed=9, config_name="small", faults=True),
    ),
    sweeps=(_MT_KNOB_SWEEP,),
    rings=(_RING_VS_HEAP,),
    batches=(_BATCHED_REPLICAS,),
    compiled=(_COMPILED_VS_PYTHON,),
)

QUICK_SUITE = BenchSuite(
    name="quick",
    micro=MICRO_CASES,
    e2e=(
        E2ECase("sc_griffin_tiny", "SC", "griffin", gpus=2, scale=0.008,
                seed=5, config_name="tiny"),
        E2ECase("mt_baseline_tiny", "MT", "baseline", gpus=2, scale=0.008,
                seed=5, config_name="tiny"),
        E2ECase("mt_griffin_faults_tiny", "MT", "griffin", gpus=2,
                scale=0.008, seed=9, config_name="tiny", faults=True),
    ),
    sweeps=(_MT_KNOB_SWEEP,),
    rings=(
        RingCase("ring_vs_heap_tiny", "MT", "griffin", gpus=2, scale=0.008,
                 seed=5, config_name="tiny"),
    ),
    batches=(_BATCHED_REPLICAS,),
    compiled=(
        CompiledCase("compiled_vs_python_tiny", "MT", "griffin", gpus=2,
                     scale=0.008, seed=5, config_name="tiny"),
    ),
)


def bench_suite(quick: bool = False) -> BenchSuite:
    """The pinned suite at the requested size."""
    return QUICK_SUITE if quick else FULL_SUITE
