"""Run the pinned benchmark suite and record/diff ``BENCH_<date>.json``.

Each report carries, per case: best-of-N wall time, work performed (engine
events for e2e cases, ops for micro cases), throughput, and the allocation
delta of one run.  Report-level fields add peak RSS, a config fingerprint
(suite definition + interpreter), and the normalized end-to-end throughput
``e2e_events_per_sec / calibration_events_per_sec`` — a machine-independent
figure usable as a CI regression gate against a committed baseline.

Determinism: benchmarking never alters simulation results — the suite only
*measures* runs whose outputs are already pinned by (workload, policy,
config, scale, seed).
"""

from __future__ import annotations

import datetime as _dt
import gc
import hashlib
import json
import platform
import statistics
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.perf.suite import BenchSuite, bench_suite

# v2 added "sweep" cases and the per-case ``extra`` dict.
# v3 added per-case ``median_wall_seconds`` alongside best-of-N, plus the
# "ring" (heap-vs-ring event core) and "batch" (batched replicas) kinds.
# v4 added the "compiled" kind (heap vs the C event-core extension) and
# the optional report-level ``comparison`` block the CLI embeds when a
# baseline diff ran.  Older reports stay loadable: new fields default.
_SCHEMA_VERSION = 4
_READABLE_SCHEMAS = frozenset({1, 2, 3, 4})


def _peak_rss_kb() -> int:
    """Process peak RSS in KB (0 when the platform offers no counter)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        rss //= 1024
    return int(rss)


def _allocated_blocks() -> int:
    """Live CPython allocation count (0 on interpreters without it)."""
    getter = getattr(sys, "getallocatedblocks", None)
    return getter() if getter is not None else 0


@dataclass
class CaseResult:
    """Measurements for one benchmark case."""

    name: str
    kind: str  # "micro" | "e2e" | "sweep" | "ring" | "batch" | "compiled"
    wall_seconds: float  # best-of-N (throughput figures use this)
    work: int  # engine events (e2e), ops (micro), or grid cells (sweep)
    work_unit: str
    per_sec: float
    alloc_blocks_delta: int
    repeats: int
    # Kind-specific measurements; sweep cases record the cold-vs-forked
    # comparison and the cache hit/miss exercise here.
    extra: dict = field(default_factory=dict)
    # Median of the N wall times — a noise-robust companion to best-of-N.
    # Defaults to 0.0 so schema-v1/v2 reports still load.
    median_wall_seconds: float = 0.0


@dataclass
class BenchReport:
    """One full suite run, as written to ``BENCH_<date>.json``."""

    suite: str
    label: str
    created: str
    fingerprint: str
    python: str
    platform: str
    repeats: int
    cases: list = field(default_factory=list)  # list[CaseResult]
    peak_rss_kb: int = 0
    schema: int = _SCHEMA_VERSION

    # ------------------------------------------------------------------

    def case(self, name: str) -> Optional[CaseResult]:
        for c in self.cases:
            if c.name == name:
                return c
        return None

    def _sum(self, kind: str, attr: str) -> float:
        return sum(getattr(c, attr) for c in self.cases if c.kind == kind)

    @property
    def e2e_wall_seconds(self) -> float:
        return self._sum("e2e", "wall_seconds")

    @property
    def e2e_events(self) -> int:
        return int(self._sum("e2e", "work"))

    @property
    def e2e_events_per_sec(self) -> float:
        wall = self.e2e_wall_seconds
        return self.e2e_events / wall if wall > 0 else 0.0

    @property
    def calibration_per_sec(self) -> float:
        cal = self.case("calibration")
        return cal.per_sec if cal is not None else 0.0

    @property
    def normalized_e2e(self) -> float:
        """End-to-end events/sec per unit of machine speed.

        Dividing by the calibration microbench makes the figure comparable
        across hosts, so a committed baseline still gates CI runners.
        """
        cal = self.calibration_per_sec
        return self.e2e_events_per_sec / cal if cal > 0 else 0.0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["aggregate"] = {
            "e2e_wall_seconds": self.e2e_wall_seconds,
            "e2e_events": self.e2e_events,
            "e2e_events_per_sec": self.e2e_events_per_sec,
            "e2e_median_wall_seconds": self._sum(
                "e2e", "median_wall_seconds"
            ),
            "calibration_per_sec": self.calibration_per_sec,
            "normalized_e2e": self.normalized_e2e,
            "micro_wall_seconds": self._sum("micro", "wall_seconds"),
        }
        return data

    def render(self) -> str:
        """Human-readable summary table."""
        from repro.metrics.report import format_table

        rows = [
            [c.name, c.kind, f"{c.wall_seconds:.3f}",
             f"{c.median_wall_seconds:.3f}", f"{c.work:,}",
             f"{c.per_sec:,.0f} {c.work_unit}/s", f"{c.alloc_blocks_delta:,}"]
            for c in self.cases
        ]
        rows.append([
            "TOTAL e2e", "e2e", f"{self.e2e_wall_seconds:.3f}",
            f"{self._sum('e2e', 'median_wall_seconds'):.3f}",
            f"{self.e2e_events:,}",
            f"{self.e2e_events_per_sec:,.0f} events/s", "",
        ])
        table = format_table(
            ["Case", "Kind", "Best (s)", "Median (s)", "Work",
             "Throughput", "Alloc Δ"],
            rows, f"bench suite '{self.suite}' ({self.label})",
        )
        extra = (
            f"peak RSS: {self.peak_rss_kb:,} KB | "
            f"normalized e2e (vs calibration): {self.normalized_e2e:.4f} | "
            f"fingerprint: {self.fingerprint[:12]}"
        )
        sweep_lines = [
            (
                f"sweep '{c.name}': {c.extra.get('fork_speedup', 0.0):.2f}x "
                f"cells/sec forked vs cold "
                f"({c.per_sec:.2f} vs {c.extra.get('cold_cells_per_sec', 0.0):.2f}), "
                f"{c.extra.get('forked_cells', 0)}/{c.extra.get('cells', 0)} "
                f"cells forked, cache resume "
                f"{c.extra.get('cache_resume_hits', 0)} hits / "
                f"{c.extra.get('cache_resume_misses', 0)} misses"
            )
            for c in self.cases
            if c.kind == "sweep"
        ]
        ring_lines = [
            (
                f"ring '{c.name}': {c.extra.get('ring_speedup', 0.0):.2f}x "
                f"events/sec ring vs heap "
                f"({c.extra.get('ring_events_per_sec', 0.0):,.0f} vs "
                f"{c.extra.get('heap_events_per_sec', 0.0):,.0f}), "
                f"results identical: "
                f"{c.extra.get('results_identical', False)}"
            )
            for c in self.cases
            if c.kind == "ring"
        ]
        batch_lines = [
            (
                f"batch '{c.name}': {c.extra.get('batch_speedup', 0.0):.2f}x "
                f"replicas/sec batched vs process-per-replica "
                f"({c.extra.get('batched_replicas_per_sec', 0.0):.2f} vs "
                f"{c.extra.get('proc_replicas_per_sec', 0.0):.2f}, "
                f"{c.extra.get('replicas', 0)} replicas)"
            )
            for c in self.cases
            if c.kind == "batch"
        ]
        compiled_lines = [
            (
                f"compiled '{c.name}': extension not built, "
                f"heap-only measurement "
                f"({c.extra.get('heap_events_per_sec', 0.0):,.0f} events/s)"
                if not c.extra.get("compiled_available", True)
                else
                f"compiled '{c.name}': "
                f"{c.extra.get('compiled_speedup', 0.0):.2f}x "
                f"events/sec compiled vs heap "
                f"({c.extra.get('compiled_events_per_sec', 0.0):,.0f} vs "
                f"{c.extra.get('heap_events_per_sec', 0.0):,.0f}), "
                f"results identical: "
                f"{c.extra.get('results_identical', False)}"
            )
            for c in self.cases
            if c.kind == "compiled"
        ]
        return "\n".join(
            [table, extra]
            + sweep_lines + ring_lines + batch_lines + compiled_lines
        )


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------

def _fingerprint(suite: BenchSuite) -> str:
    payload = {
        "suite": suite.fingerprint_payload(),
        "python": platform.python_version(),
        "impl": platform.python_implementation(),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _measure(
    fn: Callable[[], int], repeats: int
) -> tuple[float, float, int, int]:
    """Time ``fn`` N times; returns (best, median, work, alloc_delta).

    Best-of-N stays the headline (least noise-contaminated); the median
    is recorded alongside it as the noise-robust companion.  The
    allocation delta is sampled on the first run only (it is a property
    of the work, not of repetition).
    """
    walls = []
    work = 0
    alloc_delta = 0
    for attempt in range(repeats):
        gc.collect()
        before = _allocated_blocks()
        t0 = time.perf_counter()
        work = fn()
        walls.append(time.perf_counter() - t0)
        if attempt == 0:
            alloc_delta = _allocated_blocks() - before
    return min(walls), statistics.median(walls), work, alloc_delta


def run_bench(
    quick: bool = False,
    repeats: int = 0,
    label: str = "",
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Execute the pinned suite and return a :class:`BenchReport`."""
    from repro.harness.runner import run_workload

    suite = bench_suite(quick=quick)
    if repeats <= 0:
        repeats = 1 if quick else 3
    report = BenchReport(
        suite=suite.name,
        label=label or ("quick" if quick else "full"),
        created=_dt.datetime.now(_dt.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        fingerprint=_fingerprint(suite),
        python=platform.python_version(),
        platform=platform.platform(),
        repeats=repeats,
    )
    micro_scale = 1 if quick else 3
    for case in suite.micro:
        if progress is not None:
            progress(f"micro:{case.name}")
        wall, med, work, alloc = _measure(
            lambda: case.fn(micro_scale), repeats
        )
        report.cases.append(CaseResult(
            name=case.name, kind="micro", wall_seconds=wall, work=work,
            work_unit=case.unit, per_sec=work / wall if wall > 0 else 0.0,
            alloc_blocks_delta=alloc, repeats=repeats,
            median_wall_seconds=med,
        ))
    for case in suite.e2e:
        if progress is not None:
            progress(f"e2e:{case.name}")
        config = case.build_config()
        faults = case.build_faults()

        def one_run() -> int:
            result = run_workload(
                case.workload, case.policy, config=config,
                scale=case.scale, seed=case.seed, faults=faults,
            )
            return result.events_executed

        wall, med, work, alloc = _measure(one_run, repeats)
        report.cases.append(CaseResult(
            name=case.name, kind="e2e", wall_seconds=wall, work=work,
            work_unit="events", per_sec=work / wall if wall > 0 else 0.0,
            alloc_blocks_delta=alloc, repeats=repeats,
            median_wall_seconds=med,
        ))
    for case in suite.sweeps:
        if progress is not None:
            progress(f"sweep:{case.name}")
        report.cases.append(_measure_sweep(case, repeats))
    for case in suite.rings:
        if progress is not None:
            progress(f"ring:{case.name}")
        report.cases.append(_measure_ring(case, repeats))
    for case in suite.batches:
        if progress is not None:
            progress(f"batch:{case.name}")
        report.cases.append(_measure_batch(case, repeats))
    for case in suite.compiled:
        if progress is not None:
            progress(f"compiled:{case.name}")
        report.cases.append(_measure_compiled(case, repeats))
    report.peak_rss_kb = _peak_rss_kb()
    return report


def _measure_ring(case, repeats: int) -> CaseResult:
    """Time one pinned e2e cell under the heap and ring event cores.

    The headline figure (``per_sec``) is the ring backend's events/sec;
    ``extra`` records the heap baseline, the ring/heap speedup, and
    whether both backends produced byte-identical result dicts — the
    parity contract the goldens pin, re-checked here on live runs.

    Backend selection is pinned per leg by the config: the
    ``REPRO_ENGINE_BACKEND`` override is suspended for the duration so a
    ring-backend CI bench run cannot turn the heap leg into a second
    ring leg (which would degenerate the comparison to 1.00x).
    """
    import os

    from repro.harness.io import result_to_dict
    from repro.harness.runner import run_workload
    from repro.sim.ring import BACKEND_ENV

    heap_config = case.build_config()
    ring_config = heap_config.with_engine_backend("ring")
    results = {}

    def one_run(config, backend) -> int:
        result = run_workload(
            case.workload, case.policy, config=config,
            scale=case.scale, seed=case.seed,
        )
        results[backend] = result_to_dict(result)
        return result.events_executed

    env_override = os.environ.pop(BACKEND_ENV, None)
    try:
        heap_wall, heap_med, work, _ = _measure(
            lambda: one_run(heap_config, "heap"), repeats
        )
        ring_wall, ring_med, _, alloc = _measure(
            lambda: one_run(ring_config, "ring"), repeats
        )
    finally:
        if env_override is not None:
            os.environ[BACKEND_ENV] = env_override
    heap_per_sec = work / heap_wall if heap_wall > 0 else 0.0
    ring_per_sec = work / ring_wall if ring_wall > 0 else 0.0
    return CaseResult(
        name=case.name, kind="ring", wall_seconds=ring_wall, work=work,
        work_unit="events", per_sec=ring_per_sec,
        alloc_blocks_delta=alloc, repeats=repeats,
        median_wall_seconds=ring_med,
        extra={
            "heap_wall_seconds": heap_wall,
            "heap_median_wall_seconds": heap_med,
            "heap_events_per_sec": heap_per_sec,
            "ring_events_per_sec": ring_per_sec,
            "ring_speedup": heap_wall / ring_wall if ring_wall > 0 else 0.0,
            "results_identical": results["heap"] == results["ring"],
        },
    )


def _measure_compiled(case, repeats: int) -> CaseResult:
    """Time one pinned e2e cell under the heap and compiled event cores.

    The headline figure (``per_sec``) is the compiled backend's
    events/sec; ``extra`` records the heap baseline, the compiled/heap
    speedup, and whether both backends produced byte-identical result
    dicts — the same parity contract the goldens pin, re-checked here on
    live runs.

    On hosts where the ``repro.sim._ckernel`` extension is not built the
    case degrades to a heap-only measurement with
    ``extra["compiled_available"] = False`` instead of erroring, so an
    extension-less bench run still produces a complete report.

    As with the ring case, the ``REPRO_ENGINE_BACKEND`` override is
    suspended during measurement so a compiled-backend CI bench run
    cannot turn the heap leg into a second compiled leg.
    """
    import os

    from repro.harness.io import result_to_dict
    from repro.harness.runner import run_workload
    from repro.sim.backends import BACKEND_ENV, compiled_available

    heap_config = case.build_config()
    results = {}

    def one_run(config, backend) -> int:
        result = run_workload(
            case.workload, case.policy, config=config,
            scale=case.scale, seed=case.seed,
        )
        results[backend] = result_to_dict(result)
        return result.events_executed

    env_override = os.environ.pop(BACKEND_ENV, None)
    try:
        heap_wall, heap_med, work, alloc = _measure(
            lambda: one_run(heap_config, "heap"), repeats
        )
        if not compiled_available():
            heap_per_sec = work / heap_wall if heap_wall > 0 else 0.0
            return CaseResult(
                name=case.name, kind="compiled", wall_seconds=heap_wall,
                work=work, work_unit="events", per_sec=heap_per_sec,
                alloc_blocks_delta=alloc, repeats=repeats,
                median_wall_seconds=heap_med,
                extra={
                    "compiled_available": False,
                    "heap_wall_seconds": heap_wall,
                    "heap_median_wall_seconds": heap_med,
                    "heap_events_per_sec": heap_per_sec,
                },
            )
        compiled_config = heap_config.with_engine_backend("compiled")
        comp_wall, comp_med, _, alloc = _measure(
            lambda: one_run(compiled_config, "compiled"), repeats
        )
    finally:
        if env_override is not None:
            os.environ[BACKEND_ENV] = env_override
    heap_per_sec = work / heap_wall if heap_wall > 0 else 0.0
    comp_per_sec = work / comp_wall if comp_wall > 0 else 0.0
    return CaseResult(
        name=case.name, kind="compiled", wall_seconds=comp_wall, work=work,
        work_unit="events", per_sec=comp_per_sec,
        alloc_blocks_delta=alloc, repeats=repeats,
        median_wall_seconds=comp_med,
        extra={
            "compiled_available": True,
            "heap_wall_seconds": heap_wall,
            "heap_median_wall_seconds": heap_med,
            "heap_events_per_sec": heap_per_sec,
            "compiled_events_per_sec": comp_per_sec,
            "compiled_speedup": (
                heap_wall / comp_wall if comp_wall > 0 else 0.0
            ),
            "results_identical": results["heap"] == results["compiled"],
        },
    )


def _measure_batch(case, repeats: int) -> CaseResult:
    """Time K seed replicas batched in-process vs process-per-replica.

    The headline figure (``per_sec``) is batched replicas/sec; ``extra``
    records the process-per-replica baseline (one fresh interpreter per
    seed, each importing the package and running the same cell — the
    cost campaign scripts pay today) and the resulting speedup.
    """
    import subprocess

    from repro.harness.batch import run_replicas

    config = case.build_config()
    seeds = list(case.seeds)
    replicas = len(seeds)

    def batched() -> int:
        out = run_replicas(
            case.workload, policy=case.policy, config=config,
            scale=case.scale, seeds=seeds,
        )
        for item in out:
            if isinstance(item, BaseException):
                raise item
        return replicas

    child_template = (
        "import sys\n"
        "sys.path[:0] = {paths!r}\n"
        "from repro.config.presets import small_system, tiny_system\n"
        "from repro.harness.runner import run_workload\n"
        "config = {factory}({gpus})\n"
        "run_workload({workload!r}, {policy!r}, config=config, "
        "scale={scale!r}, seed={seed!r})\n"
    )

    def per_process() -> int:
        factory = {"small": "small_system", "tiny": "tiny_system"}
        for seed in seeds:
            script = child_template.format(
                paths=list(sys.path),
                factory=factory[case.config_name],
                gpus=case.gpus, workload=case.workload,
                policy=case.policy, scale=case.scale, seed=seed,
            )
            subprocess.run(
                [sys.executable, "-c", script], check=True,
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            )
        return replicas

    batch_wall, batch_med, work, alloc = _measure(batched, repeats)
    proc_wall, proc_med, _, _ = _measure(per_process, repeats)
    batch_per_sec = replicas / batch_wall if batch_wall > 0 else 0.0
    proc_per_sec = replicas / proc_wall if proc_wall > 0 else 0.0
    return CaseResult(
        name=case.name, kind="batch", wall_seconds=batch_wall, work=work,
        work_unit="replicas", per_sec=batch_per_sec,
        alloc_blocks_delta=alloc, repeats=repeats,
        median_wall_seconds=batch_med,
        extra={
            "replicas": replicas,
            "proc_wall_seconds": proc_wall,
            "proc_median_wall_seconds": proc_med,
            "proc_replicas_per_sec": proc_per_sec,
            "batched_replicas_per_sec": batch_per_sec,
            "batch_speedup": proc_wall / batch_wall if batch_wall > 0 else 0.0,
        },
    )


def _measure_sweep(case, repeats: int) -> CaseResult:
    """Time one pinned sweep grid cold vs snapshot-forked.

    The headline figure (``per_sec``) is forked cells/sec — the
    throughput a knob sweep actually gets.  ``extra`` records the cold
    baseline, the resulting fork speedup, and a result-cache exercise
    (a cold-cache sweep followed by a warm-cache resume) so hit/miss
    accounting lands in ``BENCH_*.json``.  Both orderings simulate
    identical work; forked results are byte-identical to cold ones.
    """
    import tempfile

    sweep = case.build_sweep()
    cells = sweep.size()

    def cold_run() -> int:
        sweep.run(scale=case.scale, seed=case.seed, fork=False)
        return cells

    def fork_run() -> int:
        sweep.run(scale=case.scale, seed=case.seed, fork=True)
        return cells

    cold_wall, _, _, _ = _measure(cold_run, repeats)
    fork_wall, fork_med, _, alloc = _measure(fork_run, repeats)
    fork_stats = sweep.run(scale=case.scale, seed=case.seed, fork=True)
    with tempfile.TemporaryDirectory() as tmp:
        first = sweep.run(scale=case.scale, seed=case.seed, cache_dir=tmp)
        second = sweep.run(
            scale=case.scale, seed=case.seed, cache_dir=tmp, resume=True
        )
    return CaseResult(
        name=case.name, kind="sweep", wall_seconds=fork_wall, work=cells,
        work_unit="cells",
        per_sec=cells / fork_wall if fork_wall > 0 else 0.0,
        alloc_blocks_delta=alloc, repeats=repeats,
        median_wall_seconds=fork_med,
        extra={
            "cells": cells,
            "cold_wall_seconds": cold_wall,
            "cold_cells_per_sec": cells / cold_wall if cold_wall > 0 else 0.0,
            "fork_speedup": cold_wall / fork_wall if fork_wall > 0 else 0.0,
            "forked_cells": fork_stats.forked_cells,
            "cold_cells": fork_stats.cold_cells,
            "fork_groups": fork_stats.fork_groups,
            "prefix_events": fork_stats.prefix_events,
            "cache_cold_hits": first.cache_hits,
            "cache_cold_misses": first.cache_misses,
            "cache_resume_hits": second.cache_hits,
            "cache_resume_misses": second.cache_misses,
        },
    )


# ----------------------------------------------------------------------
# Persistence + diffing
# ----------------------------------------------------------------------

def save_report(report: BenchReport, out_dir: Path | str = ".") -> Path:
    """Write ``BENCH_<date>_<label>.json`` into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    date = report.created.split("T")[0]
    safe_label = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in report.label
    )
    path = out / f"BENCH_{date}_{safe_label}.json"
    path.write_text(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    return path


def load_report(path: Path | str) -> BenchReport:
    """Load a previously saved report."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") not in _READABLE_SCHEMAS:
        raise ValueError(f"unsupported bench schema {data.get('schema')!r}")
    cases = [CaseResult(**c) for c in data["cases"]]
    return BenchReport(
        suite=data["suite"], label=data["label"], created=data["created"],
        fingerprint=data["fingerprint"], python=data["python"],
        platform=data["platform"], repeats=data["repeats"], cases=cases,
        peak_rss_kb=data["peak_rss_kb"],
    )


def find_previous_report(out_dir: Path | str, exclude: Optional[Path] = None) -> Optional[Path]:
    """The most recent ``BENCH_*.json`` in ``out_dir`` (by name, newest last)."""
    out = Path(out_dir)
    candidates = sorted(p for p in out.glob("BENCH_*.json") if p != exclude)
    return candidates[-1] if candidates else None


@dataclass
class BenchComparison:
    """Old-vs-new report comparison, with a generous regression verdict."""

    baseline_label: str
    current_label: str
    speedup_e2e: float  # current e2e events/sec over baseline's
    speedup_normalized: float  # same, normalized by each run's calibration
    same_fingerprint: bool
    case_speedups: dict = field(default_factory=dict)
    regressed: bool = False
    fail_factor: float = 2.0
    # Raw (un-normalized) verdict: same formula applied to the plain e2e
    # throughput ratio.  Informational — a slower runner trips this while
    # the normalized gate stays green, which is exactly the distinction
    # worth recording in the saved report.
    regressed_raw: bool = False

    def to_dict(self) -> dict:
        """JSON-ready form, embedded into saved reports by the CLI."""
        return asdict(self)

    def render(self) -> str:
        from repro.metrics.report import format_table

        rows = [
            [name, f"{ratio:.2f}x"]
            for name, ratio in self.case_speedups.items()
        ]
        rows.append(["e2e events/sec", f"{self.speedup_e2e:.2f}x"])
        rows.append(["e2e normalized", f"{self.speedup_normalized:.2f}x"])
        table = format_table(
            ["Case", f"{self.current_label} vs {self.baseline_label}"],
            rows, "bench comparison (throughput ratios; >1 is faster)",
        )
        notes = []
        if not self.same_fingerprint:
            notes.append("note: suite fingerprints differ; "
                         "ratios are indicative only")
        notes.append(
            f"regression gate (normalized e2e {self.fail_factor:.1f}x "
            f"slower): {'FAIL' if self.regressed else 'ok'}"
        )
        notes.append(
            f"raw (un-normalized) e2e {self.fail_factor:.1f}x slower: "
            f"{'FAIL' if self.regressed_raw else 'ok'}"
            " (informational; the normalized verdict is the gate)"
        )
        return table + "\n" + "\n".join(notes)


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    fail_factor: float = 2.0,
) -> BenchComparison:
    """Diff two reports; flags a regression only past ``fail_factor``.

    The gate uses calibration-normalized end-to-end throughput so a slower
    CI runner does not register as a simulator regression; ``fail_factor``
    is deliberately generous (default 2x) so the gate cannot flake on
    ordinary machine noise.
    """
    case_speedups = {}
    for cur in current.cases:
        base = baseline.case(cur.name)
        if base is not None and base.per_sec > 0:
            case_speedups[cur.name] = cur.per_sec / base.per_sec
    speedup = (
        current.e2e_events_per_sec / baseline.e2e_events_per_sec
        if baseline.e2e_events_per_sec > 0 else 0.0
    )
    speedup_norm = (
        current.normalized_e2e / baseline.normalized_e2e
        if baseline.normalized_e2e > 0 else 0.0
    )
    regressed = 0.0 < speedup_norm < (1.0 / fail_factor)
    regressed_raw = 0.0 < speedup < (1.0 / fail_factor)
    return BenchComparison(
        baseline_label=f"{baseline.label}@{baseline.created.split('T')[0]}",
        current_label=f"{current.label}@{current.created.split('T')[0]}",
        speedup_e2e=speedup,
        speedup_normalized=speedup_norm,
        same_fingerprint=baseline.fingerprint == current.fingerprint,
        case_speedups=case_speedups,
        regressed=regressed,
        fail_factor=fail_factor,
        regressed_raw=regressed_raw,
    )
