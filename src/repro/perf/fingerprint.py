"""Source-tree fingerprint for cache keys.

The sweep's on-disk result cache must never serve a result produced by
different simulator code — determinism guarantees hold per source tree,
not across edits.  Hashing every ``repro`` source file into the cache
key makes staleness structurally impossible: change one line anywhere
and every old entry simply stops being looked up.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + content).

    Cached per process: the tree is read once, and a sweep's worth of
    cell fingerprints reuses the digest.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
