"""Performance measurement harness (``griffin-sim bench``).

The perf subsystem keeps the simulator fast by making speed measurable and
regressions visible:

* :mod:`repro.perf.suite` — the pinned micro + end-to-end benchmark suite.
  Every case fixes its workload, policy, system config, scale, and seed so
  two runs of the suite measure the same simulated work.
* :mod:`repro.perf.bench` — runs the suite, records wall time, events/sec,
  peak RSS, and allocation counts into ``BENCH_<date>.json`` (with a config
  fingerprint), and diffs against a previous run.

See ``docs/performance.md`` for how to read the output and the fast-path
invariants the measured hot paths rely on.
"""

from repro.perf.bench import (
    BenchReport,
    compare_reports,
    load_report,
    run_bench,
    save_report,
)
from repro.perf.suite import bench_suite

__all__ = [
    "BenchReport",
    "bench_suite",
    "compare_reports",
    "load_report",
    "run_bench",
    "save_report",
]
