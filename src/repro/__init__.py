"""Griffin: Hardware-Software Support for Efficient Page Migration in
Multi-GPU Systems (HPCA 2020) — a complete Python reproduction.

Public API quickstart::

    from repro import run_workload, compare_policies

    results = compare_policies("SC", ["baseline", "griffin"])
    speedup = results["baseline"].cycles / results["griffin"].cycles

Packages:

* :mod:`repro.core` — Griffin's four mechanisms (DFTM, CPMS, DPC, ACUD).
* :mod:`repro.system` — the assembled multi-GPU machine.
* :mod:`repro.gpu`, :mod:`repro.mem`, :mod:`repro.vm`,
  :mod:`repro.interconnect` — hardware substrates.
* :mod:`repro.workloads` — Table III's ten benchmarks.
* :mod:`repro.harness` — experiment runner and figure regeneration.
"""

from repro.config import (
    FaultConfig,
    GriffinHyperParams,
    SystemConfig,
    nvlink_system,
    paper_system,
    small_system,
    tiny_system,
)
from repro.core import (
    DrainStrategy,
    PageClass,
    PolicyConfig,
    baseline_policy,
    estimate_hardware_cost,
    get_policy,
    griffin_flush_policy,
    griffin_policy,
    list_policies,
)
from repro.harness import RunResult, compare_policies, run_workload
from repro.system import Machine
from repro.workloads import WORKLOAD_SPECS, get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "FaultConfig",
    "GriffinHyperParams",
    "SystemConfig",
    "paper_system",
    "nvlink_system",
    "small_system",
    "tiny_system",
    "DrainStrategy",
    "PageClass",
    "PolicyConfig",
    "baseline_policy",
    "griffin_policy",
    "griffin_flush_policy",
    "get_policy",
    "list_policies",
    "estimate_hardware_cost",
    "RunResult",
    "run_workload",
    "compare_policies",
    "Machine",
    "WORKLOAD_SPECS",
    "get_workload",
    "list_workloads",
    "__version__",
]
