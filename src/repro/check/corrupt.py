"""Seeded state corruption: the sanitizer's drill mode.

A :class:`StateCorruptor` turns each :class:`CorruptionSpec` of the
attached :class:`~repro.check.config.CheckConfig` into an ordinary engine
event (``post_at`` of a bound method with a frozen spec argument).  That
choice does the heavy lifting for replay: a warm
:class:`~repro.sim.snapshot.MachineSnapshot` captured before ``at_cycle``
pickles the pending corruption event along with the rest of the queue, so
forking the snapshot reproduces both the corruption and its detection
deterministically — no re-arming, no wall-clock dependence.

The corruptions are deliberately *silent* with respect to the sanitizer's
bookkeeping: they damage raw simulation state behind the monitors' backs,
exactly like the bug classes they stand in for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.check.config import CorruptionSpec
from repro.sim.component import Component

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine


class StateCorruptor(Component):
    """Applies :class:`CorruptionSpec` drills at their scheduled cycles."""

    def __init__(self, machine: "Machine",
                 specs: Iterable[CorruptionSpec]) -> None:
        super().__init__(machine.engine, "checks.corruptor")
        self.machine = machine
        self.specs = tuple(specs)

    def arm(self) -> None:
        """Schedule every corruption as a plain engine event."""
        for spec in self.specs:
            self.engine.post_at(float(spec.at_cycle), self._apply, spec)

    # ------------------------------------------------------------------

    def _apply(self, spec: CorruptionSpec) -> None:
        self.bump(f"applied_{spec.kind}")
        getattr(self, f"_{spec.kind}")(spec)

    def _pick_page(self, spec: CorruptionSpec, want_device=None) -> int:
        """Resolve the target page (explicit, or first live match)."""
        if spec.page is not None:
            return spec.page
        table = self.machine.page_table
        for page, entry in table._entries.items():
            if want_device is None or entry.device == want_device:
                return page
        # Nothing touched yet: a synthetic high page is still corrupting
        # (it appears in a TLB / count without any table backing).
        return 1 << 30

    def _ownership_count(self, spec: CorruptionSpec) -> None:
        """Skew one GPU's resident count without moving any page."""
        self.machine.page_table._gpu_page_counts[spec.gpu] += 1

    def _ownership_device(self, spec: CorruptionSpec) -> None:
        """Flip one page's owner without maintaining the counts."""
        table = self.machine.page_table
        page = spec.page
        if page is None:
            for candidate, entry in table._entries.items():
                if entry.device != spec.gpu:
                    page = candidate
                    break
            else:
                page = 1 << 30
        entry = table.entry(page)
        entry.device = spec.gpu
        entry.migrating = False

    def _tlb_stale(self, spec: CorruptionSpec) -> None:
        """Insert a translation the page table contradicts."""
        gpu = self.machine.gpus[spec.gpu]
        page = spec.page
        if page is None:
            table = self.machine.page_table
            for candidate, entry in table._entries.items():
                if entry.device != spec.gpu:
                    page = candidate
                    break
            else:
                page = 1 << 30
        gpu.l2_tlb.insert(page, spec.gpu)

    def _past_event(self, spec: CorruptionSpec) -> None:
        """Push an event timestamped before the current cycle."""
        past = max(0.0, self.engine.now - 1000.0)
        self.engine._queue.push_entry(past, 0, self._noop, ())

    def _noop(self) -> None:
        """Target of the past_event drill (picklable bound method)."""
