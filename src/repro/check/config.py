"""Configuration of the runtime sanitizer (see docs/resilience.md).

A :class:`CheckConfig` selects which protocol monitors run and how crash
evidence is collected.  The contract mirrors :class:`FaultConfig`: a run
with no config attached (``checks=None``) has *zero* hooks installed and
stays byte-identical to the pre-sanitizer simulator; a run with all
monitors enabled must also stay byte-identical, because monitors are pure
observers — they never schedule events or mutate simulation state.

:class:`CorruptionSpec` is the sanitizer's drill mode: a seeded,
deterministic state corruption applied at an absolute cycle, used by the
test suite and the chaos CI job to prove each monitor actually fires.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

CORRUPTION_KINDS = frozenset({
    "ownership_count",
    "ownership_device",
    "tlb_stale",
    "past_event",
})


@dataclass(frozen=True)
class CorruptionSpec:
    """One seeded state corruption, applied at an absolute cycle.

    The corruption is scheduled as an ordinary engine event (a bound
    method of :class:`repro.check.corrupt.StateCorruptor`), so a warm
    :class:`~repro.sim.snapshot.MachineSnapshot` taken before ``at_cycle``
    carries the pending corruption with it — replaying the snapshot
    reproduces both the corruption and its detection deterministically.

    Kinds:
        ownership_count: skew one GPU's resident-page count without
            moving any page (breaks page-ownership conservation).
        ownership_device: flip one page's owner in its
            :class:`~repro.vm.page_table.PageEntry` without maintaining
            the occupancy counts (a lost/duplicated page).
        tlb_stale: insert a TLB translation the page table contradicts
            (breaks VM coherence).
        past_event: push an event timestamped before the current cycle
            straight into the queue (breaks monotonic time).

    Attributes:
        kind: One of :data:`CORRUPTION_KINDS`.
        at_cycle: Absolute cycle at which the corruption is applied.
        gpu: Target GPU id (count/device/TLB corruptions).
        page: Target page, or None to pick a live page at apply time.
    """

    kind: str
    at_cycle: float
    gpu: int = 0
    page: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in CORRUPTION_KINDS:
            raise ValueError(
                f"unknown corruption kind {self.kind!r}; valid choices: "
                f"{', '.join(sorted(CORRUPTION_KINDS))}"
            )
        if self.at_cycle < 0:
            raise ValueError(f"at_cycle must be >= 0, got {self.at_cycle}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CheckConfig:
    """Which invariant monitors run, and how crash evidence is collected.

    All monitors default to enabled; ``CheckConfig()`` is the ordinary
    "check everything" configuration.  Attach one via
    ``run_workload(checks=...)`` or ``Sweep.run(checks=...)``.

    Attributes:
        ownership: Page-ownership conservation — exactly one owner per
            page, occupancy counts consistent with the entries, CPMS
            fault batches never lose or duplicate a queued fault.
        vm_coherence: No TLB entry maps a page the page table says lives
            elsewhere; targeted shootdowns leave no stale entry behind.
        drain: ACUD drain protocol — no CU issues while its GPU drains,
            *Continue* never precedes drain completion, the page copy
            only starts from the ``drained`` state.
        event_queue: Engine sanity — event timestamps never move
            backwards, and nothing is scheduled on a finished, paused
            engine.
        retry: Fault-retry lifecycle — every dropped page transfer is
            retried or explicitly degraded to pinned-DCA, never silently
            forgotten.
        ring_size: Events kept in the crash-bundle ring buffer
            (0 disables the ring).
        snapshot_interval: Cadence (cycles) of warm
            :class:`~repro.sim.snapshot.MachineSnapshot` captures for
            crash bundles; None keeps only the initial cycle-0 snapshot.
        bundle_on_exhaustion: Also write an (informational) bundle when
            a migration exhausts its retry budget, without aborting the
            run.
        corruptions: Seeded corruption drills to arm (tests/chaos CI).
    """

    ownership: bool = True
    vm_coherence: bool = True
    drain: bool = True
    event_queue: bool = True
    retry: bool = True
    ring_size: int = 256
    snapshot_interval: Optional[int] = None
    bundle_on_exhaustion: bool = True
    corruptions: Tuple[CorruptionSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.ring_size < 0:
            raise ValueError(f"ring_size must be >= 0, got {self.ring_size}")
        if self.snapshot_interval is not None and self.snapshot_interval <= 0:
            raise ValueError(
                f"snapshot_interval must be positive, got "
                f"{self.snapshot_interval}"
            )

    @property
    def enabled(self) -> bool:
        """True when at least one monitor is on (hooks get installed)."""
        return (self.ownership or self.vm_coherence or self.drain
                or self.event_queue or self.retry)

    def to_dict(self) -> dict:
        """JSON-able form (crash-bundle manifests)."""
        data = dataclasses.asdict(self)
        data["corruptions"] = [c.to_dict() for c in self.corruptions]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CheckConfig":
        """Rebuild from :meth:`to_dict` output.

        Corruption specs are *not* re-armed: a replayed snapshot already
        carries any pending corruption event inside its queue, so arming
        them again would apply each corruption twice.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in fields}
        kwargs["corruptions"] = ()
        return cls(**kwargs)
