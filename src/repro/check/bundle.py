"""Crash bundles: everything needed to triage and replay a failed run.

A bundle is a directory with two files:

* ``manifest.json`` — the human/CI-readable half: run identity (workload,
  policy, seed, scale), the sanitizer config, the canonicalized fault
  plan, the source-tree fingerprint, the violation report (or error), the
  ring buffer of the last N events, and the coordinates of the warm
  snapshot.
* ``snapshot.pkl`` — the machine half: the nearest warm
  :class:`~repro.sim.snapshot.MachineSnapshot` preceding the failure plus
  the workload coordinates, so ``repro replay <bundle>`` can fork it and
  re-execute the tail deterministically (any pending
  :class:`~repro.check.corrupt.StateCorruptor` event travels inside the
  snapshot's queue).

Bundle kinds: ``violation`` (a monitor fired), ``stall`` (watchdog or
event budget), ``error`` (unhandled handler exception), and
``retry_exhaustion`` (informational — the run completed but degraded a
page to pinned-DCA).
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"
SNAPSHOT_NAME = "snapshot.pkl"

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.runtime import CheckRuntime
    from repro.sim.snapshot import MachineSnapshot
    from repro.system.machine import Machine


@dataclass
class CrashBundle:
    """A loaded bundle: manifest + the warm snapshot it shipped with."""

    path: str
    manifest: dict
    snapshot: "MachineSnapshot"
    workload_meta: tuple  # (abbrev, seed, scale)

    @property
    def kind(self) -> str:
        return self.manifest["kind"]


def write_crash_bundle(
    bundle_dir,
    kind: str,
    machine: "Machine",
    runtime: "CheckRuntime",
    *,
    workload: str,
    policy: str,
    seed: int,
    scale: float,
    max_events: Optional[int] = None,
    stall_threshold: Optional[int] = None,
    violation: Optional[dict] = None,
    error: Optional[BaseException] = None,
) -> str:
    """Persist a crash bundle; returns the bundle directory path."""
    # Local import: sweep imports the harness stack; the check package
    # stays importable on its own.
    from repro.harness.sweep import _canon
    from repro.perf.fingerprint import code_fingerprint

    engine = machine.engine
    root = Path(bundle_dir)
    root.mkdir(parents=True, exist_ok=True)
    # :g keeps the stem short even when retry backoff has pushed the
    # clock to astronomical cycle counts.
    stem = f"{workload}-{policy}-s{seed}-{kind}-c{engine.now:g}"
    path = root / stem
    n = 1
    while path.exists():
        n += 1
        path = root / f"{stem}-{n}"
    path.mkdir()

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "workload": workload,
        "policy": policy,
        "seed": seed,
        "scale": scale,
        "failed_cycle": engine.now,
        "events_executed": engine.events_executed,
        "max_events": max_events,
        "stall_threshold": stall_threshold,
        "checks": runtime.config.to_dict(),
        "faults": _canon(machine.faults) if machine.faults else None,
        "violation": violation,
        "error_type": type(error).__name__ if error is not None else None,
        "error_message": str(error) if error is not None else None,
        "exhaustions": [
            {"page": page, "cycle": cycle}
            for page, cycle in runtime.exhaustions
        ],
        "ring": runtime.ring_lines(),
        "code_fingerprint": code_fingerprint(),
        "snapshot_cycle": runtime.last_snapshot_cycle,
        "snapshot_events": runtime.last_snapshot_events,
        "has_snapshot": runtime.last_snapshot is not None,
        # Protocol-monitor state as of the snapshot, so replay's fresh
        # monitors resume mid-protocol instead of misfiring.
        "monitor_state": runtime.last_monitor_state,
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=repr)
    )
    if runtime.last_snapshot is not None:
        payload = (runtime.last_snapshot, (workload, seed, scale))
        (path / SNAPSHOT_NAME).write_bytes(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
    return str(path)


def load_bundle(path) -> CrashBundle:
    """Load a bundle written by :func:`write_crash_bundle`."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{root} is not a crash bundle (missing {MANIFEST_NAME})"
        )
    manifest = json.loads(manifest_path.read_text())
    snapshot_path = root / SNAPSHOT_NAME
    if not snapshot_path.exists():
        raise FileNotFoundError(
            f"bundle {root} carries no machine snapshot "
            f"({SNAPSHOT_NAME} missing); it cannot be replayed"
        )
    snapshot, meta = pickle.loads(snapshot_path.read_bytes())
    return CrashBundle(
        path=str(root), manifest=manifest, snapshot=snapshot,
        workload_meta=meta,
    )
