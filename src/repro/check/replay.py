"""Deterministic crash-bundle replay and cycle-window bisection.

Replay forks the bundle's warm :class:`~repro.sim.snapshot.MachineSnapshot`,
re-attaches a fresh :class:`~repro.check.runtime.CheckRuntime` built from
the manifest's sanitizer config, and runs the tail of the simulation.
Because the snapshot layer is byte-exact (PR 4) and any pending
:class:`~repro.check.corrupt.StateCorruptor` event travels inside the
snapshot's queue, the tail re-executes the identical event stream — so a
recorded violation reproduces with the identical report, field for field.

Bisection exploits the same property: every probe is an independent fork
of the same snapshot, run to a candidate cycle and audited there.  The
predicate "state is corrupt at cycle c, or a monitor fires at or before
c" is monotone in c, so binary search narrows a late detection (often at
finalize, far from the bug) down to a cycle window of the requested
tolerance — the sanitizer's answer to "when did this actually go wrong?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.check.bundle import CrashBundle, load_bundle
from repro.check.config import CheckConfig
from repro.check.monitors import InvariantViolation, ViolationReport
from repro.check.runtime import CheckRuntime
from repro.sim.engine import SimulationStall


@dataclass
class ReplayOutcome:
    """Result of re-executing a bundle against its recorded failure."""

    reproduced: bool
    kind: str
    expected: Optional[dict]
    observed: Optional[dict]
    detail: str = ""

    def render(self) -> str:
        lines = [
            ("reproduced: the replayed run failed identically"
             if self.reproduced else
             "NOT reproduced: the replayed run diverged from the bundle"),
            f"  kind: {self.kind}",
        ]
        if self.detail:
            lines.append(f"  {self.detail}")
        if not self.reproduced:
            lines.append(f"  expected: {self.expected}")
            lines.append(f"  observed: {self.observed}")
        return "\n".join(lines)


@dataclass
class BisectResult:
    """The minimal cycle window a bisection narrowed a violation to."""

    clean_cycle: float
    violated_cycle: float
    report: Optional[ViolationReport]
    probes: list = field(default_factory=list)  # (cycle, verdict)

    @property
    def window(self) -> float:
        return self.violated_cycle - self.clean_cycle

    def render(self) -> str:
        lines = [
            "bisected violation window: "
            f"clean at t={self.clean_cycle:.0f}, violated by "
            f"t={self.violated_cycle:.0f} "
            f"(window {self.window:.0f} cycles, {len(self.probes)} probes)",
        ]
        for cycle, verdict in self.probes:
            lines.append(f"  probe t={cycle:.0f}: {verdict}")
        if self.report is not None:
            lines.append(self.report.render())
        return "\n".join(lines)


def _attach_fork(bundle: CrashBundle):
    """Fork the bundle snapshot with a fresh sanitizer runtime attached.

    ``CheckConfig.from_dict`` drops corruption specs on purpose: any
    pending corruption event is already inside the forked queue.
    """
    machine = bundle.snapshot.fork()
    config = CheckConfig.from_dict(bundle.manifest["checks"])
    runtime = CheckRuntime.attach(machine, config)
    runtime.load_monitor_state(bundle.manifest.get("monitor_state") or {})
    return machine, runtime


def replay_bundle(path, max_events: Optional[int] = None) -> ReplayOutcome:
    """Re-execute a bundle; compare the outcome with the recorded one.

    ``max_events`` (like the manifest's recorded value it overrides) is
    the run's *total* budget from cycle zero: the forked engine keeps its
    cumulative ``events_executed``, so the checked drive loop subtracts
    what the prefix already consumed — exactly as the original run did.
    """
    bundle = load_bundle(path)
    kind = bundle.kind
    machine, runtime = _attach_fork(bundle)
    budget = (
        max_events if max_events is not None
        else bundle.manifest.get("max_events")
    )
    stall = bundle.manifest.get("stall_threshold")

    # Lazy import: the harness already imports repro.check lazily; keep
    # the reverse edge out of module import time too.
    from repro.harness.runner import drive_checked

    observed_kind = "completed"
    observed: Optional[dict] = None
    error: Optional[BaseException] = None
    try:
        drive_checked(
            machine, runtime, runtime.config,
            max_events=budget, stall_threshold=stall,
        )
    except InvariantViolation as exc:
        observed_kind = "violation"
        observed = exc.report.to_dict()
    except SimulationStall as exc:
        observed_kind = "stall"
        error = exc
    except Exception as exc:  # noqa: BLE001 - replay mirrors any failure
        observed_kind = "error"
        error = exc

    if kind == "violation":
        expected = bundle.manifest.get("violation")
        reproduced = observed_kind == "violation" and observed == expected
        return ReplayOutcome(
            reproduced, kind, expected, observed,
            detail=(f"violation at t={observed['cycle']:.0f} "
                    f"[{observed['monitor']}]" if observed else
                    f"run ended as {observed_kind!r} instead of violating"),
        )
    if kind in ("stall", "error"):
        expected = {
            "error_type": bundle.manifest.get("error_type"),
            "failed_cycle": bundle.manifest.get("failed_cycle"),
        }
        observed = {
            "error_type": type(error).__name__ if error is not None else None,
            "failed_cycle": machine.engine.now,
        }
        reproduced = (
            observed_kind == kind
            and observed["error_type"] == expected["error_type"]
            and observed["failed_cycle"] == expected["failed_cycle"]
        )
        return ReplayOutcome(
            reproduced, kind, expected, observed,
            detail=f"run ended as {observed_kind!r} at "
                   f"t={machine.engine.now:.0f}",
        )
    if kind == "retry_exhaustion":
        cut = bundle.snapshot.cycle
        expected_list = [
            (e["page"], e["cycle"])
            for e in bundle.manifest.get("exhaustions", [])
            if e["cycle"] >= cut
        ]
        reproduced = (
            observed_kind == "completed"
            and runtime.exhaustions == expected_list
        )
        return ReplayOutcome(
            reproduced, kind,
            {"exhaustions": expected_list},
            {"exhaustions": runtime.exhaustions, "ended": observed_kind},
            detail=f"{len(runtime.exhaustions)} retry exhaustion(s) observed",
        )
    raise ValueError(f"unknown bundle kind {kind!r}")


def bisect_bundle(
    path, tolerance: float = 1000.0, max_probes: int = 40,
) -> BisectResult:
    """Narrow a violation bundle to a minimal introduction window.

    Each probe forks the bundle snapshot, runs to a candidate cycle, and
    declares it *violated* if a monitor fired on the way or the full-state
    audit fails there, *clean* otherwise.  Returns the tightest
    ``(clean_cycle, violated_cycle]`` window found within ``tolerance``.
    """
    bundle = load_bundle(path)
    if bundle.kind != "violation":
        raise ValueError(
            f"only 'violation' bundles can be bisected, got {bundle.kind!r}"
        )
    stall = bundle.manifest.get("stall_threshold")
    probes: list = []
    last_report: Optional[ViolationReport] = None

    def probe(cycle: float):
        machine, runtime = _attach_fork(bundle)
        try:
            machine.engine.run(until=cycle, stall_threshold=stall)
        except InvariantViolation as exc:
            probes.append((cycle, f"violated (detected t={machine.engine.now:.0f})"))
            return "violated", machine.engine.now, exc.report
        report = runtime.audit_now()
        if report is not None:
            probes.append((cycle, "violated (audit)"))
            return "violated", cycle, report
        probes.append((cycle, "clean"))
        return "clean", cycle, None

    lo = bundle.snapshot.cycle
    hi = bundle.manifest["failed_cycle"]
    verdict, cycle, report = probe(lo)
    if verdict == "violated":
        # Already bad at (or before) the first probe point: the snapshot
        # itself precedes detection only because the fault was in flight.
        return BisectResult(lo, cycle, report, probes)
    while hi - lo > tolerance and len(probes) < max_probes:
        mid = (lo + hi) / 2.0
        verdict, cycle, report = probe(mid)
        if verdict == "violated":
            hi = min(hi, cycle)
            last_report = report
        else:
            lo = mid
    if last_report is None:
        # Pin down the report at the final upper bound.
        verdict, cycle, report = probe(hi)
        last_report = report
    return BisectResult(lo, hi, last_report, probes)
