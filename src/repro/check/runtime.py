"""The sanitizer runtime: monitor fan-out, event ring, crash evidence.

One :class:`CheckRuntime` per checked run.  :meth:`CheckRuntime.attach`
installs it at every instrumented seam — the engine's ``_monitor`` tap,
``Machine.checks`` (driver hooks), the access path and each GPU's drain
controller — and every seam guards its hook behind a single ``is None``
test, so unchecked runs pay nothing.

The runtime is deliberately a *pure observer*: it never schedules events
and never mutates simulation state, which is what lets the parity suite
assert that a fully-checked clean run is byte-identical to an unchecked
one.  The single exception is the optional :class:`StateCorruptor`, whose
whole purpose is to mutate state (the sanitizer's drill mode).

On a violation the runtime raises
:class:`~repro.check.monitors.InvariantViolation`; the checked harness
path (:func:`repro.harness.runner.run_workload` with ``checks=``) catches
it and writes a crash bundle (:mod:`repro.check.bundle`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.check.config import CheckConfig
from repro.check.monitors import (
    DrainMonitor,
    EventQueueMonitor,
    InvariantViolation,
    OwnershipMonitor,
    RetryMonitor,
    ViolationReport,
    VMCoherenceMonitor,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.snapshot import MachineSnapshot
    from repro.system.machine import Machine


class CheckRuntime:
    """Dispatches seam hooks to the enabled monitors for one run."""

    def __init__(self, machine: "Machine", config: CheckConfig) -> None:
        self.machine = machine
        self.config = config
        self.ownership = OwnershipMonitor(machine) if config.ownership else None
        self.vm = VMCoherenceMonitor(machine) if config.vm_coherence else None
        self.drain = DrainMonitor(machine) if config.drain else None
        self.events = (
            EventQueueMonitor(machine.engine) if config.event_queue else None
        )
        self.retry = RetryMonitor(machine) if config.retry else None
        # Raw (time, priority, seq, callback, args) tuples; formatted
        # lazily so the hot path only pays a deque append.
        self._ring: Optional[deque] = (
            deque(maxlen=config.ring_size) if config.ring_size else None
        )
        self.last_snapshot: Optional["MachineSnapshot"] = None
        self.last_snapshot_cycle = 0.0
        self.last_snapshot_events = 0
        self.last_monitor_state: dict = {}
        # (page, cycle) per retry-budget exhaustion (informational).
        self.exhaustions: list[tuple[int, float]] = []
        self.violation: Optional[ViolationReport] = None
        self.corruptor = None

    @classmethod
    def attach(cls, machine: "Machine", config: CheckConfig) -> "CheckRuntime":
        """Build a runtime and install it at every instrumented seam."""
        runtime = cls(machine, config)
        machine.checks = runtime
        machine.engine._monitor = runtime
        # The drain monitor needs both sides of the protocol: issue
        # attempts (access path) and the controller's state transitions.
        machine.access_path._checks = runtime if config.drain else None
        for gpu in machine.gpus:
            gpu.drain_controller._checks = (
                runtime if config.drain else None
            )
        if config.corruptions:
            from repro.check.corrupt import StateCorruptor

            runtime.corruptor = StateCorruptor(machine, config.corruptions)
            runtime.corruptor.arm()
        return runtime

    def detach(self) -> None:
        """Remove every seam hook (used by replay probes before re-use)."""
        machine = self.machine
        machine.checks = None
        machine.engine._monitor = None
        machine.access_path._checks = None
        for gpu in machine.gpus:
            gpu.drain_controller._checks = None

    # ------------------------------------------------------------------

    def _fail(self, report: ViolationReport) -> None:
        self.violation = report
        raise InvariantViolation(report)

    # ------------------------------------------------------------------
    # Engine seam
    # ------------------------------------------------------------------

    def on_execute(self, time, priority, seq, callback, args) -> None:
        ring = self._ring
        if ring is not None:
            ring.append((time, priority, seq, callback, args))
        ev = self.events
        if ev is not None:
            report = ev.check_time(time)
            if report is not None:
                self._fail(report)
        rm = self.retry
        if rm is not None and rm._open:
            report = rm.check_boundary()
            if report is not None:
                self._fail(report)

    def on_schedule(self, callback) -> None:
        ev = self.events
        if ev is not None:
            report = ev.check_schedule(callback)
            if report is not None:
                self._fail(report)

    def on_finish(self, now: float) -> None:
        if self.events is not None:
            self.events.on_finish(now)

    # ------------------------------------------------------------------
    # Access-path seam (ACUD: no CU issues while its GPU drains)
    # ------------------------------------------------------------------

    def on_issue(self, txn) -> None:
        report = self.drain.check_issue(txn)
        if report is not None:
            self._fail(report)

    # ------------------------------------------------------------------
    # Drain-controller seam
    # ------------------------------------------------------------------

    def on_drain_start(self, gpu_id: int) -> None:
        report = self.drain.on_drain_start(gpu_id)
        if report is not None:
            self._fail(report)

    def on_drain_complete(self, gpu_id: int) -> None:
        report = self.drain.on_drain_complete(gpu_id)
        if report is not None:
            self._fail(report)

    def on_resume(self, gpu_id: int) -> None:
        report = self.drain.on_resume(gpu_id)
        if report is not None:
            self._fail(report)

    def on_copy_start(self, gpu_id: int, pages: list) -> None:
        if self.drain is not None:
            report = self.drain.check_copy_start(gpu_id, pages)
            if report is not None:
                self._fail(report)

    # ------------------------------------------------------------------
    # Driver seam
    # ------------------------------------------------------------------

    def on_fault_queued(self, page: int) -> None:
        if self.ownership is not None:
            self.ownership.note_fault_queued(page)

    def on_fault_batch(self, batch: list) -> None:
        if self.ownership is not None:
            report = self.ownership.check_batch(batch)
            if report is not None:
                self._fail(report)

    def on_transfer_dropped(self, page: int) -> None:
        if self.retry is not None:
            self.retry.on_dropped(page)

    def on_transfer_retry(self, page: int) -> None:
        if self.retry is not None:
            report = self.retry.on_retry(page)
            if report is not None:
                self._fail(report)

    def on_transfer_ok(self, page: int) -> None:
        if self.retry is not None:
            self.retry.on_arrived(page)

    def on_retry_exhausted(self, page: int) -> None:
        self.exhaustions.append((page, self.machine.engine.now))
        if self.retry is not None:
            report = self.retry.on_exhausted(page)
            if report is not None:
                self._fail(report)

    def on_page_pinned(self, page: int) -> None:
        if self.retry is not None:
            report = self.retry.on_pinned(page)
            if report is not None:
                self._fail(report)

    def on_shootdown(self, gpu_id: int, pages) -> None:
        if self.vm is not None:
            report = self.vm.check_shootdown(gpu_id, pages)
            if report is not None:
                self._fail(report)

    def on_migration_complete(self, page: int, src: int, dst: int) -> None:
        if self.ownership is not None:
            report = self.ownership.check_completion(page, src, dst)
            if report is not None:
                self._fail(report)
        if self.vm is not None and dst >= 0:
            report = self.vm.check_migrated(page, dst)
            if report is not None:
                self._fail(report)

    def on_round_complete(self) -> None:
        """A whole migration round retired: run the O(pages) audits."""
        report = self.audit_now()
        if report is not None:
            self._fail(report)

    # ------------------------------------------------------------------
    # Audits, snapshots, finalization
    # ------------------------------------------------------------------

    def audit_now(self) -> Optional[ViolationReport]:
        """Run the full-state audits; first violation report or None."""
        if self.ownership is not None:
            report = self.ownership.audit()
            if report is not None:
                return report
        if self.vm is not None:
            report = self.vm.audit()
            if report is not None:
                return report
        return None

    def on_snapshot_point(self) -> None:
        """Audit before a warm snapshot so bundles never capture a state
        that is already corrupt."""
        report = self.audit_now()
        if report is not None:
            self._fail(report)

    def note_snapshot(self, snapshot: "MachineSnapshot") -> None:
        self.last_snapshot = snapshot
        self.last_snapshot_cycle = self.machine.engine.now
        self.last_snapshot_events = self.machine.engine.events_executed
        self.last_monitor_state = self.monitor_state()

    def monitor_state(self) -> dict:
        """JSON-able protocol-monitor state (bundled with each snapshot).

        The drain, retry, ownership, and event-queue monitors accumulate
        state across events; a replay that attached fresh monitors to a
        mid-run fork would misfire on the first transition out of a
        protocol phase it never saw begin.  Bundles therefore record this
        alongside the snapshot for :meth:`load_monitor_state` to restore.
        """
        state: dict = {}
        if self.ownership is not None:
            state["ownership"] = {
                "queued": {
                    str(page): count
                    for page, count in self.ownership._queued_faults.items()
                },
            }
        if self.drain is not None:
            state["drain"] = list(self.drain._state)
        if self.events is not None:
            state["events"] = {
                "last_time": self.events._last_time,
                "finished_at": self.events._finished_at,
            }
        if self.retry is not None:
            state["retry"] = {
                "open": {
                    str(page): phase
                    for page, phase in self.retry._open.items()
                },
                "awaiting": sorted(self.retry._awaiting_retry),
            }
        return state

    def load_monitor_state(self, state: dict) -> None:
        """Restore :meth:`monitor_state` output (JSON keys arrive as str)."""
        if self.ownership is not None and "ownership" in state:
            self.ownership._queued_faults = {
                int(page): count
                for page, count in state["ownership"]["queued"].items()
            }
        if self.drain is not None and "drain" in state:
            self.drain._state = list(state["drain"])
        if self.events is not None and "events" in state:
            self.events._last_time = state["events"]["last_time"]
            self.events._finished_at = state["events"]["finished_at"]
        if self.retry is not None and "retry" in state:
            self.retry._open = {
                int(page): phase
                for page, phase in state["retry"]["open"].items()
            }
            self.retry._awaiting_retry = set(state["retry"]["awaiting"])

    def finalize(self) -> None:
        """End-of-run invariants (raises on the first violation).

        Legitimate mid-protocol state at workload completion — drains in
        flight, a pending CPMS batch, pages whose retry event is still
        queued — is *not* flagged; only always-true invariants are.
        """
        if self.retry is not None:
            report = self.retry.finalize()
            if report is not None:
                self._fail(report)
        if self.ownership is not None:
            report = self.ownership.finalize()
            if report is not None:
                self._fail(report)
        if self.vm is not None:
            report = self.vm.audit()
            if report is not None:
                self._fail(report)

    # ------------------------------------------------------------------
    # Crash-bundle support
    # ------------------------------------------------------------------

    def ring_lines(self, limit: Optional[int] = None) -> list[str]:
        """The ring buffer formatted like the engine's event dumps."""
        if self._ring is None:
            return []
        entries = list(self._ring)
        if limit is not None:
            entries = entries[-limit:]
        lines = []
        for time, priority, seq, callback, args in entries:
            name = getattr(callback, "__qualname__", repr(callback))
            shown = ", ".join(repr(a)[:60] for a in args[:4])
            lines.append(f"t={time:.1f} prio={priority} seq={seq} {name}({shown})")
        return lines
