"""Runtime sanitizer: protocol monitors, crash bundles, replay/bisect.

See docs/resilience.md for the workflow.  Public surface:

* :class:`CheckConfig` / :class:`CorruptionSpec` — what to monitor, and
  the seeded corruption drills used to prove monitors fire.
* :class:`CheckRuntime` — per-run monitor fan-out (attached by the
  harness when ``checks=`` is passed).
* :class:`InvariantViolation` / :class:`ViolationReport` — what a fired
  monitor raises/carries.
* :func:`write_crash_bundle` / :func:`load_bundle` — crash evidence.
* :func:`replay_bundle` / :func:`bisect_bundle` — deterministic
  re-execution and cycle-window narrowing.
"""

from repro.check.bundle import CrashBundle, load_bundle, write_crash_bundle
from repro.check.config import CORRUPTION_KINDS, CheckConfig, CorruptionSpec
from repro.check.monitors import InvariantViolation, ViolationReport
from repro.check.replay import (
    BisectResult,
    ReplayOutcome,
    bisect_bundle,
    replay_bundle,
)
from repro.check.runtime import CheckRuntime

__all__ = [
    "CORRUPTION_KINDS",
    "BisectResult",
    "CheckConfig",
    "CheckRuntime",
    "CorruptionSpec",
    "CrashBundle",
    "InvariantViolation",
    "ReplayOutcome",
    "ViolationReport",
    "bisect_bundle",
    "load_bundle",
    "replay_bundle",
    "write_crash_bundle",
]
