"""The protocol monitors behind the sanitizer (paper §III invariants).

Each monitor is a pure observer over one protocol seam: it receives hook
calls (or walks live state during an audit) and returns a
:class:`ViolationReport` when an invariant is broken, None otherwise.
Monitors never schedule events and never mutate simulation state — that
is what keeps checks-enabled runs byte-identical to unchecked runs, and
the parity suite pins it.

The five monitors map onto the tentpole invariants:

* :class:`OwnershipMonitor` — page-ownership conservation across
  DFTM/CPMS/DPC migration rounds (one owner per page, occupancy counts
  consistent, no CPMS batch loses or duplicates a queued fault).
* :class:`VMCoherenceMonitor` — no TLB entry maps a page the page table
  says lives elsewhere; targeted shootdowns leave nothing stale behind.
* :class:`DrainMonitor` — the ACUD state machine: ``idle`` →
  ``draining`` → ``drained`` → (*Continue*) → ``idle``; no CU issues
  during a drain, and the page copy only begins from ``drained``.
* :class:`EventQueueMonitor` — simulated time is monotonic; nothing is
  scheduled on a finished, paused engine.
* :class:`RetryMonitor` — every dropped page transfer is either retried
  or degraded to pinned-DCA before its handling event ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import SimulationError
from repro.vm.address import CPU_DEVICE

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine


@dataclass
class ViolationReport:
    """One detected invariant violation (JSON-able for bundle manifests)."""

    monitor: str
    cycle: float
    message: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "monitor": self.monitor,
            "cycle": self.cycle,
            "message": self.message,
            "details": self.details,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ViolationReport":
        return cls(
            monitor=data["monitor"],
            cycle=data["cycle"],
            message=data["message"],
            details=data.get("details", {}),
        )

    def render(self) -> str:
        lines = [f"[{self.monitor}] t={self.cycle:.0f}: {self.message}"]
        for key, value in self.details.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


class InvariantViolation(SimulationError):
    """A protocol monitor detected a broken invariant.

    Carries the structured :class:`ViolationReport`; the checked runner
    additionally attaches ``bundle_path`` when a crash bundle was
    written, so :class:`~repro.harness.results.FailedRun` can surface it.
    """

    def __init__(self, report: ViolationReport) -> None:
        super().__init__(report.render())
        self.report = report
        self.bundle_path: Optional[str] = None


# ----------------------------------------------------------------------
# (a) Page-ownership conservation
# ----------------------------------------------------------------------


class OwnershipMonitor:
    """One owner per page; counts conserved; CPMS batches lose nothing."""

    name = "ownership"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        # page -> times queued for CPU-fault migration and not yet flushed.
        self._queued_faults: dict[int, int] = {}

    def note_fault_queued(self, page: int) -> None:
        self._queued_faults[page] = self._queued_faults.get(page, 0) + 1

    def check_batch(self, batch: list) -> Optional[ViolationReport]:
        """A CPMS batch flushed: every fault must have been queued once."""
        now = self.machine.engine.now
        for fault in batch:
            queued = self._queued_faults.get(fault.page, 0)
            if queued <= 0:
                return ViolationReport(
                    self.name, now,
                    f"CPMS flushed a fault for page {fault.page} that was "
                    "never queued (duplicated or fabricated fault)",
                    {"page": fault.page, "batch": [f.page for f in batch]},
                )
            if queued == 1:
                del self._queued_faults[fault.page]
            else:
                self._queued_faults[fault.page] = queued - 1
        return None

    def check_completion(self, page: int, src: int,
                         dst: int) -> Optional[ViolationReport]:
        """A migration reported complete: the table must agree."""
        table = self.machine.page_table
        entry = table._entries.get(page)
        now = self.machine.engine.now
        if entry is None:
            return ViolationReport(
                self.name, now,
                f"migration completed for unknown page {page}",
                {"page": page, "src": src, "dst": dst},
            )
        if entry.device != dst:
            return ViolationReport(
                self.name, now,
                f"page {page} migrated {src}->{dst} but the page table "
                f"says it lives on device {entry.device}",
                {"page": page, "src": src, "dst": dst,
                 "table_device": entry.device},
            )
        if entry.migrating:
            return ViolationReport(
                self.name, now,
                f"page {page} still marked migrating after its migration "
                f"completed",
                {"page": page, "src": src, "dst": dst},
            )
        return None

    def audit(self) -> Optional[ViolationReport]:
        """Full conservation audit: recount residency from the entries."""
        table = self.machine.page_table
        now = self.machine.engine.now
        counts = [0] * table.num_gpus
        for page, entry in table._entries.items():
            device = entry.device
            if device < CPU_DEVICE or device >= table.num_gpus:
                return ViolationReport(
                    self.name, now,
                    f"page {page} owned by nonexistent device {device}",
                    {"page": page, "device": device,
                     "num_gpus": table.num_gpus},
                )
            if device >= 0:
                counts[device] += 1
        tracked = table.gpu_page_counts()
        if counts != tracked:
            return ViolationReport(
                self.name, now,
                "per-GPU resident-page counts diverged from the page "
                "table (a page was lost or duplicated)",
                {"recounted": counts, "tracked": tracked},
            )
        return None

    def finalize(self) -> Optional[ViolationReport]:
        """End of run: every queued fault must still be in the batcher.

        A batch pending at the end of the workload is legitimate (the run
        ended mid-protocol); a fault this monitor saw queued that the
        batcher no longer holds — and that never flushed — was lost.
        """
        now = self.machine.engine.now
        pending: dict[int, int] = {}
        for fault in self.machine.driver.batcher._queue:
            pending[fault.page] = pending.get(fault.page, 0) + 1
        for page, queued in self._queued_faults.items():
            if pending.get(page, 0) < queued:
                return ViolationReport(
                    self.name, now,
                    f"CPMS lost a queued fault for page {page}: it was "
                    "neither flushed nor left pending",
                    {"page": page, "queued": queued,
                     "still_pending": pending.get(page, 0)},
                )
        return self.audit()


# ----------------------------------------------------------------------
# (b) VM coherence
# ----------------------------------------------------------------------


class VMCoherenceMonitor:
    """TLB contents always agree with the page table."""

    name = "vm_coherence"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine

    def _gpu_tlbs(self, gpu):
        yield "l2", gpu.l2_tlb
        for cu_id, tlb in enumerate(gpu.l1_tlbs):
            yield f"l1[{cu_id}]", tlb

    def audit(self) -> Optional[ViolationReport]:
        """Every cached translation must be local and table-confirmed."""
        table = self.machine.page_table
        now = self.machine.engine.now
        for gpu in self.machine.gpus:
            gid = gpu.gpu_id
            for label, tlb in self._gpu_tlbs(gpu):
                for page, device in tlb.entries():
                    entry = table._entries.get(page)
                    resident = entry.device if entry is not None else None
                    if device != gid or resident != gid:
                        return ViolationReport(
                            self.name, now,
                            f"GPU {gid} {label} TLB caches page {page} -> "
                            f"device {device}, but the page table says it "
                            f"lives on {resident}",
                            {"gpu": gid, "tlb": label, "page": page,
                             "cached_device": device,
                             "table_device": resident},
                        )
        return None

    def check_shootdown(self, gpu_id: int,
                        pages) -> Optional[ViolationReport]:
        """Post-shootdown cleanliness: the invalidated pages are gone.

        ``pages=None`` means a full flush (pipeline-flush strategy): the
        GPU's TLBs must be completely empty.
        """
        gpu = self.machine.gpus[gpu_id]
        now = self.machine.engine.now
        if pages is None:
            for label, tlb in self._gpu_tlbs(gpu):
                if tlb.occupancy():
                    return ViolationReport(
                        self.name, now,
                        f"GPU {gpu_id} {label} TLB still holds "
                        f"{tlb.occupancy()} entries after a full flush",
                        {"gpu": gpu_id, "tlb": label},
                    )
            return None
        for label, tlb in self._gpu_tlbs(gpu):
            for page in pages:
                if tlb.contains(page):
                    return ViolationReport(
                        self.name, now,
                        f"GPU {gpu_id} {label} TLB still maps page {page} "
                        "after a targeted shootdown",
                        {"gpu": gpu_id, "tlb": label, "page": page},
                    )
        return None

    def check_migrated(self, page: int, dst: int) -> Optional[ViolationReport]:
        """After a migration commits, no other GPU may still map the page."""
        now = self.machine.engine.now
        for gpu in self.machine.gpus:
            if gpu.gpu_id == dst:
                continue
            for label, tlb in self._gpu_tlbs(gpu):
                if tlb.contains(page):
                    return ViolationReport(
                        self.name, now,
                        f"GPU {gpu.gpu_id} {label} TLB still maps page "
                        f"{page} after it migrated to device {dst}",
                        {"gpu": gpu.gpu_id, "tlb": label, "page": page,
                         "new_owner": dst},
                    )
        return None


# ----------------------------------------------------------------------
# (c) ACUD drain protocol
# ----------------------------------------------------------------------

_IDLE, _DRAINING, _DRAINED = "idle", "draining", "drained"


class DrainMonitor:
    """Per-GPU drain state machine: idle -> draining -> drained -> idle."""

    name = "drain"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._state = [_IDLE] * machine.num_gpus

    def state(self, gpu_id: int) -> str:
        return self._state[gpu_id]

    def _now(self) -> float:
        return self.machine.engine.now

    def on_drain_start(self, gpu_id: int) -> Optional[ViolationReport]:
        if self._state[gpu_id] != _IDLE:
            return ViolationReport(
                self.name, self._now(),
                f"GPU {gpu_id} drain requested while already "
                f"{self._state[gpu_id]} (overlapping drains)",
                {"gpu": gpu_id, "state": self._state[gpu_id]},
            )
        self._state[gpu_id] = _DRAINING
        return None

    def on_drain_complete(self, gpu_id: int) -> Optional[ViolationReport]:
        if self._state[gpu_id] != _DRAINING:
            return ViolationReport(
                self.name, self._now(),
                f"GPU {gpu_id} reported drain completion from state "
                f"{self._state[gpu_id]!r}",
                {"gpu": gpu_id, "state": self._state[gpu_id]},
            )
        self._state[gpu_id] = _DRAINED
        return None

    def on_resume(self, gpu_id: int) -> Optional[ViolationReport]:
        state = self._state[gpu_id]
        if state == _DRAINING:
            return ViolationReport(
                self.name, self._now(),
                f"GPU {gpu_id} received *Continue* before its drain "
                "completed",
                {"gpu": gpu_id},
            )
        self._state[gpu_id] = _IDLE
        return None

    def check_issue(self, txn) -> Optional[ViolationReport]:
        state = self._state[txn.gpu_id]
        if state != _IDLE:
            return ViolationReport(
                self.name, self._now(),
                f"CU {txn.cu_id} on GPU {txn.gpu_id} issued a transaction "
                f"for page {txn.page} while the GPU is {state}",
                {"gpu": txn.gpu_id, "cu": txn.cu_id, "page": txn.page,
                 "state": state},
            )
        return None

    def check_copy_start(self, gpu_id: int,
                         pages: list) -> Optional[ViolationReport]:
        if self._state[gpu_id] != _DRAINED:
            return ViolationReport(
                self.name, self._now(),
                f"page copy from GPU {gpu_id} started in state "
                f"{self._state[gpu_id]!r}; the drain must complete before "
                "the copy begins",
                {"gpu": gpu_id, "state": self._state[gpu_id],
                 "pages": list(pages)[:16]},
            )
        return None


# ----------------------------------------------------------------------
# (d) Event-queue sanity
# ----------------------------------------------------------------------


class EventQueueMonitor:
    """Monotonic time; no scheduling on a finished, paused engine."""

    name = "event_queue"

    def __init__(self, engine) -> None:
        self.engine = engine
        self._last_time = 0.0
        self._finished_at: Optional[float] = None

    def check_time(self, time: float) -> Optional[ViolationReport]:
        last = self._last_time
        if time < last:
            return ViolationReport(
                self.name, time,
                f"event executed at t={time:.1f} after the clock already "
                f"reached t={last:.1f} (time moved backwards)",
                {"event_time": time, "last_time": last},
            )
        self._last_time = time
        return None

    def on_finish(self, now: float) -> None:
        self._finished_at = now

    def check_schedule(self, callback) -> Optional[ViolationReport]:
        """Scheduling on a finished engine *between* runs is a bug.

        Scheduling from inside the final event's own callback stack (the
        engine is still ``_running`` while it unwinds) is legitimate —
        those events simply never execute.  Anything scheduled after the
        run loop exited on a finished machine would silently never run,
        so it is flagged.
        """
        if self._finished_at is None or self.engine._running:
            return None
        name = getattr(callback, "__qualname__", repr(callback))
        return ViolationReport(
            self.name, self.engine.now,
            f"{name} scheduled on a finished engine (workload completed "
            f"at t={self._finished_at:.1f}); the event would never run",
            {"callback": name, "finished_at": self._finished_at},
        )


# ----------------------------------------------------------------------
# (e) Fault-retry lifecycle
# ----------------------------------------------------------------------


class RetryMonitor:
    """Dropped transfers are retried or degraded, never forgotten.

    The driver resolves every injected drop within the event that
    observed it: either a backoff retry is scheduled or the page is
    pinned to DCA.  The monitor tracks unresolved drops and flags any
    that survive past their handling event.  Pages whose retry event is
    still queued when the workload completes are *not* violations — the
    run simply ended mid-retry.
    """

    name = "retry"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        # page -> phase ("dropped" | "exhausted") pending same-event
        # resolution.  Empty at every event boundary in a correct run.
        self._open: dict[int, str] = {}
        self._awaiting_retry: set[int] = set()

    def _now(self) -> float:
        return self.machine.engine.now

    def on_dropped(self, page: int) -> Optional[ViolationReport]:
        self._awaiting_retry.discard(page)
        self._open[page] = "dropped"
        return None

    def on_retry(self, page: int) -> Optional[ViolationReport]:
        if self._open.get(page) != "dropped":
            return ViolationReport(
                self.name, self._now(),
                f"retry scheduled for page {page} without a preceding "
                "dropped transfer",
                {"page": page, "phase": self._open.get(page)},
            )
        del self._open[page]
        self._awaiting_retry.add(page)
        return None

    def on_exhausted(self, page: int) -> Optional[ViolationReport]:
        if self._open.get(page) != "dropped":
            return ViolationReport(
                self.name, self._now(),
                f"retry budget reported exhausted for page {page} without "
                "a preceding dropped transfer",
                {"page": page, "phase": self._open.get(page)},
            )
        self._open[page] = "exhausted"
        return None

    def on_pinned(self, page: int) -> Optional[ViolationReport]:
        phase = self._open.pop(page, None)
        if phase not in (None, "exhausted"):
            return ViolationReport(
                self.name, self._now(),
                f"page {page} pinned to DCA from unexpected retry phase "
                f"{phase!r}",
                {"page": page, "phase": phase},
            )
        return None

    def on_arrived(self, page: int) -> None:
        """A (re)issued transfer arrived intact."""
        self._awaiting_retry.discard(page)
        self._open.pop(page, None)

    def check_boundary(self) -> Optional[ViolationReport]:
        """Called at each event boundary; unresolved drops are lost pages."""
        if not self._open:
            return None
        page, phase = next(iter(self._open.items()))
        return ViolationReport(
            self.name, self._now(),
            f"dropped transfer of page {page} (phase {phase!r}) was "
            "neither retried nor degraded to pinned-DCA before its "
            "handling event ended (silently forgotten)",
            {"unresolved": dict(self._open)},
        )

    def finalize(self) -> Optional[ViolationReport]:
        return self.check_boundary()
