"""Delayed First-Touch Migration (paper Section III-A).

On a CPU-resident page fault DFTM checks the *occupancy* of the requesting
GPU — its share of all GPU-resident pages.  If the requester currently has
the highest occupancy, the page is **not** migrated: the IOMMU returns the
CPU physical address and the access is served by DCA, and the page-table
entry's *delayed bit* is set.  Any subsequent fault on that page (from any
GPU) migrates it to that requester.  The mechanism needs exactly one extra
page-table bit of state.
"""

from __future__ import annotations

import enum

from repro.vm.page_table import PageEntry, PageTable


class FaultDecision(enum.Enum):
    """What to do with a first-touch page fault."""

    MIGRATE = "migrate"
    DCA = "dca"


class DelayedFirstTouchMigration:
    """DFTM decision logic.

    Attributes:
        page_table: System page table (occupancy source of truth).
        enabled: When False every fault migrates (baseline first touch).
        deny_on_tie: Whether a GPU tied for the highest occupancy is
            denied.  The paper denies "the GPU that has the highest
            occupancy"; with ties (e.g. the all-zero start state) we deny,
            which also realizes the paper's second property that pages
            accessed only once are never migrated from the CPU.
    """

    def __init__(
        self,
        page_table: PageTable,
        enabled: bool = True,
        deny_on_tie: bool = True,
    ) -> None:
        self.page_table = page_table
        self.enabled = enabled
        self.deny_on_tie = deny_on_tie
        self.denials = 0
        self.second_touch_migrations = 0
        self.first_touch_migrations = 0

    def decide(self, gpu_id: int, entry: PageEntry) -> FaultDecision:
        """Decide whether this fault migrates the page or is served by DCA."""
        if not self.enabled:
            self.first_touch_migrations += 1
            return FaultDecision.MIGRATE
        if entry.delayed_bit:
            self.second_touch_migrations += 1
            return FaultDecision.MIGRATE

        counts = self.page_table.gpu_page_counts()
        peak = max(counts)
        mine = counts[gpu_id]
        is_highest = mine == peak if self.deny_on_tie else (
            mine == peak and counts.count(peak) == 1
        )
        if is_highest:
            entry.delayed_bit = True
            self.denials += 1
            return FaultDecision.DCA
        self.first_touch_migrations += 1
        return FaultDecision.MIGRATE
