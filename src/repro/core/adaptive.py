"""Adaptive migration throttling (extension).

The paper's PR result shows reactive migration can be net-negative when
access patterns are irregular; its classification is "configurable" but
statically so.  This extension closes the loop: the driver audits each
migration round against the *next* collection period — did the pages we
moved end up at their current dominant accessor? — and throttles the
migration cadence when the hit rate is poor.

The controller keeps a multiplicative backoff factor on the migration
period:

* hit rate below ``throttle_below`` → double the backoff (up to
  ``max_backoff``) — patterns are too irregular to chase;
* hit rate above ``restore_above`` → halve it — migrations are landing,
  run at full cadence.

With this controller, workloads like SC (regular epochs) run at full
aggressiveness while workloads like PR (non-recurring bursts) quickly
back off to near-zero migration activity, converting the paper's PR
slowdown into parity without touching its SC win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dpc import DynamicPageClassifier


@dataclass
class AdaptiveMigrationController:
    """Closed-loop throttle on the inter-GPU migration cadence.

    Attributes:
        throttle_below: Hit rate under which the backoff doubles.
        restore_above: Hit rate over which the backoff halves.
        max_backoff: Upper bound on the period multiplier.
        backoff: Current period multiplier (1 = full cadence).
    """

    throttle_below: float = 0.4
    restore_above: float = 0.7
    max_backoff: int = 16
    accumulate_periods: int = 5
    backoff: int = 1
    _pending: dict = field(default_factory=dict)  # page -> (dst, accum[])
    _periods_accumulated: int = 0
    _skip_budget: int = 0
    corrections: list = field(default_factory=list)  # [(page, better_dst)]
    rounds_audited: int = 0
    rounds_skipped: int = 0
    corrections_issued: int = 0
    hits: int = 0
    misses: int = 0

    # ------------------------------------------------------------------

    def note_round(self, plan: dict) -> None:
        """Record the (page, dst) pairs of a migration round for auditing."""
        self._pending = {
            cand.page: (cand.dst, None)
            for cands in plan.values()
            for cand in cands
        }
        self._periods_accumulated = 0

    def audit(self, dpc: DynamicPageClassifier) -> None:
        """Grade the last round against *raw* counts accumulated after it.

        The EWMA still carries the burst that motivated the migration for
        several periods, so grading against it would be circular.  Raw
        per-period counts are too sparse to grade individually, so they
        are accumulated for ``accumulate_periods`` collection periods; a
        page is a hit when the accumulated accesses are dominated by its
        new home, a miss when another GPU dominates, and ungraded when
        nobody touched it at all.
        """
        if not self._pending:
            return
        num_gpus = dpc.num_gpus
        for page, (dst, accum) in list(self._pending.items()):
            raw = dpc.last_raw_counts(page)
            if accum is None:
                accum = [0] * num_gpus
            for g in range(num_gpus):
                accum[g] += raw[g]
            self._pending[page] = (dst, accum)
        self._periods_accumulated += 1
        if self._periods_accumulated < self.accumulate_periods:
            return

        hits = 0
        graded = 0
        missed_pages = []
        for page, (dst, accum) in self._pending.items():
            if accum is None or sum(accum) == 0:
                continue
            graded += 1
            top = max(range(num_gpus), key=accum.__getitem__)
            if top == dst:
                hits += 1
            else:
                missed_pages.append((page, top))
        self._pending = {}
        if graded == 0:
            return
        self.rounds_audited += 1
        self.hits += hits
        self.misses += graded - hits
        hit_rate = hits / graded
        if hit_rate < self.throttle_below:
            self.backoff = min(self.max_backoff, self.backoff * 2)
            # The round mostly misjudged: nominate the stranded pages back
            # to their observed steady accessors.  Good rounds' few misses
            # are left for DPC to correct naturally — issuing corrections
            # against a mostly-right round just ping-pongs pages.
            self.corrections.extend(missed_pages)
        elif hit_rate > self.restore_above and self.backoff > 1:
            self.backoff //= 2

    def should_run_round(self) -> bool:
        """Gate a migration phase by the current backoff factor."""
        if self._skip_budget > 0:
            self._skip_budget -= 1
            self.rounds_skipped += 1
            return False
        self._skip_budget = self.backoff - 1
        return True

    def take_corrections(self) -> list:
        """Drain the pending (page, better_dst) correction nominations."""
        corrections, self.corrections = self.corrections, []
        self.corrections_issued += len(corrections)
        return corrections

    def page_budget(self, probation_pages: int = 64):
        """Cap on pages per round, or None for no cap.

        Until the first audit lands (and whenever the controller is backed
        off), rounds run on probation with a small budget: a misjudged
        round then scatters at most ``probation_pages`` pages instead of a
        full round's worth — the unaudited first round is where an
        irregular workload takes most of its damage.
        """
        if self.rounds_audited == 0 or self.backoff > 1:
            return probation_pages
        return None

    @property
    def hit_rate(self) -> float:
        graded = self.hits + self.misses
        return self.hits / graded if graded else 0.0
