"""Predictive inter-GPU page migration (the paper's stated future work).

Section V of the paper notes that Griffin's migration is *reactive*: "A
page is not migrated until the DPC recognizes that migration is
beneficial... We leave predictive approaches for inter-GPU migration as
future work."  This module implements that extension.

The predictor watches the dominant accessor DPC's filtered counts assign
to each page.  Many multi-GPU workloads shift ownership in a *regular*
pattern (SC's band rotation, pipeline stages handing buffers downstream):
the dominant GPU advances by a fixed stride at a roughly fixed cadence.
When a page's last transitions agree on stride and cadence, the predictor
nominates a speculative migration to the *next* owner shortly before the
predicted hand-off — converting DPC's detection lag into lead time.

Speculative candidates are merged into the normal CPMS round (capped by
``max_speculative_per_round``) so they amortize the same drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import MigrationCandidate, PageClass
from repro.core.dpc import DynamicPageClassifier

_MIN_TRANSITIONS = 2
_CADENCE_TOLERANCE = 0.5


@dataclass
class _OwnershipHistory:
    """Dominance transitions of one page, in collection-period units."""

    owners: list = field(default_factory=list)       # dominant GPU ids
    change_periods: list = field(default_factory=list)  # period index of change


class PredictiveMigration:
    """Learns per-page ownership rotation and nominates pages early."""

    def __init__(self, hyper: GriffinHyperParams, num_gpus: int) -> None:
        self.hyper = hyper
        self.num_gpus = num_gpus
        self._history: dict[int, _OwnershipHistory] = {}
        self._period = 0
        self.predictions_made = 0
        self.max_speculative_per_round = 32
        # Nominate this many collection periods before the predicted
        # hand-off — roughly the reactive path's detection lag, so the
        # page lands at its next owner as the hand-off happens.
        self.lead_periods = 8

    # ------------------------------------------------------------------

    def observe(self, dpc: DynamicPageClassifier) -> None:
        """Record this period's dominant accessor for every tracked page."""
        self._period += 1
        floor = self.hyper.lambda_t * self.hyper.t_ac
        F = dpc._F
        for page, row in dpc._index.items():
            filtered = F[row].tolist()
            top = max(range(self.num_gpus), key=filtered.__getitem__)
            if filtered[top] < floor:
                continue
            history = self._history.get(page)
            if history is None:
                history = _OwnershipHistory()
                self._history[page] = history
            if not history.owners or history.owners[-1] != top:
                history.owners.append(top)
                history.change_periods.append(self._period)
                if len(history.owners) > 6:
                    history.owners.pop(0)
                    history.change_periods.pop(0)

    # ------------------------------------------------------------------

    def _predict(self, history: _OwnershipHistory):
        """Return (next_owner, predicted_change_period) or None."""
        owners = history.owners
        periods = history.change_periods
        if len(owners) < _MIN_TRANSITIONS + 1:
            return None
        # Stride between consecutive owners must be consistent.
        strides = [
            (owners[i + 1] - owners[i]) % self.num_gpus
            for i in range(len(owners) - 1)
        ]
        stride = strides[-1]
        if stride == 0 or any(s != stride for s in strides[-_MIN_TRANSITIONS:]):
            return None
        # Cadence (periods between hand-offs) must be stable.
        gaps = [periods[i + 1] - periods[i] for i in range(len(periods) - 1)]
        recent = gaps[-_MIN_TRANSITIONS:]
        cadence = sum(recent) / len(recent)
        if cadence <= 0:
            return None
        spread = max(recent) - min(recent)
        if spread > _CADENCE_TOLERANCE * cadence:
            return None
        next_owner = (owners[-1] + stride) % self.num_gpus
        predicted_period = periods[-1] + cadence
        return next_owner, predicted_period

    def speculative_candidates(self, location_of) -> list[MigrationCandidate]:
        """Pages whose predicted hand-off is imminent, best-evidence first.

        Args:
            location_of: Callable page -> device id; only GPU-resident
                pages are nominated, and only when the page is not already
                at the predicted next owner.
        """
        nominations: list[MigrationCandidate] = []
        horizon = self._period + self.lead_periods
        for page, history in self._history.items():
            prediction = self._predict(history)
            if prediction is None:
                continue
            next_owner, predicted_period = prediction
            if predicted_period > horizon:
                continue  # hand-off not imminent yet
            location = location_of(page)
            if location < 0 or location == next_owner:
                continue
            evidence = len(history.owners)
            nominations.append(
                MigrationCandidate(
                    page, location, next_owner,
                    PageClass.OWNER_SHIFTING,
                    benefit=float(evidence),
                )
            )
        nominations.sort(key=lambda c: (-c.benefit, c.page))
        chosen = nominations[: self.max_speculative_per_round]
        self.predictions_made += len(chosen)
        return chosen

    def tracked_pages(self) -> int:
        return len(self._history)
