"""Migration policy compositions.

A :class:`PolicyConfig` selects which of Griffin's four mechanisms are
active; the driver consults it at every decision point.  The evaluation
uses:

* ``baseline`` — the conventional NUMA multi-GPU scheme: first-touch
  migration serviced FCFS (one CPU flush per fault), pages pinned after
  migration, all remote access via DCA.
* ``griffin`` — DFTM + CPMS + DPC + ACUD (the full system).
* ``griffin_flush`` — Griffin with pipeline flushing instead of ACUD
  (Figure 11's comparison point).
* component ablations (``griffin_no_dftm`` etc.) for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.acud import DrainStrategy


@dataclass(frozen=True)
class PolicyConfig:
    """Which mechanisms are enabled.

    Attributes:
        name: Registry key.
        dftm: Delayed First-Touch Migration on CPU faults.
        batch_cpu_faults: CPMS batching of CPU->GPU migrations (False means
            the baseline FCFS IOMMU scheduler).
        inter_gpu_migration: Periodic DPC-driven GPU->GPU migration.
        drain: How source GPUs are quiesced for inter-GPU migration.
        predictive: Enable the speculative-migration extension (the
            paper's stated future work; see :mod:`repro.core.predictive`).
        adaptive: Enable the closed-loop migration throttle
            (:mod:`repro.core.adaptive`).
    """

    name: str
    dftm: bool
    batch_cpu_faults: bool
    inter_gpu_migration: bool
    drain: DrainStrategy = DrainStrategy.ACUD
    predictive: bool = False
    adaptive: bool = False

    def describe(self) -> str:
        parts = []
        parts.append("DFTM" if self.dftm else "first-touch")
        parts.append("CPMS-batched faults" if self.batch_cpu_faults else "FCFS faults")
        if self.inter_gpu_migration:
            parts.append(f"DPC inter-GPU migration ({self.drain.value})")
        else:
            parts.append("pages pinned after migration")
        return ", ".join(parts)


def baseline_policy() -> PolicyConfig:
    """The conventional NUMA multi-GPU scheme [10], [2]."""
    return PolicyConfig(
        name="baseline",
        dftm=False,
        batch_cpu_faults=False,
        inter_gpu_migration=False,
    )


def griffin_policy() -> PolicyConfig:
    """Full Griffin: DFTM + CPMS + DPC + ACUD."""
    return PolicyConfig(
        name="griffin",
        dftm=True,
        batch_cpu_faults=True,
        inter_gpu_migration=True,
        drain=DrainStrategy.ACUD,
    )


def griffin_flush_policy() -> PolicyConfig:
    """Griffin with pipeline flushing instead of ACUD (Figure 11)."""
    return replace(griffin_policy(), name="griffin_flush", drain=DrainStrategy.FLUSH)


def griffin_predictive_policy() -> PolicyConfig:
    """Griffin plus speculative migration (the paper's future work)."""
    return replace(griffin_policy(), name="griffin_predictive", predictive=True)


def griffin_adaptive_policy() -> PolicyConfig:
    """Griffin with the closed-loop migration throttle."""
    return replace(griffin_policy(), name="griffin_adaptive", adaptive=True)


_REGISTRY = {
    "baseline": baseline_policy,
    "griffin": griffin_policy,
    "griffin_flush": griffin_flush_policy,
    "griffin_predictive": griffin_predictive_policy,
    "griffin_adaptive": griffin_adaptive_policy,
    "griffin_no_dftm": lambda: replace(
        griffin_policy(), name="griffin_no_dftm", dftm=False
    ),
    "griffin_no_dpc": lambda: replace(
        griffin_policy(), name="griffin_no_dpc", inter_gpu_migration=False
    ),
    "griffin_no_batch": lambda: replace(
        griffin_policy(), name="griffin_no_batch", batch_cpu_faults=False
    ),
    "dftm_only": lambda: PolicyConfig(
        name="dftm_only", dftm=True, batch_cpu_faults=False,
        inter_gpu_migration=False,
    ),
}


def get_policy(name: str) -> PolicyConfig:
    """Look up a policy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory()


def list_policies() -> list[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)
