"""Asynchronous Compute Unit Draining (paper Section III-D).

The mechanics live in :class:`repro.gpu.compute_unit.ComputeUnit`
(the in-flight buffer scan) and :class:`repro.gpu.drain.DrainController`
(the per-GPU fan-out of Figure 7).  This module defines the strategy
selector the driver uses: Griffin runs ACUD; the Figure 11 comparison
point runs Griffin with conventional pipeline flushing instead.
"""

from __future__ import annotations

import enum


class DrainStrategy(enum.Enum):
    """How a source GPU is quiesced before pages migrate out of it."""

    ACUD = "acud"
    FLUSH = "flush"

    @classmethod
    def parse(cls, value) -> "DrainStrategy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown drain strategy {value!r}; expected one of {names}")
