"""Cooperative Page Migration Scheduling (paper Section III-B).

CPMS attacks the *setup cost* of migration (TLB shootdowns, flushes) by
batching:

1. **CPU->GPU**: instead of servicing each first-touch fault immediately
   (the baseline's FCFS IOMMU scheduler), CPMS accumulates faults until
   ``N_PTW`` page walks have completed, then performs **one** CPU flush
   followed by all the page transfers.  :class:`FaultBatcher` implements
   this accumulation (with a timeout so a trickle of faults is not held
   hostage).
2. **GPU->GPU**: on-demand inter-GPU migration is disabled entirely;
   execution is divided into periods, DPC nominates candidates at each
   period boundary, and :class:`MigrationPlanner` groups them by source
   GPU and caps the number of pages and source GPUs per round so each
   source is drained exactly once per round.
"""

from __future__ import annotations

from typing import Callable, Collection, Optional

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import MigrationCandidate
from repro.sim.engine import Engine


class FaultBatcher:
    """Accumulates CPU->GPU migration faults into flushable batches.

    Args:
        engine: Simulation engine (for the timeout event).
        batch_size: Faults per batch (paper: ``N_PTW`` = 8).  A batch size
            of 1 degenerates to the baseline's FCFS immediate servicing.
        timeout: Cycles after the first fault of a batch at which a
            partial batch is flushed anyway.
        flush_fn: Called with the list of queued faults when a batch is
            released.
    """

    def __init__(
        self,
        engine: Engine,
        batch_size: int,
        timeout: int,
        flush_fn: Callable[[list], None],
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.engine = engine
        self.batch_size = batch_size
        self.timeout = timeout
        self.flush_fn = flush_fn
        self._queue: list = []
        self._timeout_event = None
        self.batches_flushed = 0
        self.faults_enqueued = 0

    def add(self, fault) -> None:
        """Queue one fault; flushes when the batch fills."""
        self.faults_enqueued += 1
        self._queue.append(fault)
        if len(self._queue) >= self.batch_size:
            self._flush()
            return
        if self._timeout_event is None and self.batch_size > 1:
            self._timeout_event = self.engine.schedule(self.timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timeout_event = None
        if self._queue:
            self._flush()

    def _flush(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        batch, self._queue = self._queue, []
        self.batches_flushed += 1
        self.flush_fn(batch)

    def pending(self) -> int:
        return len(self._queue)

    def drain(self) -> None:
        """Force out any partial batch (end of simulation)."""
        if self._queue:
            self._flush()


class MigrationPlanner:
    """Turns DPC candidates into a per-source migration plan for one round."""

    def __init__(self, hyper: GriffinHyperParams) -> None:
        self.hyper = hyper
        self.rounds_planned = 0
        self.pages_planned = 0
        self.candidates_deferred = 0
        self.candidates_pinned = 0

    def plan(
        self,
        candidates: list[MigrationCandidate],
        pinned: Optional[Collection[int]] = None,
    ) -> dict[int, list[MigrationCandidate]]:
        """Group candidates by source GPU under the per-round caps.

        Sources are admitted in order of their total candidate benefit so
        the single drain each source pays buys the most locality.  Within
        the admitted sources, pages are taken best-benefit-first until the
        page cap is reached.

        Pages in ``pinned`` — ones the driver gave up migrating after its
        retry budget ran out — are dropped from the plan: they are served
        by DCA remote access and re-attempting them would burn a drain.
        """
        self.rounds_planned += 1
        if pinned:
            kept = [c for c in candidates if c.page not in pinned]
            self.candidates_pinned += len(candidates) - len(kept)
            candidates = kept
        if not candidates:
            return {}

        by_src: dict[int, list[MigrationCandidate]] = {}
        for cand in candidates:
            by_src.setdefault(cand.src, []).append(cand)

        # A drain + shootdown is only worth paying when enough pages
        # amortize it.
        minimum = self.hyper.min_pages_per_source
        by_src = {s: c for s, c in by_src.items() if len(c) >= minimum}
        if not by_src:
            return {}

        ranked_sources = sorted(
            by_src,
            key=lambda src: -sum(c.benefit for c in by_src[src]),
        )[: self.hyper.max_source_gpus_per_round]

        budget = self.hyper.max_pages_per_round
        admitted = [c for src in ranked_sources for c in by_src[src]]
        admitted.sort(key=lambda c: (-c.benefit, c.page))
        chosen = admitted[:budget]
        self.candidates_deferred += len(candidates) - len(chosen)
        self.pages_planned += len(chosen)

        plan: dict[int, list[MigrationCandidate]] = {}
        for cand in chosen:
            plan.setdefault(cand.src, []).append(cand)
        return plan
