"""Griffin's four mechanisms — the paper's primary contribution.

* :mod:`repro.core.dftm` — Delayed First-Touch Migration (Section III-A)
* :mod:`repro.core.cpms` — Cooperative Page Migration Scheduling (III-B)
* :mod:`repro.core.dpc` — Dynamic Page Classification (III-C)
* :mod:`repro.core.acud` — Asynchronous Compute Unit Draining (III-D)
* :mod:`repro.core.policies` — policy compositions (baseline, Griffin,
  Griffin+flush, component ablations)
* :mod:`repro.core.hardware_cost` — the Section V hardware-cost estimates
"""

from repro.core.classification import MigrationCandidate, PageClass
from repro.core.dftm import DelayedFirstTouchMigration, FaultDecision
from repro.core.dpc import DynamicPageClassifier
from repro.core.cpms import FaultBatcher, MigrationPlanner
from repro.core.acud import DrainStrategy
from repro.core.adaptive import AdaptiveMigrationController
from repro.core.predictive import PredictiveMigration
from repro.core.policies import (
    PolicyConfig,
    baseline_policy,
    get_policy,
    griffin_flush_policy,
    griffin_adaptive_policy,
    griffin_policy,
    griffin_predictive_policy,
    list_policies,
)
from repro.core.hardware_cost import HardwareCostReport, estimate_hardware_cost

__all__ = [
    "MigrationCandidate",
    "PageClass",
    "DelayedFirstTouchMigration",
    "FaultDecision",
    "DynamicPageClassifier",
    "FaultBatcher",
    "MigrationPlanner",
    "DrainStrategy",
    "PredictiveMigration",
    "AdaptiveMigrationController",
    "griffin_predictive_policy",
    "griffin_adaptive_policy",
    "PolicyConfig",
    "baseline_policy",
    "griffin_policy",
    "griffin_flush_policy",
    "get_policy",
    "list_policies",
    "HardwareCostReport",
    "estimate_hardware_cost",
]
