"""Page classes and migration candidates (DPC vocabulary)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PageClass(enum.Enum):
    """The five DPC page categories (paper Section III-C)."""

    MOSTLY_DEDICATED = "mostly_dedicated"
    SHARED = "shared"
    STREAMING = "streaming"
    OWNER_SHIFTING = "owner_shifting"
    OUT_OF_INTEREST = "out_of_interest"


@dataclass(frozen=True)
class MigrationCandidate:
    """A page DPC selected for inter-GPU migration.

    Attributes:
        page: Virtual page number.
        src: GPU currently holding the page.
        dst: GPU the page should move to.
        page_class: Why DPC picked it.
        benefit: Expected locality gain (filtered accesses/period that
            become local minus those that become remote); used by CPMS to
            prioritize when a round is over-subscribed.
    """

    page: int
    src: int
    dst: int
    page_class: PageClass
    benefit: float
