"""Hardware-cost estimates (paper Section V, "Hardware Cost").

The paper reports:

* **DFTM** — one extra page-table bit per page.
* **CPMS** — no hardware; software data structures in the driver.
* **DPC** — one access-count table per Shader Engine: 100 entries of
  36-bit page ID + 8-bit count = 4 400 bits = 550 bytes per SE, 2 200
  bytes per 4-SE GPU.
* **ACUD** — per CU: a 64-bit comparator plus arithmetic shift logic that
  scans the existing in-flight buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hyperparams import GriffinHyperParams
from repro.config.system import SystemConfig


@dataclass(frozen=True)
class HardwareCostReport:
    """Griffin's added hardware, per GPU and system-wide.

    Attributes:
        dpc_bits_per_entry: Page ID bits + counter bits per table entry.
        dpc_bytes_per_se: Storage of one SE's access-count table.
        dpc_bytes_per_gpu: Storage of all SE tables on one GPU.
        dpc_bytes_total: Across all GPUs.
        dftm_bits_per_page: Extra page-table bits per page (1).
        dftm_bytes_for_footprint: DFTM bits for a given page count.
        acud_comparators_per_gpu: One 64-bit comparator per CU.
        cpms_hardware_bytes: Zero; CPMS is driver software.
    """

    dpc_bits_per_entry: int
    dpc_bytes_per_se: float
    dpc_bytes_per_gpu: float
    dpc_bytes_total: float
    dftm_bits_per_page: int
    dftm_bytes_for_footprint: float
    acud_comparators_per_gpu: int
    cpms_hardware_bytes: int

    def rows(self) -> list[tuple[str, str]]:
        """(component, cost) rows for report printing."""
        return [
            ("DPC table entry", f"{self.dpc_bits_per_entry} bits"),
            ("DPC table / Shader Engine", f"{self.dpc_bytes_per_se:.0f} B"),
            ("DPC tables / GPU", f"{self.dpc_bytes_per_gpu:.0f} B"),
            ("DPC tables / system", f"{self.dpc_bytes_total:.0f} B"),
            ("DFTM page-table bit", f"{self.dftm_bits_per_page} bit/page"),
            ("DFTM bits for footprint", f"{self.dftm_bytes_for_footprint:.0f} B"),
            ("ACUD comparators / GPU", f"{self.acud_comparators_per_gpu} x 64-bit"),
            ("CPMS hardware", f"{self.cpms_hardware_bytes} B (driver software)"),
        ]


def estimate_hardware_cost(
    system: SystemConfig,
    hyper: GriffinHyperParams,
    footprint_pages: int = 16384,
) -> HardwareCostReport:
    """Compute Griffin's hardware overhead for a given configuration.

    With the paper's defaults (4 SEs, 100 entries, 36+8 bit entries) this
    reproduces the published 2 200 bytes per GPU.
    """
    bits_per_entry = hyper.page_id_bits + hyper.counter_bits
    bytes_per_se = hyper.counter_table_entries * bits_per_entry / 8
    bytes_per_gpu = bytes_per_se * system.gpu.num_shader_engines
    return HardwareCostReport(
        dpc_bits_per_entry=bits_per_entry,
        dpc_bytes_per_se=bytes_per_se,
        dpc_bytes_per_gpu=bytes_per_gpu,
        dpc_bytes_total=bytes_per_gpu * system.num_gpus,
        dftm_bits_per_page=1,
        dftm_bytes_for_footprint=footprint_pages / 8,
        acud_comparators_per_gpu=system.gpu.num_cus,
        cpms_hardware_bytes=0,
    )
