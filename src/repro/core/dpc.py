"""Dynamic Page Classification (paper Section III-C).

Raw per-GPU access counts collected from the Shader Engine tables are
smoothed by an exponentially weighted moving average implemented in the
IOMMU::

    C^{p,g}_n = (1 - alpha) * C^{p,g}_{n-1} + alpha * N^{p,g}

Each page is then placed into one of five classes:

* **Mostly Dedicated** — highest per-GPU count at least ``lambda_d`` times
  the second highest; migrate to the top GPU if not already there.
* **Shared** — highest count at most ``lambda_s`` times the second
  highest; migrate to the top GPU only if the page currently sits on a GPU
  with a very low share of the accesses (not worth moving otherwise).
* **Streaming** — per-GPU access rate stays below ``lambda_t`` per cycle;
  never migrated (no locality to exploit).
* **Owner-Shifting** — not classifiable as above, the current owner's
  filtered count is falling while another GPU's is rising; always migrated
  to the rising GPU.
* **Out-of-Interest** — everything else; never migrated.

Ordering note: we evaluate the streaming rate test before the dedicated /
shared ratio tests.  The paper lists the classes in a different order, but
without a floor the ratio tests would classify a page with counts (2, 0)
as Mostly Dedicated and migrate it on noise; a genuinely dedicated page
always clears the streaming floor, so the two orderings agree on every
page with meaningful traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import MigrationCandidate, PageClass

_FORGET_EPSILON = 1e-3


@dataclass
class _PageState:
    """Filter state for one page: EWMA count, its trend, and the most
    recent raw counts per GPU (the unfiltered signal the adaptive
    controller audits against)."""

    filtered: list[float]
    trend: list[float]
    last_raw: list[int]


class DynamicPageClassifier:
    """The EWMA filter plus the five-class page classifier."""

    def __init__(self, hyper: GriffinHyperParams, num_gpus: int) -> None:
        self.hyper = hyper
        self.num_gpus = num_gpus
        self._pages: dict[int, _PageState] = {}
        self.updates = 0
        self.class_counts: dict[PageClass, int] = {c: 0 for c in PageClass}

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def update(self, counts_per_gpu: list[dict[int, int]]) -> None:
        """Fold one collection period of raw counts into the filter.

        ``counts_per_gpu[g]`` maps page -> raw count collected from GPU g
        this period.  Pages absent from every GPU's report decay toward
        zero and are forgotten once negligible.
        """
        if len(counts_per_gpu) != self.num_gpus:
            raise ValueError(
                f"expected counts for {self.num_gpus} GPUs, "
                f"got {len(counts_per_gpu)}"
            )
        self.updates += 1
        alpha = self.hyper.alpha
        keep = 1.0 - alpha

        touched = set(self._pages)
        for counts in counts_per_gpu:
            touched.update(counts)

        dead: list[int] = []
        for page in touched:
            state = self._pages.get(page)
            if state is None:
                state = _PageState(
                    [0.0] * self.num_gpus,
                    [0.0] * self.num_gpus,
                    [0] * self.num_gpus,
                )
                self._pages[page] = state
            filtered = state.filtered
            trend = state.trend
            last_raw = state.last_raw
            alive = False
            for g in range(self.num_gpus):
                raw = counts_per_gpu[g].get(page, 0)
                last_raw[g] = raw
                new = keep * filtered[g] + alpha * raw
                trend[g] = new - filtered[g]
                filtered[g] = new
                if new > _FORGET_EPSILON:
                    alive = True
            if not alive:
                dead.append(page)
        for page in dead:
            del self._pages[page]

    def filtered_counts(self, page: int) -> list[float]:
        """Current EWMA counts per GPU for ``page`` (zeros if unknown)."""
        state = self._pages.get(page)
        if state is None:
            return [0.0] * self.num_gpus
        return list(state.filtered)

    def last_raw_counts(self, page: int) -> list[int]:
        """The most recent collection period's raw counts for ``page``."""
        state = self._pages.get(page)
        if state is None:
            return [0] * self.num_gpus
        return list(state.last_raw)

    def tracked_pages(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(self, page: int, location: int) -> PageClass:
        """Classify one page given its current resident GPU."""
        state = self._pages.get(page)
        if state is None:
            return PageClass.OUT_OF_INTEREST
        filtered = state.filtered
        order = sorted(range(self.num_gpus), key=filtered.__getitem__, reverse=True)
        top, top_count = order[0], filtered[order[0]]
        second_count = filtered[order[1]] if self.num_gpus > 1 else 0.0

        streaming_floor = self.hyper.lambda_t * self.hyper.t_ac
        if top_count < streaming_floor:
            return PageClass.STREAMING
        if top_count >= self.hyper.lambda_d * max(second_count, streaming_floor / self.hyper.lambda_d):
            return PageClass.MOSTLY_DEDICATED
        if second_count > 0 and top_count <= self.hyper.lambda_s * second_count:
            return PageClass.SHARED
        if self._is_owner_shifting(state, location):
            return PageClass.OWNER_SHIFTING
        return PageClass.OUT_OF_INTEREST

    def _is_owner_shifting(self, state: _PageState, location: int) -> bool:
        if location < 0 or location >= self.num_gpus:
            return False
        top_count = max(state.filtered)
        # A step from 0 to N moves the EWMA by alpha*N in one period, so
        # this threshold is scale-free in the access intensity.
        threshold = self.hyper.trend_fraction * self.hyper.alpha * top_count
        if threshold <= 0:
            return False
        owner_falling = state.trend[location] < -threshold
        challenger_rising = any(
            state.trend[g] > threshold
            for g in range(self.num_gpus)
            if g != location
        )
        return owner_falling and challenger_rising

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------

    def select_candidates(self, location_of) -> list[MigrationCandidate]:
        """Pick pages worth migrating, best locality gain first.

        Args:
            location_of: Callable page -> device id.  Only GPU-resident
                pages are eligible (CPU-resident pages are DFTM's job).

        Returns:
            Candidates sorted by descending expected benefit.
        """
        candidates: list[MigrationCandidate] = []
        for page, state in self._pages.items():
            location = location_of(page)
            if location < 0 or location >= self.num_gpus:
                continue
            page_class = self.classify(page, location)
            self.class_counts[page_class] += 1
            dst = self._destination(state, location, page_class)
            if dst is None or dst == location:
                continue
            benefit = state.filtered[dst] - state.filtered[location]
            if benefit <= 0:
                continue
            candidates.append(
                MigrationCandidate(page, location, dst, page_class, benefit)
            )
        candidates.sort(key=lambda c: (-c.benefit, c.page))
        return candidates

    def _destination(self, state: _PageState, location: int, page_class: PageClass):
        filtered = state.filtered
        if page_class == PageClass.MOSTLY_DEDICATED:
            return max(range(self.num_gpus), key=filtered.__getitem__)
        if page_class == PageClass.SHARED:
            total = sum(filtered)
            if total <= 0:
                return None
            if filtered[location] / total >= self.hyper.shared_min_share:
                return None  # already on a reasonably hot GPU; not worth it
            return max(range(self.num_gpus), key=filtered.__getitem__)
        if page_class == PageClass.OWNER_SHIFTING:
            rising = [g for g in range(self.num_gpus) if g != location]
            return max(rising, key=state.trend.__getitem__)
        return None
