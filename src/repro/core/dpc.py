"""Dynamic Page Classification (paper Section III-C).

Raw per-GPU access counts collected from the Shader Engine tables are
smoothed by an exponentially weighted moving average implemented in the
IOMMU::

    C^{p,g}_n = (1 - alpha) * C^{p,g}_{n-1} + alpha * N^{p,g}

Each page is then placed into one of five classes:

* **Mostly Dedicated** — highest per-GPU count at least ``lambda_d`` times
  the second highest; migrate to the top GPU if not already there.
* **Shared** — highest count at most ``lambda_s`` times the second
  highest; migrate to the top GPU only if the page currently sits on a GPU
  with a very low share of the accesses (not worth moving otherwise).
* **Streaming** — per-GPU access rate stays below ``lambda_t`` per cycle;
  never migrated (no locality to exploit).
* **Owner-Shifting** — not classifiable as above, the current owner's
  filtered count is falling while another GPU's is rising; always migrated
  to the rising GPU.
* **Out-of-Interest** — everything else; never migrated.

Ordering note: we evaluate the streaming rate test before the dedicated /
shared ratio tests.  The paper lists the classes in a different order, but
without a floor the ratio tests would classify a page with counts (2, 0)
as Mostly Dedicated and migrate it on noise; a genuinely dedicated page
always clears the streaming floor, so the two orderings agree on every
page with meaningful traffic.

Implementation: the filter state lives in dense per-row numpy arrays
(``page -> row`` via ``_index``) so the per-epoch EWMA is one vectorized
expression over every tracked page instead of a Python loop.  Elementwise
float64 multiply/add round exactly like the scalar expressions they
replace, so the filter values — and every migration decision derived from
them — are bit-identical to the original per-page loop.  Scalar
consumers (``classify`` and friends) convert a row with ``.tolist()``
first, which is exact, and then run the original pure-Python logic.
"""

from __future__ import annotations

import numpy as np

from repro.config.hyperparams import GriffinHyperParams
from repro.core.classification import MigrationCandidate, PageClass

_FORGET_EPSILON = 1e-3
_INITIAL_ROWS = 256


class DynamicPageClassifier:
    """The EWMA filter plus the five-class page classifier."""

    def __init__(self, hyper: GriffinHyperParams, num_gpus: int) -> None:
        self.hyper = hyper
        self.num_gpus = num_gpus
        # page -> row in the state arrays; rows are recycled through _free.
        self._index: dict[int, int] = {}
        self._free: list[int] = []
        self._used = 0
        self._F = np.zeros((_INITIAL_ROWS, num_gpus))          # EWMA counts
        self._T = np.zeros((_INITIAL_ROWS, num_gpus))          # per-epoch trend
        self._R = np.zeros((_INITIAL_ROWS, num_gpus), np.int64)  # last raw counts
        self._top = np.zeros(_INITIAL_ROWS)                    # max(F, axis=1)
        self._page_of = np.full(_INITIAL_ROWS, -1, np.int64)   # row -> page
        self.updates = 0
        # id-keyed for the same reason as AccessPath._kc: a PageClass key
        # would call the Python-level Enum.__hash__ per bump.
        self._cc: dict[int, int] = {id(c): 0 for c in PageClass}

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------

    def _grow(self) -> None:
        cap = self._F.shape[0] * 2
        for name in ("_F", "_T", "_R", "_top", "_page_of"):
            old = getattr(self, name)
            shape = (cap,) + old.shape[1:]
            fill = -1 if name == "_page_of" else 0
            new = np.full(shape, fill, old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def _alloc_row(self, page: int) -> int:
        free = self._free
        if free:
            row = free.pop()
        else:
            row = self._used
            if row >= self._F.shape[0]:
                self._grow()
            self._used = row + 1
        self._F[row] = 0.0
        self._page_of[row] = page
        self._index[page] = row
        return row

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def update(self, counts_per_gpu: list[dict[int, int]]) -> None:
        """Fold one collection period of raw counts into the filter.

        ``counts_per_gpu[g]`` maps page -> raw count collected from GPU g
        this period.  Pages absent from every GPU's report decay toward
        zero and are forgotten once negligible.
        """
        if len(counts_per_gpu) != self.num_gpus:
            raise ValueError(
                f"expected counts for {self.num_gpus} GPUs, "
                f"got {len(counts_per_gpu)}"
            )
        self.updates += 1
        alpha = self.hyper.alpha
        keep = 1.0 - alpha

        # Allocate rows for unseen pages in the same order the scalar
        # version inserted them (set of known ∪ reported pages): dict
        # iteration order feeds downstream capped scans, so it is pinned.
        index = self._index
        touched = set(index)
        for counts in counts_per_gpu:
            touched.update(counts)
        for page in touched:
            if page not in index:
                self._alloc_row(page)
        used = self._used
        if not used:
            return
        R = self._R
        Rv = R[:used]
        Rv[:] = 0
        for g, counts in enumerate(counts_per_gpu):
            for page, count in counts.items():
                R[index[page], g] = count

        # One vectorized EWMA step over every tracked page.  Elementwise
        # float64 ops round identically to the scalar
        # ``keep * f + alpha * raw`` they replace.
        F = self._F
        Fv = F[:used]
        F2 = keep * Fv + alpha * Rv
        self._T[:used] = F2 - Fv
        Fv[:] = F2
        top = F2.max(axis=1)
        self._top[:used] = top

        # Forget pages whose filter state decayed to noise (max <= eps,
        # exactly the old per-GPU ``new > eps`` aliveness test).
        page_of = self._page_of
        dead_rows = np.nonzero(
            (top <= _FORGET_EPSILON) & (page_of[:used] >= 0)
        )[0]
        if dead_rows.size:
            free = self._free
            for row in dead_rows.tolist():
                del index[int(page_of[row])]
                page_of[row] = -1
                free.append(row)
                F[row] = 0.0

    def filtered_counts(self, page: int) -> list[float]:
        """Current EWMA counts per GPU for ``page`` (zeros if unknown)."""
        row = self._index.get(page)
        if row is None:
            return [0.0] * self.num_gpus
        return self._F[row].tolist()

    def last_raw_counts(self, page: int) -> list[int]:
        """The most recent collection period's raw counts for ``page``."""
        row = self._index.get(page)
        if row is None:
            return [0] * self.num_gpus
        return self._R[row].tolist()

    def tracked_pages(self) -> int:
        return len(self._index)

    @property
    def class_counts(self) -> dict:
        """Classification outcomes by class (enum-keyed, enum order)."""
        cc = self._cc
        return {c: cc[id(c)] for c in PageClass}

    def __getstate__(self) -> dict:
        """Snapshot support: ``id()`` keys are process-local, so ``_cc``
        travels as a plain list in ``PageClass`` order."""
        state = self.__dict__.copy()
        state["_cc"] = [self._cc[id(c)] for c in PageClass]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cc = {
            id(c): count for c, count in zip(PageClass, state["_cc"])
        }

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(self, page: int, location: int) -> PageClass:
        """Classify one page given its current resident GPU."""
        row = self._index.get(page)
        if row is None:
            return PageClass.OUT_OF_INTEREST
        filtered = self._F[row].tolist()
        # Top two values by a linear scan (same tie handling as a stable
        # descending sort: an equal later value lands in second place).
        top_count = filtered[0]
        second_count = 0.0
        for g in range(1, self.num_gpus):
            value = filtered[g]
            if value > top_count:
                second_count = top_count
                top_count = value
            elif value > second_count:
                second_count = value

        streaming_floor = self.hyper.lambda_t * self.hyper.t_ac
        if top_count < streaming_floor:
            return PageClass.STREAMING
        if top_count >= self.hyper.lambda_d * max(second_count, streaming_floor / self.hyper.lambda_d):
            return PageClass.MOSTLY_DEDICATED
        if second_count > 0 and top_count <= self.hyper.lambda_s * second_count:
            return PageClass.SHARED
        if self._is_owner_shifting(row, location):
            return PageClass.OWNER_SHIFTING
        return PageClass.OUT_OF_INTEREST

    def _is_owner_shifting(self, row: int, location: int) -> bool:
        if location < 0 or location >= self.num_gpus:
            return False
        trend = self._T[row].tolist()
        top_count = max(self._F[row].tolist())
        # A step from 0 to N moves the EWMA by alpha*N in one period, so
        # this threshold is scale-free in the access intensity.
        threshold = self.hyper.trend_fraction * self.hyper.alpha * top_count
        if threshold <= 0:
            return False
        owner_falling = trend[location] < -threshold
        challenger_rising = any(
            trend[g] > threshold
            for g in range(self.num_gpus)
            if g != location
        )
        return owner_falling and challenger_rising

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------

    def select_candidates(self, location_of) -> list[MigrationCandidate]:
        """Pick pages worth migrating, best locality gain first.

        Args:
            location_of: Callable page -> device id.  Only GPU-resident
                pages are eligible (CPU-resident pages are DFTM's job).

        Returns:
            Candidates sorted by descending expected benefit.
        """
        candidates: list[MigrationCandidate] = []
        num_gpus = self.num_gpus
        streaming_floor = self.hyper.lambda_t * self.hyper.t_ac
        cc = self._cc
        id_streaming = id(PageClass.STREAMING)
        F = self._F
        top = self._top
        for page, row in self._index.items():
            location = location_of(page)
            if location < 0 or location >= num_gpus:
                continue
            if top[row] < streaming_floor:
                # classify() would return STREAMING from its first test;
                # the cached row max lets the scan skip the call entirely.
                cc[id_streaming] += 1
                continue
            page_class = self.classify(page, location)
            cc[id(page_class)] += 1
            dst = self._destination(row, location, page_class)
            if dst is None or dst == location:
                continue
            frow = F[row]
            benefit = float(frow[dst]) - float(frow[location])
            if benefit <= 0:
                continue
            candidates.append(
                MigrationCandidate(page, location, dst, page_class, benefit)
            )
        candidates.sort(key=lambda c: (-c.benefit, c.page))
        return candidates

    def _destination(self, row: int, location: int, page_class: PageClass):
        filtered = self._F[row].tolist()
        if page_class == PageClass.MOSTLY_DEDICATED:
            return max(range(self.num_gpus), key=filtered.__getitem__)
        if page_class == PageClass.SHARED:
            total = sum(filtered)
            if total <= 0:
                return None
            if filtered[location] / total >= self.hyper.shared_min_share:
                return None  # already on a reasonably hot GPU; not worth it
            return max(range(self.num_gpus), key=filtered.__getitem__)
        if page_class == PageClass.OWNER_SHIFTING:
            trend = self._T[row].tolist()
            rising = [g for g in range(self.num_gpus) if g != location]
            return max(rising, key=trend.__getitem__)
        return None
