"""Per-page access timelines and migration traces (Figures 1 and 10).

Figure 1 plots the per-GPU distribution of accesses to one page over time;
Figure 10 overlays the page's location as Griffin migrates it.  The
tracker counts total accesses per (page, GPU) cheaply for every page, and
keeps a bucketized time series only for an explicit watch set, so the
overhead on multi-hundred-thousand-transaction runs stays negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class MigrationEvent:
    """One page migration, for location overlays and migration audits."""

    time: float
    page: int
    src: int
    dst: int


class PageAccessTimeline:
    """Counts accesses per (page, GPU), with time series for watched pages."""

    def __init__(
        self,
        num_gpus: int,
        bucket_cycles: int = 10_000,
        watch_pages=None,
    ) -> None:
        self.num_gpus = num_gpus
        self.bucket_cycles = bucket_cycles
        # watch_pages: iterable of pages, or the string "all" to keep a
        # bucketized series for every touched page (cheap at page counts
        # this simulator runs; required by windowed migration audits).
        self.watch_all = watch_pages == "all"
        self.watch_pages = (
            set() if (watch_pages is None or self.watch_all)
            else set(watch_pages)
        )
        self._totals: dict[int, list[int]] = {}
        # page -> {bucket_index -> [count per gpu]}
        self._series: dict[int, dict[int, list[int]]] = {
            p: {} for p in self.watch_pages
        }
        # The watch set is fixed at construction; precompute the common
        # nothing-watched case so record() can return early.
        self._watch_none = not self.watch_all and not self.watch_pages

    def record(self, now: float, gpu_id: int, page: int) -> None:
        """Count one access to ``page`` from ``gpu_id`` at time ``now``."""
        try:
            self._totals[page][gpu_id] += 1
        except KeyError:
            totals = [0] * self.num_gpus
            totals[gpu_id] = 1
            self._totals[page] = totals
        if self._watch_none:
            return
        series = self._series
        if self.watch_all and page not in series:
            series[page] = {}
        if page in series:
            bucket = int(now // self.bucket_cycles)
            buckets = series[page]
            counts = buckets.get(bucket)
            if counts is None:
                counts = [0] * self.num_gpus
                buckets[bucket] = counts
            counts[gpu_id] += 1

    def total_accesses(self, page: int) -> int:
        totals = self._totals.get(page)
        return sum(totals) if totals else 0

    def per_gpu_totals(self, page: int) -> list[int]:
        return list(self._totals.get(page, [0] * self.num_gpus))

    def hottest_pages(self, k: int = 1) -> list[int]:
        """Pages with the most total accesses, hottest first."""
        return sorted(
            self._totals, key=lambda p: (-sum(self._totals[p]), p)
        )[:k]

    def hottest_shared_pages(self, k: int = 1, min_gpus: int = 2) -> list[int]:
        """Hottest pages touched by at least ``min_gpus`` different GPUs."""
        shared = [
            p for p, totals in self._totals.items()
            if sum(1 for c in totals if c > 0) >= min_gpus
        ]
        return sorted(shared, key=lambda p: (-sum(self._totals[p]), p))[:k]

    def hottest_shifting_pages(
        self,
        k: int = 1,
        min_gpus: int = 2,
        min_share: float = 0.3,
        max_share: float = 0.9,
    ) -> list[int]:
        """Hot pages with several significant accessors but a clear leader.

        This is the Figure 1 selection: a page whose dominant accessor
        changes over time has aggregate totals that are neither uniform
        (like a filter page every GPU reads equally) nor single-GPU.
        """
        chosen = []
        for page, totals in self._totals.items():
            total = sum(totals)
            if total == 0:
                continue
            accessors = sum(1 for c in totals if c > 0)
            share = max(totals) / total
            if accessors >= min_gpus and min_share <= share <= max_share:
                chosen.append(page)
        return sorted(
            chosen, key=lambda p: (-sum(self._totals[p]), p)
        )[:k]

    def series(self, page: int) -> list[tuple[float, list[int]]]:
        """Bucketized (bucket_start_cycle, counts_per_gpu) for a watched page."""
        buckets = self._series.get(page, {})
        return [
            (index * self.bucket_cycles, list(counts))
            for index, counts in sorted(buckets.items())
        ]

    def window_counts(self, page: int, start: float, end: float) -> list[int]:
        """Per-GPU access counts to ``page`` in the bucket-aligned window.

        Buckets whose start falls in ``[start, end)`` are included; only
        meaningful for watched pages (or with ``watch_pages="all"``).
        """
        counts = [0] * self.num_gpus
        for bucket_start, bucket_counts in self.series(page):
            if start <= bucket_start < end:
                for g in range(self.num_gpus):
                    counts[g] += bucket_counts[g]
        return counts

    def series_percentages(self, page: int) -> list[tuple[float, list[float]]]:
        """Figure 1's view: per-bucket percentage split across GPUs."""
        result = []
        for start, counts in self.series(page):
            total = sum(counts)
            if total == 0:
                result.append((start, [0.0] * self.num_gpus))
            else:
                result.append((start, [100.0 * c / total for c in counts]))
        return result
