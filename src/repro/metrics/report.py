"""Result math and plain-text table rendering for the benches."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports geomean speedups)."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(values: Sequence[float], reference: float) -> list[float]:
    """Divide every value by ``reference`` (e.g. baseline shootdowns)."""
    if reference == 0:
        raise ValueError("cannot normalize to a zero reference")
    return [v / reference for v in values]


def speedup(baseline_cycles: float, other_cycles: float) -> float:
    """Baseline time over other time; >1 means 'other' is faster."""
    if other_cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / other_cycles


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (the benches' output format)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
