"""Metrics: occupancy, timelines, run statistics, report tables."""

from repro.metrics.collector import collect_machine_stats, render_stats
from repro.metrics.occupancy import OccupancySnapshot, imbalance_index
from repro.metrics.timeline import MigrationEvent, PageAccessTimeline
from repro.metrics.report import (
    format_table,
    geometric_mean,
    normalize,
)

__all__ = [
    "collect_machine_stats",
    "render_stats",
    "OccupancySnapshot",
    "imbalance_index",
    "MigrationEvent",
    "PageAccessTimeline",
    "format_table",
    "geometric_mean",
    "normalize",
]
