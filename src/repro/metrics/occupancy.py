"""Page-distribution (occupancy) metrics for Figures 2 and 8."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OccupancySnapshot:
    """The distribution of GPU-resident pages at one point in time.

    Attributes:
        pages_per_gpu: Resident page count per GPU (index = GPU id).
        cpu_pages: Pages never migrated off the CPU.
    """

    pages_per_gpu: tuple
    cpu_pages: int = 0

    @property
    def total_gpu_pages(self) -> int:
        return sum(self.pages_per_gpu)

    def percentages(self) -> list[float]:
        """Per-GPU share of GPU-resident pages, in percent."""
        total = self.total_gpu_pages
        if total == 0:
            return [0.0] * len(self.pages_per_gpu)
        return [100.0 * c / total for c in self.pages_per_gpu]

    def max_share(self) -> float:
        """Largest single GPU share (fraction of GPU-resident pages)."""
        total = self.total_gpu_pages
        if total == 0:
            return 0.0
        return max(self.pages_per_gpu) / total


def imbalance_index(pages_per_gpu) -> float:
    """How far the distribution is from uniform, in [0, 1].

    0 means perfectly balanced; 1 means all pages on one GPU.  Defined as
    ``(max_share - 1/n) / (1 - 1/n)`` so it is comparable across GPU
    counts.
    """
    counts = list(pages_per_gpu)
    n = len(counts)
    total = sum(counts)
    if total == 0 or n <= 1:
        return 0.0
    uniform = 1.0 / n
    max_share = max(counts) / total
    return (max_share - uniform) / (1.0 - uniform)
