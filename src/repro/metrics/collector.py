"""Deep statistics harvesting from a simulated machine.

``collect_machine_stats`` walks every component of a :class:`Machine`
after a run and returns one nested, JSON-serializable dictionary: cache
and TLB hit rates, DRAM and fabric utilization, IOMMU walker pressure,
per-CU issue counts, driver decisions, DPC classification counts.  This
is the "perf counters" view a performance engineer would pull from real
hardware, and what the CLI's detail mode prints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.interconnect.link import CPU_PORT

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine


def _cache_stats(cache) -> dict:
    return {
        "accesses": cache.accesses,
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_rate": round(cache.hit_rate(), 4),
        "evictions": cache.evictions,
        "flushed_lines": cache.flushed_lines,
    }


def _tlb_stats(tlb) -> dict:
    return {
        "accesses": tlb.accesses,
        "hit_rate": round(tlb.hit_rate(), 4),
        "invalidations": tlb.invalidations,
        "occupancy": tlb.occupancy(),
    }


def _aggregate_caches(caches) -> dict:
    accesses = sum(c.accesses for c in caches)
    hits = sum(c.hits for c in caches)
    return {
        "accesses": accesses,
        "hits": hits,
        "hit_rate": round(hits / accesses, 4) if accesses else 0.0,
        "evictions": sum(c.evictions for c in caches),
        "flushed_lines": sum(c.flushed_lines for c in caches),
    }


def _aggregate_tlbs(tlbs) -> dict:
    accesses = sum(t.accesses for t in tlbs)
    hits = sum(t.hits for t in tlbs)
    return {
        "accesses": accesses,
        "hit_rate": round(hits / accesses, 4) if accesses else 0.0,
        "invalidations": sum(t.invalidations for t in tlbs),
    }


def _resilience_stats(machine: "Machine") -> dict:
    """Fault-injection and recovery counters (all zero on clean runs)."""
    driver = machine.driver
    injector = machine.fault_injector
    stats = {
        "faults_enabled": machine.faults is not None,
        "migration_retries": int(driver.stat("migration_retries")),
        "migration_fallbacks": int(driver.stat("migration_fallbacks")),
        "pages_pinned": int(driver.stat("pages_pinned")),
        "pinned_dca_redirects": int(driver.stat("pinned_dca_redirects")),
    }
    if injector is not None:
        stats.update({
            "transfers_dropped": int(injector.stat("transfers_dropped")),
            "shootdown_timeouts": int(injector.stat("shootdown_timeouts")),
            "shootdown_ack_delay_cycles": int(
                injector.stat("shootdown_ack_delay_cycles")
            ),
            "link_degraded_transfers": int(
                injector.stat("link_degraded_transfers")
            ),
            "throttled_issues": int(injector.stat("throttled_issues")),
        })
    return stats


def collect_machine_stats(machine: "Machine") -> dict:
    """Harvest a nested statistics report from a finished machine."""
    elapsed = machine.finish_time or machine.engine.now or 1.0

    gpus = {}
    for gpu in machine.gpus:
        hierarchy = gpu.hierarchy
        cus = gpu.all_cus()
        tx_util, rx_util = machine.fabric.port_utilization(gpu.gpu_id, elapsed)
        gpus[f"gpu{gpu.gpu_id}"] = {
            "l1_vector": _aggregate_caches(hierarchy.l1v),
            "l2": _aggregate_caches(hierarchy.l2),
            "remote_cache": (
                _cache_stats(hierarchy.remote_cache)
                if hierarchy.remote_cache is not None else None
            ),
            "remote_cache_hits": hierarchy.remote_cache_hits,
            "dram": {
                "accesses": hierarchy.dram.accesses,
                "bytes": hierarchy.dram.total_bytes(),
                "utilization": round(hierarchy.dram.utilization(elapsed), 4),
            },
            "l1_tlbs": _aggregate_tlbs(gpu.l1_tlbs),
            "l2_tlb": _tlb_stats(gpu.l2_tlb),
            "rdma_requests": int(gpu.rdma.stat("requests")),
            "link": {"tx_utilization": round(tx_util, 4),
                     "rx_utilization": round(rx_util, 4)},
            "compute_units": {
                "transactions_issued": int(sum(c.stat("transactions_issued") for c in cus)),
                "workgroups_completed": int(sum(c.stat("workgroups_completed") for c in cus)),
                "drain_requests": int(sum(c.stat("drain_requests") for c in cus)),
                "flush_requests": int(sum(c.stat("flush_requests") for c in cus)),
                "flush_discarded_txns": int(sum(c.stat("flush_discarded_txns") for c in cus)),
                "flush_replayed_accesses": int(sum(c.stat("flush_replayed_accesses") for c in cus)),
            },
            "local_accesses": hierarchy.local_accesses,
            "remote_services": hierarchy.remote_services,
            "resident_pages": machine.page_table.gpu_page_count(gpu.gpu_id),
        }

    driver = machine.driver
    cpu_tx, cpu_rx = machine.fabric.port_utilization(CPU_PORT, elapsed)
    return {
        "elapsed_cycles": elapsed,
        "events_executed": machine.engine.events_executed,
        "policy": machine.policy.name,
        "gpus": gpus,
        "iommu": {
            "translation_requests": int(machine.iommu.stat("translation_requests")),
            "walks": machine.iommu.walkers.total_jobs,
            "walker_wait_cycles": round(machine.iommu.walkers.total_wait, 1),
        },
        "cpu_link": {"tx_utilization": round(cpu_tx, 4),
                     "rx_utilization": round(cpu_rx, 4)},
        "driver": {
            "fault_batches": int(driver.stat("fault_batches")),
            "fault_pages_migrated": int(driver.stat("fault_pages_migrated")),
            "cpu_dca_redirects": int(driver.stat("cpu_dca_redirects")),
            "migration_rounds": int(driver.stat("migration_rounds")),
            "inter_gpu_pages_migrated": int(driver.stat("inter_gpu_pages_migrated")),
            "rounds_skipped_busy": int(driver.stat("rounds_skipped_busy")),
            "speculative_candidates": int(driver.stat("speculative_candidates")),
            "dftm_denials": driver.dftm.denials,
            "dftm_second_touch": driver.dftm.second_touch_migrations,
        },
        "dpc": {
            "updates": driver.dpc.updates,
            "tracked_pages": driver.dpc.tracked_pages(),
            "class_counts": {
                cls.value: count for cls, count in driver.dpc.class_counts.items()
            },
        },
        "shootdowns": {
            "cpu": machine.shootdowns.cpu_shootdowns,
            "gpu": machine.shootdowns.gpu_shootdowns,
            "gpu_entries_invalidated": machine.shootdowns.gpu_entries_invalidated,
            "injected_timeouts": machine.shootdowns.timeouts,
            "injected_ack_delay_cycles": machine.shootdowns.ack_delay_cycles,
        },
        "resilience": _resilience_stats(machine),
        "page_table": {
            "total_migrations": machine.page_table.total_migrations,
            "cpu_to_gpu": machine.page_table.cpu_to_gpu_migrations,
            "gpu_to_gpu": machine.page_table.gpu_to_gpu_migrations,
            "gpu_resident_pages": machine.page_table.total_gpu_pages(),
        },
        "access_kinds": {
            kind.value: count
            for kind, count in machine.access_path.kind_counts.items()
        },
    }


def render_stats(stats: dict, indent: int = 0) -> str:
    """Render the nested stats dict as indented plain text."""
    lines = []
    pad = "  " * indent
    for key, value in stats.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render_stats(value, indent + 1))
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
