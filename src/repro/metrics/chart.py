"""ASCII charts for the terminal: bars and grouped bars.

The paper's evaluation figures are bar charts; these renderers let the
CLI and the benches show the same visual shape without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    reference: Optional[float] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Render labelled horizontal bars.

    Args:
        values: label -> value (bars are scaled to the maximum).
        title: Optional heading.
        width: Character width of the longest bar.
        reference: Draw a ``|`` marker at this value on every row (e.g.
            1.0 on a speedup chart).
        fmt: Number format for the value column.
    """
    if not values:
        return title
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(str(k)) for k in values)
    ref_col = None
    if reference is not None and 0 < reference <= peak:
        ref_col = int(round(reference / peak * width))

    lines = [title] if title else []
    for label, value in values.items():
        filled = int(round(max(value, 0.0) / peak * width))
        bar = list("#" * filled + " " * (width - filled))
        if ref_col is not None and 0 <= ref_col < width and bar[ref_col] == " ":
            bar[ref_col] = "|"
        lines.append(
            f"{str(label).ljust(label_w)}  {''.join(bar)}  {fmt.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 30,
    fmt: str = "{:.2f}",
) -> str:
    """Render grouped bars: one block per group, one bar per series.

    ``groups`` maps group label -> {series label -> value}; all bars share
    one scale so groups are comparable (the paper's per-workload figure
    layout).
    """
    if not groups:
        return title
    peak = max(
        (v for series in groups.values() for v in series.values()), default=1.0
    )
    if peak <= 0:
        peak = 1.0
    series_w = max(
        (len(str(s)) for series in groups.values() for s in series), default=0
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            filled = int(round(max(value, 0.0) / peak * width))
            lines.append(
                f"  {str(name).ljust(series_w)}  "
                f"{'#' * filled}{' ' * (width - filled)}  {fmt.format(value)}"
            )
    return "\n".join(lines)
