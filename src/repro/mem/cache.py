"""Set-associative cache with LRU replacement and per-page flush.

The simulator tracks cache *presence*, not data: a lookup reports hit or
miss (installing the line on miss), and page migration flushes the lines of
the migrating pages, charging the per-line flush latency configured in
:class:`repro.config.system.TimingConfig`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config.system import CacheConfig


class Cache:
    """A set-associative cache of line tags.

    Lines are tracked as ``line_id = address >> log2(line_bytes)``.
    A per-page index (page -> set of line_ids) makes targeted flushes of a
    migrating page O(lines-of-page), which is what ACUD's selective L2
    flush needs.
    """

    __slots__ = (
        "name", "config", "_sets", "_page_lines", "_line_shift",
        "_page_shift", "hits", "misses", "evictions", "flushed_lines",
    )

    def __init__(self, name: str, config: CacheConfig, page_size: int = 4096) -> None:
        self.name = name
        self.config = config
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._page_lines: dict[int, set[int]] = {}
        self._line_shift = config.line_bytes.bit_length() - 1
        self._page_shift = page_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushed_lines = 0

    def line_id(self, address: int) -> int:
        return address >> self._line_shift

    def _page_of_line(self, line: int) -> int:
        return line >> (self._page_shift - self._line_shift)

    def _unindex(self, line: int) -> None:
        page = self._page_of_line(line)
        lines = self._page_lines.get(page)
        if lines is not None:
            lines.discard(line)
            if not lines:
                del self._page_lines[page]

    def access(self, address: int, is_write: bool) -> bool:
        """Probe the cache; on miss, install the line (allocate-on-miss).

        Returns True on hit.  Writes mark the line dirty, which only
        matters for flush accounting (dirty lines cost a writeback).
        """
        line = self.line_id(address)
        entries = self._sets[line % self.config.num_sets]
        if line in entries:
            entries.move_to_end(line)
            if is_write:
                entries[line] = True
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.config.ways:
            victim, _dirty = entries.popitem(last=False)
            self._unindex(victim)
            self.evictions += 1
        entries[line] = is_write
        self._page_lines.setdefault(self._page_of_line(line), set()).add(line)
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive probe (no LRU update, no stats)."""
        line = self.line_id(address)
        return line in self._sets[line % self.config.num_sets]

    def invalidate_address(self, address: int) -> bool:
        """Drop the single line holding ``address`` if present."""
        line = self.line_id(address)
        entries = self._sets[line % self.config.num_sets]
        if line not in entries:
            return False
        del entries[line]
        self._unindex(line)
        self.flushed_lines += 1
        return True

    def flush_pages(self, pages) -> tuple[int, int]:
        """Invalidate all lines of the given pages.

        Returns ``(lines_flushed, dirty_lines)``; dirty lines require a
        writeback before the page data can transfer.
        """
        flushed = 0
        dirty = 0
        for page in pages:
            lines = self._page_lines.pop(page, None)
            if not lines:
                continue
            for line in lines:
                entries = self._sets[line % self.config.num_sets]
                was_dirty = entries.pop(line, False)
                flushed += 1
                if was_dirty:
                    dirty += 1
        self.flushed_lines += flushed
        return flushed, dirty

    def flush_all(self) -> int:
        """Invalidate the whole cache (full pipeline-flush path)."""
        flushed = sum(len(s) for s in self._sets)
        for entries in self._sets:
            entries.clear()
        self._page_lines.clear()
        self.flushed_lines += flushed
        return flushed

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses
