"""Set-associative cache with LRU replacement and per-page flush.

The simulator tracks cache *presence*, not data: a lookup reports hit or
miss (installing the line on miss), and page migration flushes the lines of
the migrating pages, charging the per-line flush latency configured in
:class:`repro.config.system.TimingConfig`.
"""

from __future__ import annotations

from repro.config.system import CacheConfig

_MISS = object()


class Cache:
    """A set-associative cache of line tags.

    Lines are tracked as ``line_id = address >> log2(line_bytes)``.
    A per-page index (page -> set of line_ids) makes targeted flushes of a
    migrating page O(lines-of-page), which is what ACUD's selective L2
    flush needs.
    """

    __slots__ = (
        "name", "config", "_sets", "_page_lines", "_line_shift",
        "_page_shift", "_num_sets", "_set_mask", "_ways",
        "_mru_line", "_mru_entries",
        "hits", "misses", "evictions", "flushed_lines",
    )

    def __init__(self, name: str, config: CacheConfig, page_size: int = 4096) -> None:
        self.name = name
        self.config = config
        # Plain dicts: insertion order is the LRU order (see TLB); the
        # first key is the victim.
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(config.num_sets)
        ]
        self._page_lines: dict[int, set[int]] = {}
        self._line_shift = config.line_bytes.bit_length() - 1
        self._page_shift = page_size.bit_length() - 1
        self._num_sets = config.num_sets
        self._set_mask = config.set_mask
        self._ways = config.ways
        self._mru_line = -1
        self._mru_entries: dict[int, bool] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushed_lines = 0

    def line_id(self, address: int) -> int:
        return address >> self._line_shift

    def _page_of_line(self, line: int) -> int:
        return line >> (self._page_shift - self._line_shift)

    def _unindex(self, line: int) -> None:
        page = self._page_of_line(line)
        lines = self._page_lines.get(page)
        if lines is not None:
            lines.discard(line)
            if not lines:
                del self._page_lines[page]

    def access(self, address: int, is_write: bool) -> bool:
        """Probe the cache; on miss, install the line (allocate-on-miss).

        Returns True on hit.  Writes mark the line dirty, which only
        matters for flush accounting (dirty lines cost a writeback).
        """
        line = address >> self._line_shift
        if line == self._mru_line:
            # Already most-recent in its set; reordering would be a no-op.
            if is_write:
                self._mru_entries[line] = True
            self.hits += 1
            return True
        mask = self._set_mask
        entries = self._sets[line & mask if mask >= 0 else line % self._num_sets]
        # Single probe: pop tells us hit/miss and yields the dirty bit.
        dirty = entries.pop(line, _MISS)
        if dirty is not _MISS:
            entries[line] = True if is_write else dirty
            self._mru_line = line
            self._mru_entries = entries
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self._ways:
            victim = next(iter(entries))
            del entries[victim]
            self._unindex(victim)
            self.evictions += 1
        entries[line] = is_write
        self._mru_line = line
        self._mru_entries = entries
        self._page_lines.setdefault(self._page_of_line(line), set()).add(line)
        return False

    def _set_for(self, line: int) -> dict:
        mask = self._set_mask
        if mask >= 0:
            return self._sets[line & mask]
        return self._sets[line % self._num_sets]

    def contains(self, address: int) -> bool:
        """Non-destructive probe (no LRU update, no stats)."""
        line = self.line_id(address)
        return line in self._set_for(line)

    def invalidate_address(self, address: int) -> bool:
        """Drop the single line holding ``address`` if present."""
        line = self.line_id(address)
        entries = self._set_for(line)
        if line not in entries:
            return False
        if line == self._mru_line:
            self._mru_line = -1
        del entries[line]
        self._unindex(line)
        self.flushed_lines += 1
        return True

    def flush_pages(self, pages) -> tuple[int, int]:
        """Invalidate all lines of the given pages.

        Returns ``(lines_flushed, dirty_lines)``; dirty lines require a
        writeback before the page data can transfer.
        """
        self._mru_line = -1
        flushed = 0
        dirty = 0
        for page in pages:
            lines = self._page_lines.pop(page, None)
            if not lines:
                continue
            for line in lines:
                entries = self._set_for(line)
                was_dirty = entries.pop(line, False)
                flushed += 1
                if was_dirty:
                    dirty += 1
        self.flushed_lines += flushed
        return flushed, dirty

    def flush_all(self) -> int:
        """Invalidate the whole cache (full pipeline-flush path)."""
        self._mru_line = -1
        flushed = sum(len(s) for s in self._sets)
        for entries in self._sets:
            entries.clear()
        self._page_lines.clear()
        self.flushed_lines += flushed
        return flushed

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses
