"""HBM DRAM bandwidth/latency model.

Each channel is a :class:`~repro.sim.resource.ThroughputResource`; lines are
interleaved across channels by line address, matching the eight-channel HBM
organisation of Table II.  An access pays the fixed access latency plus any
queuing delay on its channel.
"""

from __future__ import annotations

from repro.config.system import DRAMConfig
from repro.sim.resource import ThroughputResource


class DRAM:
    """A multi-channel DRAM stack."""

    def __init__(self, name: str, config: DRAMConfig, line_bytes: int = 64) -> None:
        self.name = name
        self.config = config
        self.line_bytes = line_bytes
        self._channels = [
            ThroughputResource(f"{name}.ch{i}", config.bytes_per_cycle)
            for i in range(config.channels)
        ]
        self._line_shift = (
            line_bytes.bit_length() - 1
            if line_bytes & (line_bytes - 1) == 0 else -1
        )
        n = config.channels
        self._channel_mask = n - 1 if n & (n - 1) == 0 else -1
        self.accesses = 0

    def channel_for(self, address: int) -> ThroughputResource:
        shift = self._line_shift
        line = address >> shift if shift >= 0 else address // self.line_bytes
        mask = self._channel_mask
        return self._channels[line & mask if mask >= 0 else line % self.config.channels]

    def access(self, now: float, address: int, size_bytes: int) -> float:
        """Service one access; returns the completion time."""
        self.accesses += 1
        shift = self._line_shift
        line = address >> shift if shift >= 0 else address // self.line_bytes
        mask = self._channel_mask
        channel = self._channels[
            line & mask if mask >= 0 else line % self.config.channels
        ]
        # Inlined ThroughputResource.acquire (same arithmetic/stats).
        start = now if now > channel.busy_until else channel.busy_until
        channel.total_wait += start - now
        finish = start + size_bytes / channel.bytes_per_cycle
        channel.busy_until = finish
        channel.total_bytes += size_bytes
        channel.total_jobs += 1
        return finish + self.config.latency

    def bulk_read(self, now: float, address: int, size_bytes: int) -> float:
        """Stream a large block (page transfer); returns completion time.

        Spreads the block across all channels, so effective bandwidth is
        the aggregate — page migration DMA is not limited to one channel.
        """
        self.accesses += 1
        per_channel = size_bytes / self.config.channels
        finish = now
        for channel in self._channels:
            finish = max(finish, channel.acquire(now, per_channel))
        return finish + self.config.latency

    def total_bytes(self) -> int:
        return sum(int(c.total_bytes) for c in self._channels)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        per = [c.utilization(elapsed) for c in self._channels]
        return sum(per) / len(per)
