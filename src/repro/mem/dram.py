"""HBM DRAM bandwidth/latency model.

Each channel is a :class:`~repro.sim.resource.ThroughputResource`; lines are
interleaved across channels by line address, matching the eight-channel HBM
organisation of Table II.  An access pays the fixed access latency plus any
queuing delay on its channel.
"""

from __future__ import annotations

from repro.config.system import DRAMConfig
from repro.sim.resource import ThroughputResource


class DRAM:
    """A multi-channel DRAM stack."""

    def __init__(self, name: str, config: DRAMConfig, line_bytes: int = 64) -> None:
        self.name = name
        self.config = config
        self.line_bytes = line_bytes
        self._channels = [
            ThroughputResource(f"{name}.ch{i}", config.bytes_per_cycle)
            for i in range(config.channels)
        ]
        self.accesses = 0

    def channel_for(self, address: int) -> ThroughputResource:
        line = address // self.line_bytes
        return self._channels[line % self.config.channels]

    def access(self, now: float, address: int, size_bytes: int) -> float:
        """Service one access; returns the completion time."""
        self.accesses += 1
        channel = self.channel_for(address)
        finish = channel.acquire(now, size_bytes)
        return finish + self.config.latency

    def bulk_read(self, now: float, address: int, size_bytes: int) -> float:
        """Stream a large block (page transfer); returns completion time.

        Spreads the block across all channels, so effective bandwidth is
        the aggregate — page migration DMA is not limited to one channel.
        """
        self.accesses += 1
        per_channel = size_bytes / self.config.channels
        finish = now
        for channel in self._channels:
            finish = max(finish, channel.acquire(now, per_channel))
        return finish + self.config.latency

    def total_bytes(self) -> int:
        return sum(int(c.total_bytes) for c in self._channels)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        per = [c.utilization(elapsed) for c in self._channels]
        return sum(per) / len(per)
