"""Memory substrate: caches, DRAM bandwidth model, transaction types."""

from repro.mem.access import AccessKind, MemoryTransaction
from repro.mem.cache import Cache
from repro.mem.dram import DRAM
from repro.mem.hierarchy import GPUMemoryHierarchy

__all__ = [
    "AccessKind",
    "MemoryTransaction",
    "Cache",
    "DRAM",
    "GPUMemoryHierarchy",
]
