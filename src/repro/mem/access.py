"""Memory transaction types.

A :class:`MemoryTransaction` is one post-coalescing memory access — the
granularity at which the paper's DPC access counters operate ("a table that
records the number of post-coalescing memory transactions that access each
page").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_txn_ids = itertools.count()


class AccessKind(enum.Enum):
    """How a transaction was ultimately serviced."""

    LOCAL = "local"            # page resident on the issuing GPU
    REMOTE_DCA = "remote_dca"  # direct cache access to another GPU's L2
    REMOTE_CACHE = "remote_cache"  # hit in the CARVE-style remote cache
    CPU_DCA = "cpu_dca"        # direct access to CPU memory (DFTM denial)
    FAULT_MIGRATE = "fault_migrate"  # triggered a CPU->GPU page migration


@dataclass(slots=True)
class MemoryTransaction:
    """One post-coalescing memory access issued by a CU.

    Attributes:
        txn_id: Unique id (deterministic issue order).
        gpu_id / se_id / cu_id: Issuing hardware location.
        address: Virtual byte address.
        page: Virtual page number (filled at issue).
        is_write: Write vs. read.
        issue_time: Cycle the CU issued the access.
        complete_time: Cycle the data returned (set on completion).
        kind: How the access was serviced (set during translation).
        workgroup_id: Issuing workgroup (for drain bookkeeping/debug).
    """

    gpu_id: int
    se_id: int
    cu_id: int
    address: int
    is_write: bool
    issue_time: float
    page: int = -1
    complete_time: Optional[float] = None
    kind: Optional[AccessKind] = None
    workgroup_id: int = -1
    txn_id: int = field(default_factory=lambda: next(_txn_ids))

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency in cycles, if completed."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.issue_time
