"""Per-GPU memory hierarchy: per-CU L1 vector caches, L2 slices, HBM.

The hierarchy exposes three operations the rest of the system composes:

* :meth:`local_access` — a CU accessing its own GPU's memory (L1 -> L2 ->
  DRAM), the fast path Griffin tries to maximize.
* :meth:`remote_service` — servicing an incoming RDMA (DCA) request from
  another device at this GPU's L2, the paper's Figure 4 path.
* :meth:`flush_pages` / :meth:`flush_all` — targeted (ACUD) versus full
  (pipeline-flush) cache cleansing before a page migrates out.
"""

from __future__ import annotations

from repro.config.system import KB, CacheConfig, GPUConfig, TimingConfig
from repro.mem.cache import Cache
from repro.mem.dram import DRAM


class GPUMemoryHierarchy:
    """Caches plus DRAM for one GPU."""

    def __init__(
        self,
        gpu_id: int,
        config: GPUConfig,
        timing: TimingConfig,
        page_size: int,
    ) -> None:
        self.gpu_id = gpu_id
        self.config = config
        self.timing = timing
        self.page_size = page_size
        self.l1v = [
            Cache(f"gpu{gpu_id}.cu{c}.l1v", config.l1v, page_size)
            for c in range(config.num_cus)
        ]
        self.l2 = [
            Cache(f"gpu{gpu_id}.l2s{s}", config.l2, page_size)
            for s in range(config.l2_slices)
        ]
        self.dram = DRAM(f"gpu{gpu_id}.dram", config.dram, config.l2.line_bytes)
        # CARVE-style remote cache (optional): local DRAM carved out to
        # hold remote read data; ~DRAM-speed hits instead of fabric trips.
        self.remote_cache = None
        if config.remote_cache_kb > 0:
            self.remote_cache = Cache(
                f"gpu{gpu_id}.carve",
                CacheConfig(config.remote_cache_kb * KB, 8, config.l2.line_bytes),
                page_size,
            )
        self._line_bytes = config.l2.line_bytes
        self._line_shift = config.l2.line_bytes.bit_length() - 1
        n_slices = config.l2_slices
        self._slice_mask = n_slices - 1 if n_slices & (n_slices - 1) == 0 else -1
        self._l1_latency = config.l1v.latency
        # Matches the original `xbar_latency + l2.latency` int sum exactly.
        self._l2_step = config.xbar_latency + config.l2.latency
        self._l2_latency = config.l2.latency
        # MSHR-style miss merging: line -> completion time of the
        # outstanding fill.  A miss on a line already being fetched
        # completes with that fill instead of issuing another DRAM access.
        self._pending_fills: dict[int, float] = {}
        self.local_accesses = 0
        self.remote_services = 0
        self.remote_cache_hits = 0
        self.mshr_merges = 0

    def _l2_slice(self, address: int) -> Cache:
        line = address >> self._line_shift
        mask = self._slice_mask
        return self.l2[line & mask if mask >= 0 else line % len(self.l2)]

    def _fill_from_dram(self, t: float, address: int) -> float:
        """Fetch a line from DRAM and register the outstanding fill."""
        finish = self.dram.access(t, address, self._line_bytes)
        self._pending_fills[address >> self._line_shift] = finish
        if len(self._pending_fills) > 4096:
            self._pending_fills = {
                line: f for line, f in self._pending_fills.items() if f > t
            }
        return finish

    def _hit_under_fill(self, t: float, address: int) -> float:
        """MSHR semantics: a hit on a line whose fill is still in flight
        completes with the fill, not instantly (the tag was installed at
        miss time, but the data arrives with the DRAM response)."""
        pending = self._pending_fills.get(address >> self._line_shift)
        if pending is not None and pending > t:
            self.mshr_merges += 1
            return pending
        return t

    def local_access(self, now: float, cu_index: int, address: int, is_write: bool) -> float:
        """A CU access to this GPU's own memory; returns completion time."""
        self.local_accesses += 1
        t = now + self._l1_latency
        if self.l1v[cu_index].access(address, is_write):
            # Inlined _hit_under_fill: this is the hottest branch.
            pending = self._pending_fills.get(address >> self._line_shift)
            if pending is not None and pending > t:
                self.mshr_merges += 1
                return pending
            return t
        t += self._l2_step
        if self._l2_slice(address).access(address, is_write):
            return self._hit_under_fill(t, address)
        return self._fill_from_dram(t, address)

    def remote_service(self, now: float, address: int, is_write: bool) -> float:
        """Service an incoming DCA request at the L2 (paper Fig. 4 step 3)."""
        self.remote_services += 1
        t = now + self._l2_latency
        if self._l2_slice(address).access(address, is_write):
            return self._hit_under_fill(t, address)
        return self._fill_from_dram(t, address)

    def remote_cache_lookup(self, now: float, address: int) -> float:
        """Probe the CARVE carve-out for a remote read.

        Returns the completion time on a hit, or -1.0 on miss/disabled.
        """
        if self.remote_cache is None or not self.remote_cache.contains(address):
            return -1.0
        self.remote_cache_hits += 1
        self.remote_cache.access(address, False)
        return self.dram.access(now, address, self._line_bytes)

    def remote_cache_fill(self, address: int) -> None:
        """Install a remote read's line in the carve-out."""
        if self.remote_cache is not None:
            self.remote_cache.access(address, False)

    def remote_cache_invalidate(self, pages) -> int:
        """Drop cached remote lines of migrating pages (coherence)."""
        if self.remote_cache is None:
            return 0
        flushed, _ = self.remote_cache.flush_pages(pages)
        return flushed

    def flush_pages(self, pages) -> tuple[int, int]:
        """Targeted flush of all lines belonging to ``pages``.

        Returns (lines_flushed, dirty_lines) summed over L1s and L2 slices.
        Used by ACUD's selective flush and by the shootdown path.
        """
        lines = 0
        dirty = 0
        for cache in self.l1v:
            f, d = cache.flush_pages(pages)
            lines += f
            dirty += d
        for cache in self.l2:
            f, d = cache.flush_pages(pages)
            lines += f
            dirty += d
        return lines, dirty

    def flush_all(self) -> int:
        """Full cache flush (pipeline-flush migration path)."""
        flushed = 0
        for cache in self.l1v:
            flushed += cache.flush_all()
        for cache in self.l2:
            flushed += cache.flush_all()
        return flushed

    def targeted_flush_cost(self, lines_flushed: int) -> float:
        """Cycles to flush ``lines_flushed`` lines from the L2."""
        return lines_flushed * self.timing.l2_flush_per_line
