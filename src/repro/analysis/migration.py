"""Migration auditing: was each inter-GPU migration worth it?

The paper observes that Griffin's migration is reactive — a page moves
only after DPC recognizes the benefit — and that on irregular workloads
(PR) migrations can land after the accessor has already moved on.  This
module quantifies that per migration: for each GPU-to-GPU move it counts
the destination GPU's share of the page's accesses in the window after
the move, and grades the move.

Requires a run with ``keep_timeline=True`` and the page in the timeline's
watch set, or — the common case — audits at whole-run granularity using
the per-(page, GPU) totals recorded for every page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.harness.results import RunResult


class MigrationVerdict(enum.Enum):
    """Grade of one inter-GPU migration."""

    JUSTIFIED = "justified"      # destination is a top accessor of the page
    NEUTRAL = "neutral"          # destination accesses it, but not dominantly
    WASTED = "wasted"            # destination barely touches the page


@dataclass(frozen=True)
class MigrationAudit:
    """The audit of one run's inter-GPU migrations.

    Attributes:
        total: Inter-GPU migrations audited.
        verdicts: Migration count per verdict.
        justified_fraction: Share graded JUSTIFIED.
        per_page_moves: page -> number of inter-GPU moves (ping-pong
            shows up as pages with many moves).
        ping_pong_pages: Pages that moved 3+ times between GPUs.
    """

    total: int
    verdicts: dict
    justified_fraction: float
    per_page_moves: dict
    ping_pong_pages: list

    def render(self) -> str:
        lines = [f"Inter-GPU migrations audited: {self.total}"]
        for verdict in MigrationVerdict:
            count = self.verdicts.get(verdict, 0)
            share = count / self.total if self.total else 0.0
            lines.append(f"  {verdict.value:<10} {count:>5}  ({share:.0%})")
        if self.ping_pong_pages:
            lines.append(
                f"  ping-pong pages (3+ moves): {len(self.ping_pong_pages)}"
            )
        return "\n".join(lines)


def audit_migrations(
    result: RunResult,
    justified_share: float = 0.4,
    wasted_share: float = 0.1,
) -> MigrationAudit:
    """Grade every inter-GPU migration of a run.

    A move to GPU *g* at time *t* is graded by *g*'s share of the page's
    accesses in the window from *t* to the page's next move (or the end
    of the run): JUSTIFIED at or above ``justified_share``, WASTED under
    ``wasted_share``, NEUTRAL otherwise.  The windowed view needs a
    bucketized series — run with ``watch_pages="all"`` (preferred) or
    watch the pages of interest; pages without a series fall back to
    whole-run totals.

    Requires ``keep_timeline=True`` on the run.
    """
    if result.timeline is None:
        raise ValueError("audit requires a run with keep_timeline=True")
    timeline = result.timeline

    inter_moves = [
        e for e in result.migration_events if e.src >= 0 and e.dst >= 0
    ]
    next_move_at: dict = {}
    move_windows = []
    for event in sorted(inter_moves, key=lambda e: e.time, reverse=True):
        end = next_move_at.get(event.page, result.cycles)
        move_windows.append((event, end))
        next_move_at[event.page] = event.time
    move_windows.reverse()

    verdicts: dict = {v: 0 for v in MigrationVerdict}
    per_page_moves: dict = {}
    total = 0
    for event, window_end in move_windows:
        total += 1
        per_page_moves[event.page] = per_page_moves.get(event.page, 0) + 1
        counts = timeline.window_counts(event.page, event.time, window_end)
        if sum(counts) == 0:
            counts = timeline.per_gpu_totals(event.page)
        page_total = sum(counts)
        share = counts[event.dst] / page_total if page_total else 0.0
        if share >= justified_share:
            verdicts[MigrationVerdict.JUSTIFIED] += 1
        elif share < wasted_share:
            verdicts[MigrationVerdict.WASTED] += 1
        else:
            verdicts[MigrationVerdict.NEUTRAL] += 1

    justified = verdicts[MigrationVerdict.JUSTIFIED]
    return MigrationAudit(
        total=total,
        verdicts=verdicts,
        justified_fraction=justified / total if total else 0.0,
        per_page_moves=per_page_moves,
        ping_pong_pages=sorted(
            p for p, n in per_page_moves.items() if n >= 3
        ),
    )
