"""Page-sharing profiles: how many GPUs touch each page, how hard.

A compact summary of the property that decides whether first-touch
pinning, DCA, or migration is the right tool for a page — the axis the
paper's Table III "access pattern" column describes qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.results import RunResult


@dataclass(frozen=True)
class SharingProfile:
    """Sharing structure of one run's touched pages.

    Attributes:
        total_pages: Pages touched at least once.
        pages_by_degree: sharing degree (GPU count) -> page count.
        private_fraction: Pages touched by exactly one GPU.
        fully_shared_fraction: Pages touched by every GPU.
        touch_once_fraction: Pages with exactly one access, ever.
        gini: Inequality of per-page access totals in [0, 1]
            (0 = all pages equally hot).
    """

    total_pages: int
    pages_by_degree: dict
    private_fraction: float
    fully_shared_fraction: float
    touch_once_fraction: float
    gini: float

    def render(self) -> str:
        lines = [f"Pages touched: {self.total_pages}"]
        for degree in sorted(self.pages_by_degree):
            count = self.pages_by_degree[degree]
            lines.append(f"  shared by {degree} GPU(s): {count:>5}  "
                         f"({count / self.total_pages:.0%})")
        lines.append(f"  touch-once pages: {self.touch_once_fraction:.0%}")
        lines.append(f"  access-heat gini: {self.gini:.2f}")
        return "\n".join(lines)


def _gini(values) -> float:
    vals = sorted(v for v in values if v > 0)
    n = len(vals)
    if n == 0:
        return 0.0
    total = sum(vals)
    if total == 0:
        return 0.0
    cumulative = 0.0
    for i, v in enumerate(vals, start=1):
        cumulative += i * v
    return max(0.0, (2.0 * cumulative) / (n * total) - (n + 1) / n)


def profile_sharing(result: RunResult) -> SharingProfile:
    """Build the sharing profile of a run (requires keep_timeline=True)."""
    if result.timeline is None:
        raise ValueError("profiling requires a run with keep_timeline=True")
    timeline = result.timeline
    num_gpus = timeline.num_gpus

    degrees: dict = {}
    touch_once = 0
    heats = []
    total_pages = 0
    for page in timeline._totals:
        totals = timeline.per_gpu_totals(page)
        degree = sum(1 for c in totals if c > 0)
        heat = sum(totals)
        total_pages += 1
        degrees[degree] = degrees.get(degree, 0) + 1
        heats.append(heat)
        if heat == 1:
            touch_once += 1

    if total_pages == 0:
        return SharingProfile(0, {}, 0.0, 0.0, 0.0, 0.0)
    return SharingProfile(
        total_pages=total_pages,
        pages_by_degree=degrees,
        private_fraction=degrees.get(1, 0) / total_pages,
        fully_shared_fraction=degrees.get(num_gpus, 0) / total_pages,
        touch_once_fraction=touch_once / total_pages,
        gini=_gini(heats),
    )
