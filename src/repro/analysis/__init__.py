"""Post-run analysis: migration efficiency, sharing, phase structure."""

from repro.analysis.migration import (
    MigrationAudit,
    MigrationVerdict,
    audit_migrations,
)
from repro.analysis.sharing import SharingProfile, profile_sharing
from repro.analysis.phases import PhaseReport, detect_phases

__all__ = [
    "MigrationAudit",
    "MigrationVerdict",
    "audit_migrations",
    "SharingProfile",
    "profile_sharing",
    "PhaseReport",
    "detect_phases",
]
