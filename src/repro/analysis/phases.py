"""Phase detection from migration activity.

Kernels are bulk-synchronous, so ownership changes cluster at phase
boundaries.  This module recovers that structure from a run's migration
events alone — useful when analysing a run whose workload internals are
unknown (e.g. a loaded JSON result).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.results import RunResult


@dataclass(frozen=True)
class PhaseReport:
    """Clustered migration activity.

    Attributes:
        bursts: list of (start_cycle, end_cycle, migration_count).
        quiet_fraction: Share of the run with no migration activity.
        makespan: Run length in cycles.
    """

    bursts: list
    quiet_fraction: float
    makespan: float

    @property
    def num_bursts(self) -> int:
        return len(self.bursts)

    def render(self) -> str:
        lines = [f"{self.num_bursts} migration burst(s); "
                 f"{self.quiet_fraction:.0%} of the run quiet"]
        for start, end, count in self.bursts:
            lines.append(f"  [{int(start):>9} .. {int(end):>9}]  {count} moves")
        return "\n".join(lines)


def detect_phases(result: RunResult, gap_cycles: float = 50_000) -> PhaseReport:
    """Cluster migration events separated by less than ``gap_cycles``.

    Returns an empty report for runs without migrations.
    """
    events = sorted(e.time for e in result.migration_events)
    makespan = result.cycles
    if not events:
        return PhaseReport([], 1.0, makespan)

    bursts = []
    start = events[0]
    last = events[0]
    count = 1
    for t in events[1:]:
        if t - last <= gap_cycles:
            last = t
            count += 1
            continue
        bursts.append((start, last, count))
        start = last = t
        count = 1
    bursts.append((start, last, count))

    busy = sum(end - begin for begin, end, _ in bursts)
    quiet = max(0.0, 1.0 - busy / makespan) if makespan > 0 else 0.0
    return PhaseReport(bursts, quiet, makespan)
