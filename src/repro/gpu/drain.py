"""GPU-level drain orchestration: ACUD versus pipeline flush.

The controller fans a drain/flush request out to every CU of a GPU and
reports when all have completed (paper Figure 7's timeline).  The two
strategies differ exactly as the paper describes:

* **ACUD** pauses issue and waits only for in-flight transactions touching
  the migrating pages; no work is discarded, and the *Continue* message is
  sent before the page data transfer starts.
* **Pipeline flush** discards all in-flight work; completion waits for the
  pipeline to empty and pays a fixed flush cost plus a per-discarded-
  transaction replay penalty.

Cache and TLB cleansing is performed by the driver after the drain
completes, so shootdown accounting stays in one place
(:class:`repro.vm.shootdown.ShootdownAccounting`).
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.config.system import TimingConfig
from repro.sim.component import Component
from repro.sim.engine import Engine


class DrainController(Component):
    """Coordinates draining/flushing all CUs of one GPU.

    Completion callbacks are ``functools.partial`` objects over bound
    methods (never closures) so an in-flight drain survives the machine
    snapshot/fork pickle round-trip.
    """

    def __init__(self, engine: Engine, gpu) -> None:
        super().__init__(engine, f"gpu{gpu.gpu_id}.drain")
        self.gpu = gpu
        self.timing: TimingConfig = gpu.timing
        # Sanitizer tap (CheckRuntime) — None on ordinary runs.
        self._checks = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_checks"] = None
        return state

    def drain_acud(self, pages: set, callback: Callable[[float], None]) -> None:
        """ACUD: selective drain of transactions touching ``pages``."""
        self.bump("acud_drains")
        self.engine.post(
            self.timing.drain_request_cycles, self._deliver_drain, pages, callback
        )

    def drain_flush(self, callback: Callable[[float], None]) -> None:
        """Pipeline flush: discard and replay all in-flight work."""
        self.bump("pipeline_flushes")
        self.engine.post(
            self.timing.drain_request_cycles, self._deliver_flush, callback
        )

    def _deliver_drain(self, pages: set, callback: Callable[[float], None]) -> None:
        ck = self._checks
        if ck is not None:
            # Drain state flips at *delivery* time: CUs issue legitimately
            # between the request and its arrival at the GPU.
            ck.on_drain_start(self.gpu.gpu_id)
        cus = self.gpu.all_cus()
        cu_done = partial(self._cu_done, [len(cus)], callback)
        for cu in cus:
            cu.request_drain(pages, cu_done)

    def _deliver_flush(self, callback: Callable[[float], None]) -> None:
        ck = self._checks
        if ck is not None:
            ck.on_drain_start(self.gpu.gpu_id)
        cus = self.gpu.all_cus()
        cu_done = partial(self._cu_done, [len(cus)], callback)
        for cu in cus:
            cu.request_flush(cu_done)

    def _cu_done(self, remaining: list, callback: Callable[[float], None]) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            ck = self._checks
            if ck is not None:
                ck.on_drain_complete(self.gpu.gpu_id)
            callback(self.now)

    def resume_all(self) -> None:
        """Send *Continue* to every CU."""
        ck = self._checks
        if ck is not None:
            ck.on_resume(self.gpu.gpu_id)
        for cu in self.gpu.all_cus():
            cu.resume()
