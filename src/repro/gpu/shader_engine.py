"""Shader Engine: a group of CUs plus the DPC access-count table."""

from __future__ import annotations

from repro.gpu.access_counter import AccessCounterTable
from repro.gpu.compute_unit import ComputeUnit
from repro.sim.component import Component
from repro.sim.engine import Engine


class ShaderEngine(Component):
    """A group of up to 16 CUs sharing one page-access-counter table.

    The paper places the counter at the L1 level because caches are VIPT:
    "the access counter must be changed before the address translation is
    done" — we therefore record the access at issue time, before the TLB
    lookup.
    """

    def __init__(
        self,
        engine: Engine,
        gpu_id: int,
        se_id: int,
        counter_entries: int,
        counter_max: int,
    ) -> None:
        super().__init__(engine, f"gpu{gpu_id}.se{se_id}")
        self.gpu_id = gpu_id
        self.se_id = se_id
        self.cus: list[ComputeUnit] = []
        self.counters = AccessCounterTable(counter_entries, counter_max)

    def record_access(self, page: int) -> None:
        """Count one post-coalescing transaction (pre-translation)."""
        self.counters.record(page)

    def collect_counts(self) -> dict[int, int]:
        """Harvest and reset this SE's counter table (driver collection)."""
        return self.counters.collect_and_reset()
