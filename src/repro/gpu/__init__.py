"""GPU device model: CUs, Shader Engines, RDMA, PMC, draining, dispatch."""

from repro.gpu.wavefront import Kernel, WavefrontTrace, Workgroup
from repro.gpu.access_counter import AccessCounterTable
from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.shader_engine import ShaderEngine
from repro.gpu.rdma import RdmaEngine
from repro.gpu.pmc import PageMigrationController
from repro.gpu.drain import DrainController
from repro.gpu.gpu import GPU
from repro.gpu.dispatcher import Dispatcher

__all__ = [
    "Kernel",
    "WavefrontTrace",
    "Workgroup",
    "AccessCounterTable",
    "ComputeUnit",
    "ShaderEngine",
    "RdmaEngine",
    "PageMigrationController",
    "DrainController",
    "GPU",
    "Dispatcher",
]
