"""Per-Shader-Engine page access counter table (DPC's hardware half).

The paper augments each Shader Engine with "a table that records the number
of post-coalescing memory transactions that access each page": 100 entries,
each holding a 36-bit page ID and an 8-bit saturating count (2 200 bytes of
storage per GPU with 4 SEs).  The counters are harvested and reset every
``T_ac`` cycles by the GPU driver.
"""

from __future__ import annotations


class AccessCounterTable:
    """A bounded table of saturating per-page access counters.

    When the table is full and a new page arrives, the entry with the
    smallest count is evicted — a hardware-friendly victim choice that
    keeps the hot pages DPC actually cares about.
    """

    __slots__ = ("capacity", "max_count", "_counts", "recorded", "dropped", "evicted")

    def __init__(self, capacity: int = 100, max_count: int = 255) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.max_count = max_count
        self._counts: dict[int, int] = {}
        self.recorded = 0
        self.dropped = 0
        self.evicted = 0

    def record(self, page: int) -> None:
        """Count one post-coalescing transaction touching ``page``."""
        self.recorded += 1
        counts = self._counts
        try:
            current = counts[page]
        except KeyError:
            pass
        else:
            if current < self.max_count:
                counts[page] = current + 1
            return
        if len(self._counts) >= self.capacity:
            victim = min(self._counts, key=self._counts.__getitem__)
            if self._counts[victim] > 1:
                # Replacement would discard a hotter entry than the
                # newcomer; drop the newcomer instead (hardware tables do
                # not reshuffle on every conflict).
                self.dropped += 1
                return
            del self._counts[victim]
            self.evicted += 1
        self._counts[page] = 1

    def snapshot(self) -> dict[int, int]:
        """Current counts without resetting (for inspection)."""
        return dict(self._counts)

    def collect_and_reset(self) -> dict[int, int]:
        """Harvest the counters and clear the table (driver collection)."""
        counts = self._counts
        self._counts = {}
        return counts

    def __len__(self) -> int:
        return len(self._counts)
