"""Page Migration Controller.

The PMC performs the actual page data movement over the inter-device
fabric (paper Figure 3, step 3) and notifies the driver when each page
lands.  Transfers from one source serialize on that device's TX port, so a
batch of pages from one GPU streams back-to-back — the behaviour CPMS
exploits by grouping migrations per source.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.interconnect.link import InterconnectFabric
from repro.sim.component import Component
from repro.sim.engine import Engine


class PageMigrationController(Component):
    """Moves page data between devices over the fabric."""

    def __init__(
        self,
        engine: Engine,
        fabric: InterconnectFabric,
        page_size: int,
        per_page_setup: int = 10,
    ) -> None:
        super().__init__(engine, "pmc")
        self.fabric = fabric
        self.page_size = page_size
        self.per_page_setup = per_page_setup

    def transfer_pages(
        self,
        now: float,
        pages: Iterable[int],
        src: int,
        dst: int,
        on_page_arrival: Callable[[int, float], None],
        on_batch_done: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Stream pages ``src`` -> ``dst``; returns last arrival time.

        ``on_page_arrival(page, time)`` fires (as a scheduled event) when
        each page's data has fully landed at the destination.
        """
        t = now
        last = now
        for page in pages:
            t += self.per_page_setup
            arrival = self.fabric.transfer(t, src, dst, self.page_size)
            self.bump("pages_transferred")
            self.bump("bytes_transferred", self.page_size)
            self.engine.post_at(
                max(arrival, self.now), on_page_arrival, page, arrival
            )
            last = max(last, arrival)
        if on_batch_done is not None:
            self.engine.post_at(max(last, self.now), on_batch_done, last)
        return last
