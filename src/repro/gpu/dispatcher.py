"""Centralized workgroup dispatcher.

Implements the paper's Unified Multi-GPU model: a kernel's workgroups are
dispatched across GPUs (and round-robin across CUs within a GPU).
Kernels are bulk-synchronous — kernel ``k+1`` starts only after all
workgroups of kernel ``k`` complete.

Two assignment strategies are provided:

* ``round_robin`` (the paper's policy, default): workgroup *i* goes to
  GPU ``i % n``, interleaving neighbouring workgroups across GPUs.
* ``chunked``: contiguous blocks of workgroups go to the same GPU, the
  alternative NUMA-GPU studies compare against — it keeps adjacent
  (halo-sharing) workgroups on one GPU at the cost of coarser balance.

The dispatcher also reproduces the start-time skew that causes first-touch
imbalance: "GPU 1 always requests the first work-group in each round,
acquiring a slight 'advantage' in the competition for pages."  GPU ``i``'s
workgroups become eligible ``i * dispatch_skew_cycles`` after the kernel
start.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.gpu.gpu import GPU
from repro.gpu.wavefront import Kernel
from repro.sim.component import Component
from repro.sim.engine import Engine

DISPATCH_STRATEGIES = ("round_robin", "chunked")


class Dispatcher(Component):
    """Dispatches kernels across the multi-GPU system."""

    def __init__(
        self,
        engine: Engine,
        gpus: list[GPU],
        dispatch_skew_cycles: int,
        on_all_done: Optional[Callable[[float], None]] = None,
        strategy: str = "round_robin",
    ) -> None:
        super().__init__(engine, "dispatcher")
        if strategy not in DISPATCH_STRATEGIES:
            raise ValueError(
                f"unknown dispatch strategy {strategy!r}; "
                f"expected one of {DISPATCH_STRATEGIES}"
            )
        self.gpus = gpus
        self.dispatch_skew_cycles = dispatch_skew_cycles
        self.strategy = strategy
        self.on_all_done = on_all_done
        self._kernels: list[Kernel] = []
        self._kernel_index = 0
        self._pending_wgs = 0
        self._next_cu: list[int] = []
        self.finish_time: Optional[float] = None
        self.kernel_start_times: list[float] = []

    def run_kernels(self, kernels: list[Kernel]) -> None:
        """Begin executing the kernel sequence."""
        if not kernels:
            raise ValueError("no kernels to dispatch")
        self._kernels = kernels
        self._kernel_index = 0
        self._next_cu = [0] * len(self.gpus)
        self._dispatch_current_kernel()

    def _dispatch_current_kernel(self) -> None:
        kernel = self._kernels[self._kernel_index]
        start = self.now
        self.kernel_start_times.append(start)
        self.bump("kernels_dispatched")
        live = [wg for wg in kernel.workgroups if wg.total_accesses() > 0]
        self._pending_wgs = len(live)
        if not live:
            self._kernel_complete()
            return
        num_gpus = len(self.gpus)
        chunk = -(-len(live) // num_gpus)  # ceil division
        for i, workgroup in enumerate(live):
            if self.strategy == "chunked":
                gpu_index = min(i // chunk, num_gpus - 1)
            else:
                gpu_index = i % num_gpus
            gpu = self.gpus[gpu_index]
            cu_index = self._next_cu[gpu_index] % gpu.config.num_cus
            self._next_cu[gpu_index] += 1
            start_time = start + gpu_index * self.dispatch_skew_cycles
            gpu.cu(cu_index).enqueue_workgroup(workgroup, start_time)
            self.bump("workgroups_dispatched")

    def workgroup_complete(self, workgroup) -> None:
        """Callback from CUs when a workgroup finishes."""
        self._pending_wgs -= 1
        if self._pending_wgs == 0:
            self._kernel_complete()

    def _kernel_complete(self) -> None:
        self._kernel_index += 1
        if self._kernel_index < len(self._kernels):
            # A small launch gap models the host enqueueing the next kernel.
            self.engine.post(10, self._dispatch_current_kernel)
            return
        self.finish_time = self.now
        if self.on_all_done is not None:
            self.on_all_done(self.now)
