"""The GPU device: Shader Engines, CUs, TLBs, caches, RDMA, draining."""

from __future__ import annotations

from typing import Callable

from repro.config.hyperparams import GriffinHyperParams
from repro.config.system import GPUConfig, TimingConfig
from repro.gpu.compute_unit import ComputeUnit, IssueFn
from repro.gpu.drain import DrainController
from repro.gpu.rdma import RdmaEngine
from repro.gpu.shader_engine import ShaderEngine
from repro.mem.hierarchy import GPUMemoryHierarchy
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.vm.tlb import TLB


class GPU(Component):
    """One GPU of the NUMA multi-GPU system (Table II)."""

    def __init__(
        self,
        engine: Engine,
        gpu_id: int,
        config: GPUConfig,
        timing: TimingConfig,
        hyper: GriffinHyperParams,
        page_size: int,
        issue_fn: IssueFn,
        on_workgroup_complete: Callable[[object], None],
    ) -> None:
        super().__init__(engine, f"gpu{gpu_id}")
        self.gpu_id = gpu_id
        self.config = config
        self.timing = timing
        self.page_size = page_size

        self.hierarchy = GPUMemoryHierarchy(gpu_id, config, timing, page_size)
        self.l1_tlbs = [
            TLB(f"gpu{gpu_id}.cu{c}.l1tlb", config.l1_tlb)
            for c in range(config.num_cus)
        ]
        self.l2_tlb = TLB(f"gpu{gpu_id}.l2tlb", config.l2_tlb)

        self.shader_engines: list[ShaderEngine] = []
        cu_index = 0
        for se_id in range(config.num_shader_engines):
            se = ShaderEngine(
                engine, gpu_id, se_id,
                hyper.counter_table_entries, hyper.counter_max,
            )
            for _ in range(config.cus_per_se):
                cu = ComputeUnit(
                    engine, gpu_id, se_id, cu_index, config, timing,
                    issue_fn, on_workgroup_complete,
                )
                se.cus.append(cu)
                cu_index += 1
            self.shader_engines.append(se)

        self.rdma = RdmaEngine(engine, gpu_id, self.hierarchy)
        self.drain_controller = DrainController(engine, self)

    def all_cus(self) -> list[ComputeUnit]:
        return [cu for se in self.shader_engines for cu in se.cus]

    def cu(self, cu_index: int) -> ComputeUnit:
        se, offset = divmod(cu_index, self.config.cus_per_se)
        return self.shader_engines[se].cus[offset]

    def se_of_cu(self, cu_index: int) -> int:
        return cu_index // self.config.cus_per_se

    def record_se_access(self, cu_index: int, page: int) -> None:
        """Bump the issuing Shader Engine's access counter for ``page``."""
        self.shader_engines[self.se_of_cu(cu_index)].record_access(page)

    def collect_access_counts(self) -> dict[int, int]:
        """Harvest and merge all SE counter tables (driver collection)."""
        merged: dict[int, int] = {}
        for se in self.shader_engines:
            for page, count in se.collect_counts().items():
                merged[page] = merged.get(page, 0) + count
        return merged

    def counter_message_bytes(self) -> int:
        """Bytes of the count-report message the driver sends to the IOMMU.

        The paper sizes the message at 110 bytes per 20 pages (36-bit page
        ID + 8-bit count per entry).
        """
        entries = sum(len(se.counters) for se in self.shader_engines)
        groups = max(1, -(-entries // 20))
        return groups * 110

    def invalidate_tlb_pages(self, pages) -> int:
        """Targeted shootdown: drop entries for ``pages`` in all local TLBs.

        Returns the number of entries invalidated.
        """
        dropped = self.l2_tlb.invalidate_pages(pages)
        for tlb in self.l1_tlbs:
            dropped += tlb.invalidate_pages(pages)
        return dropped

    def flush_all_tlbs(self) -> int:
        """Full shootdown: drop every TLB entry on this GPU."""
        dropped = self.l2_tlb.flush_all()
        for tlb in self.l1_tlbs:
            dropped += tlb.flush_all()
        return dropped

    def idle(self) -> bool:
        return all(cu.idle() for cu in self.all_cus())
