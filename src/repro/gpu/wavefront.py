"""Work decomposition: kernels, workgroups, wavefront traces.

Following the paper's Unified Multi-GPU model, a kernel launch is converted
into a grid of workgroups by a centralized dispatcher; workgroups are
assigned round-robin across GPUs, and wavefronts of a workgroup always run
on the same CU.  A :class:`WavefrontTrace` is the sequence of
post-coalescing memory transactions one wavefront issues, with the compute
delay preceding each access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

Access = Tuple[int, int, bool]
"""(delay_cycles, virtual_address, is_write)."""


@dataclass
class WavefrontTrace:
    """One wavefront's memory-transaction stream.

    Attributes:
        accesses: Sequence of (delay, address, is_write); each access is
            issued ``delay`` cycles after the previous access completes
            (the delay models the compute instructions in between).
    """

    accesses: Sequence[Access]

    def __len__(self) -> int:
        return len(self.accesses)


@dataclass
class Workgroup:
    """A workgroup: wavefronts that execute on the same CU.

    Attributes:
        wg_id: Global workgroup id (dispatch order).
        kernel_id: Kernel this workgroup belongs to.
        wavefronts: Wavefront traces to interleave on the CU.
    """

    wg_id: int
    kernel_id: int
    wavefronts: list[WavefrontTrace] = field(default_factory=list)

    def total_accesses(self) -> int:
        return sum(len(w) for w in self.wavefronts)


@dataclass
class Kernel:
    """A kernel launch: a bag of workgroups dispatched as one phase.

    Kernel launches are bulk-synchronous: the dispatcher starts kernel
    ``k+1`` only when every workgroup of kernel ``k`` has completed, which
    is what creates the phase changes DPC's owner-shifting class detects.
    """

    kernel_id: int
    workgroups: list[Workgroup] = field(default_factory=list)

    def total_accesses(self) -> int:
        return sum(wg.total_accesses() for wg in self.workgroups)
