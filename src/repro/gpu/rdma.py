"""RDMA engine: Direct Cache Access service point.

Each GPU's RDMA engine forwards incoming remote requests to the local L2
(paper Figure 4).  It is a serializing resource: a GPU that ends up holding
most of the pages (the baseline's imbalance) funnels all other GPUs'
requests through this one engine, producing the congestion the paper
describes in Section II-C.
"""

from __future__ import annotations

from repro.mem.hierarchy import GPUMemoryHierarchy
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.resource import ThroughputResource


class RdmaEngine(Component):
    """Serializes incoming DCA traffic in front of the local L2."""

    def __init__(
        self,
        engine: Engine,
        gpu_id: int,
        hierarchy: GPUMemoryHierarchy,
        bytes_per_cycle: float = 64.0,
    ) -> None:
        super().__init__(engine, f"gpu{gpu_id}.rdma")
        self.gpu_id = gpu_id
        self.hierarchy = hierarchy
        self.pipe = ThroughputResource(f"gpu{gpu_id}.rdma.pipe", bytes_per_cycle)

    def service(self, now: float, address: int, is_write: bool, size_bytes: int = 64) -> float:
        """Service one incoming remote request; returns completion time."""
        self.bump("requests")
        start = self.pipe.acquire(now, size_bytes)
        return self.hierarchy.remote_service(start, address, is_write)
