"""Compute Unit model.

A CU interleaves a configurable number of workgroups; each wavefront of a
resident workgroup issues its memory transactions as a dependent chain
(issue -> completion -> compute delay -> next issue).  The CU maintains the
bounded in-flight transaction buffer the paper's ACUD mechanism scans:
"every CU maintains a buffer of in-flight memory transactions ... these
memory addresses are then compared against the memory addresses of the
pages that are about to be migrated."

Drain protocol (ACUD): on a drain request the workgroup scheduler stops
issuing; the CU reports *Drain Complete* as soon as it has no outstanding
transaction touching any page in the request — other in-flight work keeps
running.  Issue resumes on :meth:`resume`.

Flush protocol (baseline pipeline flush): issue stops, every in-flight
transaction is discarded and must be replayed; the CU reports completion
only after all in-flight work lands and pays a per-transaction replay
penalty on top of the fixed flush cost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config.system import GPUConfig, TimingConfig
from repro.mem.access import MemoryTransaction
from repro.sim.component import Component
from repro.sim.engine import Engine

IssueFn = Callable[[MemoryTransaction, Callable[[MemoryTransaction, float], None]], None]


class _WavefrontCursor:
    """Progress of one wavefront through its access trace."""

    __slots__ = ("workgroup", "accesses", "index")

    def __init__(self, workgroup, accesses) -> None:
        self.workgroup = workgroup
        self.accesses = accesses
        self.index = 0


class ComputeUnit(Component):
    """One CU: workgroup execution plus the in-flight transaction buffer."""

    def __init__(
        self,
        engine: Engine,
        gpu_id: int,
        se_id: int,
        cu_id: int,
        config: GPUConfig,
        timing: TimingConfig,
        issue_fn: IssueFn,
        on_workgroup_complete: Callable[[object], None],
    ) -> None:
        super().__init__(engine, f"gpu{gpu_id}.se{se_id}.cu{cu_id}")
        self.gpu_id = gpu_id
        self.se_id = se_id
        self.cu_id = cu_id
        self.config = config
        self.timing = timing
        self._issue_fn = issue_fn
        self._on_workgroup_complete = on_workgroup_complete

        self._wg_queue: deque = deque()
        self._running_wgs: dict[int, int] = {}  # wg_id -> live wavefronts
        self._ready: deque = deque()  # cursors blocked on slots or pause
        self._active_cursors: set = set()

        self.outstanding: dict[int, MemoryTransaction] = {}
        self._outstanding_by_page: dict[int, int] = {}
        self._cursor_for: dict[int, _WavefrontCursor] = {}
        self._max_inflight = config.max_inflight_per_cu
        # Per-CU id stream (ids only key this CU's in-flight dicts).  A
        # process-global itertools.count would make restored snapshots
        # diverge from the run they were captured from.
        self._txn_seq = 0
        # One bound method shared by every issue, instead of a fresh
        # closure per transaction.
        self._completion = self._txn_done

        self.issue_paused = False
        self._drain_pending: Optional[set[int]] = None
        self._drain_callback: Optional[Callable[[], None]] = None
        self._flush_callback: Optional[Callable[[], None]] = None
        self._flush_discarded = 0
        # Fault injection: multiplier (>= 1) applied to inter-access issue
        # delays; wired by Machine when a throttle fault targets this GPU.
        self.throttle_fn: Optional[Callable[[float], float]] = None

    def _issue_delay(self, delay: float) -> float:
        if self.throttle_fn is not None:
            return delay * self.throttle_fn(self.now)
        return delay

    # ------------------------------------------------------------------
    # Workgroup lifecycle
    # ------------------------------------------------------------------

    def enqueue_workgroup(self, workgroup, start_time: float) -> None:
        """Queue a workgroup; it becomes eligible to start at start_time."""
        self.engine.post_at(start_time, self._admit_workgroup, workgroup)

    def _admit_workgroup(self, workgroup) -> None:
        self._wg_queue.append(workgroup)
        self._try_start_workgroups()

    def _try_start_workgroups(self) -> None:
        limit = self.config.concurrent_workgroups_per_cu
        while self._wg_queue and len(self._running_wgs) < limit:
            workgroup = self._wg_queue.popleft()
            live = [w for w in workgroup.wavefronts if len(w) > 0]
            if not live:
                self._on_workgroup_complete(workgroup)
                continue
            self._running_wgs[workgroup.wg_id] = len(live)
            self.bump("workgroups_started")
            for trace in live:
                cursor = _WavefrontCursor(workgroup, trace.accesses)
                self._active_cursors.add(cursor)
                delay = trace.accesses[0][0]
                if self.throttle_fn is not None:
                    delay = delay * self.throttle_fn(self.engine._now)
                self.engine.post(delay, self._ready_to_issue, cursor)

    def _finish_wavefront(self, cursor: _WavefrontCursor) -> None:
        self._active_cursors.discard(cursor)
        workgroup = cursor.workgroup
        remaining = self._running_wgs[workgroup.wg_id] - 1
        if remaining:
            self._running_wgs[workgroup.wg_id] = remaining
            return
        del self._running_wgs[workgroup.wg_id]
        self.bump("workgroups_completed")
        self._on_workgroup_complete(workgroup)
        self._try_start_workgroups()

    # ------------------------------------------------------------------
    # Transaction issue chain
    # ------------------------------------------------------------------

    def _ready_to_issue(self, cursor: _WavefrontCursor) -> None:
        if self.issue_paused or len(self.outstanding) >= self._max_inflight:
            self._ready.append(cursor)
            return
        # Inlined _issue(cursor) — this event callback fires once per
        # transaction and the extra frame is measurable.
        _delay, address, is_write = cursor.accesses[cursor.index]
        txn = MemoryTransaction.__new__(MemoryTransaction)
        txn.gpu_id = self.gpu_id
        txn.se_id = self.se_id
        txn.cu_id = self.cu_id
        txn.address = address
        txn.is_write = is_write
        txn.issue_time = self.engine._now
        txn.page = -1
        txn.complete_time = None
        txn.kind = None
        txn.workgroup_id = cursor.workgroup.wg_id
        txn.txn_id = txn_id = self._txn_seq
        self._txn_seq = txn_id + 1
        self.outstanding[txn_id] = txn
        self._cursor_for[txn_id] = cursor
        stats = self.stats
        try:
            stats["transactions_issued"] += 1
        except KeyError:
            stats["transactions_issued"] = 1
        self._issue_fn(txn, self._completion)

    def _issue(self, cursor: _WavefrontCursor) -> None:
        _delay, address, is_write = cursor.accesses[cursor.index]
        # Slot-for-slot equivalent of the dataclass constructor, minus the
        # generated __init__ frame and the default-factory call.
        txn = MemoryTransaction.__new__(MemoryTransaction)
        txn.gpu_id = self.gpu_id
        txn.se_id = self.se_id
        txn.cu_id = self.cu_id
        txn.address = address
        txn.is_write = is_write
        txn.issue_time = self.engine._now
        txn.page = -1
        txn.complete_time = None
        txn.kind = None
        txn.workgroup_id = cursor.workgroup.wg_id
        txn.txn_id = txn_id = self._txn_seq
        self._txn_seq = txn_id + 1
        self.outstanding[txn_id] = txn
        self._cursor_for[txn_id] = cursor
        stats = self.stats
        try:
            stats["transactions_issued"] += 1
        except KeyError:
            stats["transactions_issued"] = 1
        self._issue_fn(txn, self._completion)

    def _txn_done(self, txn: MemoryTransaction, complete_time: float) -> None:
        # Full completion body lives here (one event-callback frame per
        # transaction); _on_txn_complete remains as the named entry point
        # for callers holding a cursor.
        cursor = self._cursor_for.pop(txn.txn_id)
        txn.complete_time = self.engine._now
        del self.outstanding[txn.txn_id]
        page = txn.page
        if page >= 0:
            count = self._outstanding_by_page.get(page, 0) - 1
            if count > 0:
                self._outstanding_by_page[page] = count
            else:
                self._outstanding_by_page.pop(page, None)
        stats = self.stats
        try:
            stats["transactions_completed"] += 1
        except KeyError:
            stats["transactions_completed"] = 1

        if self._drain_pending is not None:
            self._check_drain_progress(page)
        if self._flush_callback is not None:
            self._check_flush_progress()

        # A slot freed: release a blocked wavefront if issue is allowed.
        if not self.issue_paused and self._ready:
            if len(self.outstanding) < self._max_inflight:
                self._issue(self._ready.popleft())

        # Advance this wavefront's chain.
        cursor.index += 1
        if cursor.index >= len(cursor.accesses):
            self._finish_wavefront(cursor)
            return
        delay = cursor.accesses[cursor.index][0]
        if self.throttle_fn is not None:
            delay = delay * self.throttle_fn(self.engine._now)
        self.engine.post(delay, self._ready_to_issue, cursor)

    def note_translated(self, txn: MemoryTransaction) -> None:
        """Record the page of an in-flight transaction (ACUD's buffer scan
        compares in-flight addresses at page granularity)."""
        page = txn.page
        self._outstanding_by_page[page] = self._outstanding_by_page.get(page, 0) + 1

    def _on_txn_complete(self, txn: MemoryTransaction, cursor: _WavefrontCursor) -> None:
        txn.complete_time = self.engine._now
        del self.outstanding[txn.txn_id]
        page = txn.page
        if page >= 0:
            count = self._outstanding_by_page.get(page, 0) - 1
            if count > 0:
                self._outstanding_by_page[page] = count
            else:
                self._outstanding_by_page.pop(page, None)
        stats = self.stats
        try:
            stats["transactions_completed"] += 1
        except KeyError:
            stats["transactions_completed"] = 1

        if self._drain_pending is not None:
            self._check_drain_progress(page)
        if self._flush_callback is not None:
            self._check_flush_progress()

        # A slot freed: release a blocked wavefront if issue is allowed.
        if not self.issue_paused and self._ready:
            if len(self.outstanding) < self._max_inflight:
                self._issue(self._ready.popleft())

        # Advance this wavefront's chain.
        cursor.index += 1
        if cursor.index >= len(cursor.accesses):
            self._finish_wavefront(cursor)
            return
        delay = cursor.accesses[cursor.index][0]
        if self.throttle_fn is not None:
            delay = delay * self.throttle_fn(self.engine._now)
        self.engine.post(delay, self._ready_to_issue, cursor)

    # ------------------------------------------------------------------
    # ACUD drain
    # ------------------------------------------------------------------

    def request_drain(self, pages: set, callback: Callable[[], None]) -> None:
        """ACUD drain: pause issue; report when no in-flight transaction
        touches any of ``pages``."""
        self.issue_paused = True
        self.bump("drain_requests")
        pending = {p for p in pages if self._outstanding_by_page.get(p, 0) > 0}
        if not pending:
            self.bump("drain_immediate")
            callback()
            return
        self._drain_pending = pending
        self._drain_callback = callback

    def _check_drain_progress(self, completed_page: int) -> None:
        if self._drain_pending is None:
            return
        if completed_page in self._drain_pending:
            if self._outstanding_by_page.get(completed_page, 0) == 0:
                self._drain_pending.discard(completed_page)
        if not self._drain_pending:
            callback = self._drain_callback
            self._drain_pending = None
            self._drain_callback = None
            if callback is not None:
                callback()

    # ------------------------------------------------------------------
    # Pipeline flush
    # ------------------------------------------------------------------

    def request_flush(self, callback: Callable[[], None]) -> None:
        """Pipeline flush: discard all in-flight work, pay replay cost.

        Besides the fixed cost and the per-discarded-transaction replay
        penalty, each live wavefront loses its most recent pipeline
        progress: its cursor rewinds ``flush_rewind_accesses`` accesses,
        which it re-executes (compute delays and memory time included)
        once issue resumes.
        """
        self.issue_paused = True
        self.bump("flush_requests")
        rewind = self.timing.flush_rewind_accesses
        for cursor in self._active_cursors:
            if cursor.index > 0:
                rolled = min(rewind, cursor.index)
                cursor.index -= rolled
                self.bump("flush_replayed_accesses", rolled)
        self._flush_discarded = len(self.outstanding)
        self.bump("flush_discarded_txns", self._flush_discarded)
        if self._flush_discarded == 0:
            self.engine.post(self.timing.gpu_flush_cycles, callback)
            return
        self._flush_callback = callback

    def _check_flush_progress(self) -> None:
        if self._flush_callback is None or self.outstanding:
            return
        callback = self._flush_callback
        self._flush_callback = None
        penalty = (
            self.timing.gpu_flush_cycles
            + self._flush_discarded * self.timing.gpu_flush_replay_per_txn
        )
        self.engine.post(penalty, callback)

    # ------------------------------------------------------------------

    def resume(self) -> None:
        """Lift the issue pause (ACUD's *Continue* message)."""
        self.issue_paused = False
        while (
            self._ready
            and len(self.outstanding) < self.config.max_inflight_per_cu
        ):
            self._issue(self._ready.popleft())

    def idle(self) -> bool:
        """True when no workgroup is running or queued here."""
        return not self._running_wgs and not self._wg_queue and not self.outstanding

    def inflight_pages(self) -> set:
        """Pages with at least one in-flight transaction (buffer scan)."""
        return set(self._outstanding_by_page)
