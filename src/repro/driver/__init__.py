"""GPU driver model: fault servicing, count collection, migration rounds."""

from repro.driver.fault import PageFault
from repro.driver.driver import GPUDriver

__all__ = ["PageFault", "GPUDriver"]
