"""The GPU driver (runs on the CPU).

The driver is the software half of Griffin:

* services CPU-resident page faults, consulting DFTM for the
  migrate-vs-DCA decision and CPMS's :class:`FaultBatcher` for scheduling
  (batch size 1 reproduces the baseline's FCFS IOMMU scheduler — one CPU
  flush/shootdown per fault);
* every ``T_ac`` cycles collects the per-Shader-Engine access counters and
  feeds them to DPC's EWMA filter in the IOMMU;
* every migration period asks DPC for candidates, lets CPMS's
  :class:`MigrationPlanner` group them by source GPU, and executes the
  round: drain the source (ACUD or pipeline flush), targeted TLB shootdown
  and L2 flush, *Continue* to the CUs, then PMC page transfers overlapping
  with resumed execution.

Pages are blocked (``PageEntry.migrating``) only while their data is
actually in transfer; during the drain itself accesses keep being serviced
at the source, which is both what the hardware would do (the data has not
moved yet) and what makes the drain guaranteed to terminate.

Under fault injection the migration path is additionally *fault-aware*:
a page transfer the injector drops is retried with exponential backoff up
to a bounded attempt budget, and on exhaustion the driver degrades
gracefully — the page is pinned where it is and served by DCA remote
access (the paper's own baseline path) instead of hanging its waiters.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.core.acud import DrainStrategy
from repro.core.classification import MigrationCandidate
from repro.core.cpms import FaultBatcher, MigrationPlanner
from repro.core.dftm import DelayedFirstTouchMigration, FaultDecision
from repro.core.dpc import DynamicPageClassifier
from repro.core.adaptive import AdaptiveMigrationController
from repro.core.policies import PolicyConfig
from repro.core.predictive import PredictiveMigration
from repro.driver.fault import PageFault
from repro.interconnect.link import CPU_PORT
from repro.mem.access import AccessKind, MemoryTransaction
from repro.resilience.retry import ExponentialBackoff
from repro.sim.component import Component
from repro.sim.resource import SlotResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine


def _discard_arrival(page: int, arrival: float) -> None:
    """Writeback arrivals need no action; the page table already moved."""


class GPUDriver(Component):
    """Driver software orchestrating page placement and migration."""

    def __init__(self, machine: "Machine", policy: PolicyConfig) -> None:
        super().__init__(machine.engine, "driver")
        self.machine = machine
        self.policy = policy
        hyper = machine.hyper

        self.dftm = DelayedFirstTouchMigration(
            machine.page_table, enabled=policy.dftm
        )
        batch_size = hyper.n_ptw if policy.batch_cpu_faults else 1
        self.batcher = FaultBatcher(
            machine.engine,
            batch_size,
            hyper.fault_batch_timeout,
            self._flush_fault_batch,
        )
        self.dpc = DynamicPageClassifier(hyper, machine.num_gpus)
        self.predictor = (
            PredictiveMigration(hyper, machine.num_gpus)
            if policy.predictive else None
        )
        self.adaptive = (
            AdaptiveMigrationController() if policy.adaptive else None
        )
        self.planner = MigrationPlanner(hyper)
        # The CPU services one flush/fault-handler invocation at a time.
        self.cpu_service = SlotResource("driver.cpu", 1)

        self._waiters: dict[int, list] = {}
        self._round_active = False
        self._active = False
        # Oversubscription support: FIFO of resident pages per GPU.
        self._residency_fifo: dict[int, list] = {
            g: [] for g in range(machine.num_gpus)
        }

        # Fault awareness: injector (None in a clean run), retry schedule,
        # per-page attempt counts, and pages pinned after retry exhaustion.
        self.injector = machine.fault_injector
        self.backoff = (
            ExponentialBackoff.from_config(machine.faults)
            if machine.faults is not None else ExponentialBackoff()
        )
        self._attempts: dict[int, int] = {}
        self._pinned: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the recurring collection/migration events (Griffin only)."""
        self._active = True
        if self.policy.inter_gpu_migration:
            hyper = self.machine.hyper
            self.engine.post(hyper.t_ac, self._collect_counts)
            self.engine.post(hyper.migration_period, self._migration_phase)

    def stop(self) -> None:
        """Stop rescheduling periodic events (end of workload)."""
        self._active = False

    # ------------------------------------------------------------------
    # CPU-resident page faults (DFTM + CPMS fault batching)
    # ------------------------------------------------------------------

    def handle_cpu_fault(self, txn: MemoryTransaction, walk_done: float, on_complete: Callable) -> None:
        """A translation resolved to a CPU-resident page."""
        machine = self.machine
        entry = machine.page_table.entry(txn.page)
        if entry.first_touch_gpu is None:
            entry.first_touch_gpu = txn.gpu_id
        if txn.page in self._pinned:
            # Migration already failed past its retry budget: the page is
            # pinned in CPU memory and served by DCA (the baseline path).
            txn.kind = AccessKind.CPU_DCA
            self.bump("pinned_dca_redirects")
            reply = machine.iommu.reply_time(walk_done, txn.gpu_id)
            machine.access_path.cpu_dca_access(txn, reply, on_complete)
            return
        decision = self.dftm.decide(txn.gpu_id, entry)
        if decision == FaultDecision.DCA:
            # IOMMU returns the CPU physical address; access via DCA.
            txn.kind = AccessKind.CPU_DCA
            self.bump("cpu_dca_redirects")
            reply = machine.iommu.reply_time(walk_done, txn.gpu_id)
            machine.access_path.cpu_dca_access(txn, reply, on_complete)
            return
        txn.kind = AccessKind.FAULT_MIGRATE
        self.bump("migration_faults")
        entry.migrating = True
        self._waiters.setdefault(txn.page, []).append((txn, on_complete))
        ck = self.machine.checks
        if ck is not None:
            # Before batcher.add: a full batch flushes synchronously.
            ck.on_fault_queued(txn.page)
        self.batcher.add(PageFault(txn.page, txn.gpu_id, walk_done))

    def wait_for_page(self, page: int, txn: MemoryTransaction, on_complete: Callable) -> None:
        """Queue an access that hit a page whose data is in transfer."""
        self.bump("accesses_blocked_on_migration")
        self._waiters.setdefault(page, []).append((txn, on_complete))

    def _flush_fault_batch(self, batch: list) -> None:
        """One CPU flush covering a whole batch of fault migrations."""
        machine = self.machine
        ck = machine.checks
        if ck is not None:
            ck.on_fault_batch(batch)
        timing = machine.config.timing
        cost = timing.cpu_flush_cycles + timing.page_fault_handler_cycles
        cost += self._shootdown_ack_penalty()
        flush_done = self.cpu_service.acquire(self.now, cost)
        machine.shootdowns.record_cpu(len(batch))
        self.bump("fault_batches")
        self.bump("fault_pages_migrated", len(batch))

        self.engine.post_at(
            max(flush_done, self.now), self._start_fault_transfers, batch
        )

    def _start_fault_transfers(self, batch: list) -> None:
        for fault in batch:
            self._transfer_with_retry(
                [fault.page], CPU_PORT, fault.dst_gpu,
                partial(self._cpu_fault_done, fault.dst_gpu),
            )

    def _cpu_fault_done(self, dst_gpu: int, page: int, migrated: bool) -> None:
        if migrated:
            self._complete_migration(page, CPU_PORT, dst_gpu)
        else:
            self._abandon_migration(page)

    # ------------------------------------------------------------------
    # Fault-aware transfer: retry with backoff, then degrade to DCA
    # ------------------------------------------------------------------

    def _transfer_with_retry(
        self, pages: list, src: int, dst: int, on_done: Callable[[int, bool], None]
    ) -> None:
        """Stream pages ``src`` -> ``dst``; ``on_done(page, migrated)``
        fires exactly once per page.

        Without an injector this is a plain PMC transfer.  With one, each
        page whose transfer is dropped is retried after exponential
        backoff; when the attempt budget is exhausted the page is reported
        un-migrated (``migrated=False``) so the caller can degrade.
        """
        on_arrival = partial(self._transfer_arrival, src, dst, on_done)
        self.machine.pmc.transfer_pages(self.now, pages, src, dst, on_arrival)

    def _transfer_arrival(
        self, src: int, dst: int, on_done: Callable[[int, bool], None],
        page: int, arrival: float,
    ) -> None:
        ck = self.machine.checks
        if self.injector is not None and not self.injector.migration_transfer_ok(
            page, src, dst
        ):
            if ck is not None:
                ck.on_transfer_dropped(page)
            attempt = self._attempts.get(page, 0) + 1
            self._attempts[page] = attempt
            if self.backoff.exhausted(attempt):
                del self._attempts[page]
                self.bump("migration_fallbacks")
                if ck is not None:
                    ck.on_retry_exhausted(page)
                on_done(page, False)
                return
            self.bump("migration_retries")
            self.engine.post(
                self.backoff.delay(attempt),
                self._reissue_transfer, page, src, dst,
                partial(self._transfer_arrival, src, dst, on_done),
            )
            if ck is not None:
                ck.on_transfer_retry(page)
            return
        self._attempts.pop(page, None)
        if ck is not None:
            ck.on_transfer_ok(page)
        on_done(page, True)

    def _reissue_transfer(self, page: int, src: int, dst: int, on_arrival) -> None:
        self.machine.pmc.transfer_pages(self.now, [page], src, dst, on_arrival)

    def _abandon_migration(self, page: int) -> None:
        """Retry budget exhausted: pin the page where it is and serve it
        by DCA remote access (the paper's baseline path)."""
        entry = self.machine.page_table.entry(page)
        entry.migrating = False
        self._pinned.add(page)
        self.bump("pages_pinned")
        ck = self.machine.checks
        if ck is not None:
            ck.on_page_pinned(page)
        self._wake_waiters(page)

    def pinned_pages(self) -> set:
        """Pages permanently downgraded to DCA after failed migrations."""
        return set(self._pinned)

    def _shootdown_ack_penalty(self) -> int:
        """Injected ack delay (and timeout) for one shootdown round."""
        if self.injector is None:
            return 0
        delay, timed_out = self.injector.shootdown_penalty()
        if delay or timed_out:
            self.machine.shootdowns.record_ack_penalty(delay, timed_out)
        return delay

    # ------------------------------------------------------------------
    # Periodic DPC collection
    # ------------------------------------------------------------------

    def _collect_counts(self) -> None:
        if not self._active:
            return
        machine = self.machine
        counts = []
        for gpu in machine.gpus:
            message_bytes = gpu.counter_message_bytes()
            machine.fabric.transfer(self.now, gpu.gpu_id, CPU_PORT, message_bytes)
            counts.append(gpu.collect_access_counts())
        self.dpc.update(counts)
        if self.predictor is not None:
            self.predictor.observe(self.dpc)
        if self.adaptive is not None:
            self.adaptive.audit(self.dpc)
        self.bump("count_collections")
        self.engine.post(machine.hyper.t_ac, self._collect_counts)

    # ------------------------------------------------------------------
    # Periodic inter-GPU migration rounds (CPMS + DPC + ACUD)
    # ------------------------------------------------------------------

    def _migration_phase(self) -> None:
        if not self._active:
            return
        machine = self.machine
        self.engine.post(machine.hyper.migration_period, self._migration_phase)
        if self._round_active:
            self.bump("rounds_skipped_busy")
            return

        corrections: list = []
        round_allowed = True
        if self.adaptive is not None:
            corrections = self._correction_candidates()
            round_allowed = self.adaptive.should_run_round()
            if not round_allowed and not corrections:
                self.bump("rounds_skipped_adaptive")
                return
        if round_allowed:
            candidates = self.dpc.select_candidates(machine.page_table.location)
        else:
            self.bump("rounds_skipped_adaptive")
            candidates = []
        if self.predictor is not None:
            reactive_pages = {c.page for c in candidates}
            speculative = [
                c for c in self.predictor.speculative_candidates(
                    machine.page_table.location
                )
                if c.page not in reactive_pages
            ]
            self.bump("speculative_candidates", len(speculative))
            candidates = candidates + speculative
        if self.adaptive is not None:
            budget = self.adaptive.page_budget()
            if budget is not None:
                candidates = candidates[:budget]
            # Corrections carry fresh evidence; they ride along regardless
            # of the probation budget.
            correction_pages = {c.page for c in corrections}
            candidates = corrections + [
                c for c in candidates if c.page not in correction_pages
            ]
        plan = self.planner.plan(candidates, pinned=self._pinned)
        if not plan:
            return
        if self.adaptive is not None:
            self.adaptive.note_round(plan)
        self._round_active = True
        self.bump("migration_rounds")
        pending_sources = [len(plan)]
        for src, cands in plan.items():
            self._migrate_from(src, cands, pending_sources)

    def _correction_candidates(self) -> list:
        """Turn the adaptive controller's correction nominations into
        migration candidates (page back to its observed steady accessor)."""
        from repro.core.classification import MigrationCandidate, PageClass

        machine = self.machine
        candidates = []
        for page, better_dst in self.adaptive.take_corrections():
            location = machine.page_table.location(page)
            if location < 0 or location == better_dst:
                continue
            candidates.append(MigrationCandidate(
                page, location, better_dst,
                PageClass.OWNER_SHIFTING, benefit=1e6,
            ))
        return candidates

    def _migrate_from(self, src: int, cands: list, pending_sources: list) -> None:
        machine = self.machine
        gpu = machine.gpus[src]
        pages = {c.page for c in cands}

        drained = partial(self._drained, src, cands, pending_sources)
        if self.policy.drain == DrainStrategy.ACUD:
            gpu.drain_controller.drain_acud(pages, drained)
        else:
            gpu.drain_controller.drain_flush(drained)

    def _drained(
        self, src: int, cands: list, pending_sources: list, _t: float
    ) -> None:
        self._after_drain(src, cands, pending_sources)

    def _after_drain(self, src: int, cands: list, pending_sources: list) -> None:
        machine = self.machine
        timing = machine.config.timing
        gpu = machine.gpus[src]
        pages = [c.page for c in cands]

        if self.policy.drain == DrainStrategy.ACUD:
            invalidated = gpu.invalidate_tlb_pages(pages)
            lines, _dirty = gpu.hierarchy.flush_pages(pages)
            delay = timing.tlb_shootdown_cycles + gpu.hierarchy.targeted_flush_cost(lines)
        else:
            invalidated = gpu.flush_all_tlbs()
            gpu.hierarchy.flush_all()
            delay = timing.tlb_shootdown_cycles
        delay += self._shootdown_ack_penalty()
        machine.shootdowns.record_gpu(src, invalidated)
        ck = machine.checks
        if ck is not None:
            targeted = self.policy.drain == DrainStrategy.ACUD
            ck.on_shootdown(src, pages if targeted else None)
        self.bump("inter_gpu_pages_selected", len(pages))
        self.engine.post(delay, self._start_transfer, src, cands, pending_sources)

    def _start_transfer(self, src: int, cands: list, pending_sources: list) -> None:
        machine = self.machine
        gpu = machine.gpus[src]
        ck = machine.checks
        if ck is not None:
            # Before resume_all: the copy must start from ``drained``.
            ck.on_copy_start(src, [c.page for c in cands])
        # Continue message: CUs resume before the page data moves.
        gpu.drain_controller.resume_all()

        # Lock the pages only now — data is about to leave the source.
        destinations: dict[int, int] = {}
        by_dst: dict[int, list[int]] = {}
        for cand in cands:
            machine.page_table.entry(cand.page).migrating = True
            destinations[cand.page] = cand.dst
            by_dst.setdefault(cand.dst, []).append(cand.page)

        outstanding = [len(destinations)]
        page_done = partial(
            self._round_page_done, src, destinations, outstanding, pending_sources
        )
        for dst, pages in by_dst.items():
            self._transfer_with_retry(pages, src, dst, page_done)

    def _round_page_done(
        self, src: int, destinations: dict, outstanding: list,
        pending_sources: list, page: int, migrated: bool,
    ) -> None:
        if migrated:
            self._complete_migration(page, src, destinations[page])
        else:
            self._abandon_migration(page)
        outstanding[0] -= 1
        if outstanding[0] == 0:
            pending_sources[0] -= 1
            if pending_sources[0] == 0:
                self._round_active = False
                ck = self.machine.checks
                if ck is not None:
                    ck.on_round_complete()

    def _complete_migration(self, page: int, src: int, dst: int) -> None:
        machine = self.machine
        machine.page_table.migrate(page, dst)
        machine.record_migration(self.now, page, src, dst)
        # CARVE coherence: cached remote copies of a migrated page are
        # stale everywhere (and redundant at the new owner).
        for gpu in machine.gpus:
            gpu.hierarchy.remote_cache_invalidate([page])
        if src >= 0 and dst >= 0:
            self.bump("inter_gpu_pages_migrated")
        ck = machine.checks
        if ck is not None:
            ck.on_migration_complete(page, src, dst)
        self._wake_waiters(page)
        if dst >= 0:
            self._residency_fifo[dst].append(page)
            self._evict_if_needed(dst)

    # ------------------------------------------------------------------
    # Oversubscription: capacity eviction (UM's backing-store property)
    # ------------------------------------------------------------------

    def _evict_if_needed(self, gpu_id: int) -> None:
        """Evict the oldest resident pages back to the CPU if over capacity.

        Unified Memory is backed by system memory; when a migration would
        exceed ``GPUConfig.capacity_pages``, the driver writes the oldest
        resident page back to the CPU.  Accesses arriving mid-eviction
        wait on the transfer (the normal migrating-page path) and are then
        served from CPU memory.
        """
        machine = self.machine
        capacity = machine.config.gpu.capacity_pages
        if capacity <= 0:
            return
        page_table = machine.page_table
        fifo = self._residency_fifo[gpu_id]
        gpu = machine.gpus[gpu_id]
        while page_table.gpu_page_count(gpu_id) > capacity and fifo:
            victim = fifo.pop(0)
            entry = page_table.entry(victim)
            if entry.device != gpu_id or entry.migrating:
                continue  # stale FIFO entry; the page moved already
            # The page-table update commits immediately (later accesses
            # route to the CPU); the writeback still occupies the fabric.
            invalidated = gpu.invalidate_tlb_pages([victim])
            machine.shootdowns.record_gpu(gpu_id, invalidated)
            gpu.hierarchy.flush_pages([victim])
            page_table.migrate(victim, CPU_PORT)
            machine.record_migration(self.now, victim, gpu_id, CPU_PORT)
            for other in machine.gpus:
                other.hierarchy.remote_cache_invalidate([victim])
            self.bump("capacity_evictions")
            ck = machine.checks
            if ck is not None:
                ck.on_shootdown(gpu_id, [victim])
                ck.on_migration_complete(victim, gpu_id, CPU_PORT)
            machine.pmc.transfer_pages(
                self.now, [victim], gpu_id, CPU_PORT, _discard_arrival
            )

    # ------------------------------------------------------------------
    # Waiter management (shared by CPU->GPU and GPU->GPU paths)
    # ------------------------------------------------------------------

    def _wake_waiters(self, page: int) -> None:
        waiters = self._waiters.pop(page, None)
        if not waiters:
            return
        for txn, on_complete in waiters:
            self.machine.access_path.route_after_migration(txn, self.now, on_complete)
