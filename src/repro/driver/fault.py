"""Page-fault records exchanged between the IOMMU and the driver."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PageFault:
    """A first-touch fault selected for CPU->GPU migration.

    Attributes:
        page: Faulting virtual page.
        dst_gpu: GPU the page will migrate to (the faulting GPU).
        fault_time: Cycle the fault was raised (walk completion).
    """

    page: int
    dst_gpu: int
    fault_time: float
