"""Ready-made system configurations.

``paper_system`` matches Table II.  ``nvlink_system`` swaps the PCIe-v4
fabric for an NVLink-class link (used by Figure 13).  ``small_system`` and
``tiny_system`` shrink the GPU so unit/integration tests run quickly while
keeping every mechanism on the same code path.
"""

from __future__ import annotations

from repro.config.system import (
    KB,
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    LinkConfig,
    SystemConfig,
    TLBConfig,
)

PCIE_V4 = LinkConfig(name="PCIe-v4", bandwidth_gbps=32.0, latency=500)
NVLINK = LinkConfig(name="NVLink", bandwidth_gbps=128.0, latency=300)


def paper_system(num_gpus: int = 4) -> SystemConfig:
    """The 4x AMD MI6 configuration of paper Table II."""
    return SystemConfig(num_gpus=num_gpus, link=PCIE_V4)


def nvlink_system(num_gpus: int = 4) -> SystemConfig:
    """Paper system with a higher-bandwidth NVLink-class fabric (Fig. 13)."""
    return SystemConfig(num_gpus=num_gpus, link=NVLINK)


def small_system(num_gpus: int = 4) -> SystemConfig:
    """A shrunken system for fast integration tests and examples.

    2 SEs x 4 CUs per GPU, smaller caches/TLBs; identical mechanisms.
    """
    gpu = GPUConfig(
        num_shader_engines=2,
        cus_per_se=4,
        l1v=CacheConfig(4 * KB, 4),
        l1i=CacheConfig(8 * KB, 4),
        l1s=CacheConfig(4 * KB, 4),
        l2=CacheConfig(64 * KB, 16),
        l2_slices=4,
        l1_tlb=TLBConfig(1, 16),
        l2_tlb=TLBConfig(16, 8, latency=10),
        dram=DRAMConfig(size_bytes=64 * 1024 * 1024, channels=4),
        max_inflight_per_cu=8,
        concurrent_workgroups_per_cu=2,
    )
    return SystemConfig(num_gpus=num_gpus, gpu=gpu, link=PCIE_V4)


def tiny_system(num_gpus: int = 2) -> SystemConfig:
    """The smallest useful system, for unit tests of end-to-end paths."""
    gpu = GPUConfig(
        num_shader_engines=1,
        cus_per_se=2,
        l1v=CacheConfig(1 * KB, 2),
        l1i=CacheConfig(2 * KB, 2),
        l1s=CacheConfig(1 * KB, 2),
        l2=CacheConfig(8 * KB, 4),
        l2_slices=2,
        l1_tlb=TLBConfig(1, 8),
        l2_tlb=TLBConfig(8, 4, latency=10),
        dram=DRAMConfig(size_bytes=16 * 1024 * 1024, channels=2),
        max_inflight_per_cu=4,
        concurrent_workgroups_per_cu=2,
    )
    iommu = IOMMUConfig(num_walkers=4, walk_latency=200)
    return SystemConfig(num_gpus=num_gpus, gpu=gpu, link=PCIE_V4, iommu=iommu)
