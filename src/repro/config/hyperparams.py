"""Griffin hyperparameters (Table I of the paper) plus reproduction knobs."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator


@dataclass(frozen=True)
class GriffinHyperParams:
    """Default Griffin hyperparameter configuration (paper Table I).

    Attributes:
        n_ptw: Number of completed page walks CPMS waits for before
            scheduling a batch of CPU->GPU page migrations (paper: 8,
            matching the IOMMU's eight page-table walkers).
        t_ac: Cycles between collections of the per-Shader-Engine page
            access counters (paper: 1000).
        alpha: EWMA filter weight; the rate at which the page-access-count
            filter forgets history (paper: 0.03).
        lambda_d: Minimum ratio between the highest and second-highest
            per-GPU access count for a page to be classified Mostly
            Dedicated (paper: 2.0).
        lambda_s: Maximum ratio between the highest and second-highest
            per-GPU access count for a page to be classified Shared
            (paper: 1.3).
        lambda_t: Maximum accesses per cycle from a GPU for a page to be
            classified Streaming (paper: 0.03).
        counter_bits: Width of each saturating access counter (paper: 8,
            saturating at 0xFF).
        counter_table_entries: Entries per Shader Engine access-count table
            (paper: 100).
        page_id_bits: Width of a page ID for a 4 KB page in a 48-bit
            physical address space (paper: 36).
        migration_period: Cycles between CPMS inter-GPU migration phases.
            The paper divides execution into periods without publishing the
            length; we default to 10x t_ac so several count collections
            inform each migration decision.
        max_pages_per_round: Cap on pages CPMS migrates in one phase
            ("CPMS limits the number of pages to migrate").
        max_source_gpus_per_round: Cap on GPUs drained in one phase
            ("... and the number of GPUs to flush").
        shared_min_share: Minimum fraction of the total access count a
            page's resident GPU must hold for a Shared page to stay put
            ("already located on a GPU that has only a slight variation").
        fault_batch_timeout: Cycles after which a partially filled CPMS
            CPU-fault batch is flushed anyway, so a trickle of faults is
            not delayed indefinitely (reproduction knob; the paper relies
            on walk completion which our transaction-level model batches
            by count + timeout).
        trend_fraction: Owner-shifting sensitivity — a per-period change
            in a page's filtered count registers as a trend when it
            exceeds ``trend_fraction * alpha * top_count`` (a step change
            from 0 to N moves the EWMA by ``alpha * N`` in one period, so
            this is scale-free).
        min_pages_per_source: CPMS admits a source GPU to a migration
            round only when at least this many candidate pages would
            amortize its drain + shootdown (1 = always admit).
    """

    n_ptw: int = 8
    t_ac: int = 1000
    alpha: float = 0.03
    lambda_d: float = 2.0
    lambda_s: float = 1.3
    lambda_t: float = 0.03
    counter_bits: int = 8
    counter_table_entries: int = 100
    page_id_bits: int = 36
    migration_period: int = 10_000
    max_pages_per_round: int = 64
    max_source_gpus_per_round: int = 4
    shared_min_share: float = 0.15
    fault_batch_timeout: int = 500
    trend_fraction: float = 0.3
    min_pages_per_source: int = 1

    def __post_init__(self) -> None:
        if self.n_ptw < 1:
            raise ValueError("n_ptw must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.lambda_d < self.lambda_s:
            raise ValueError("lambda_d must be >= lambda_s")
        if self.lambda_t < 0:
            raise ValueError("lambda_t must be >= 0")
        if self.t_ac < 1 or self.migration_period < 1:
            raise ValueError("t_ac and migration_period must be >= 1")

    @property
    def counter_max(self) -> int:
        """Saturation value of an access counter (0xFF for 8 bits)."""
        return (1 << self.counter_bits) - 1

    def with_overrides(self, **kwargs: object) -> "GriffinHyperParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def calibrated(cls) -> "GriffinHyperParams":
        """Hyperparameters recalibrated for this simulator's intensity.

        The paper's Table I values are tied to MGPUSim's cycle-level
        access intensity (tens of post-coalescing transactions per cycle
        per GPU); this transaction-level reproduction with scaled-down
        footprints issues roughly two orders of magnitude fewer accesses
        per cycle.  The *ratio* thresholds (lambda_d, lambda_s) are
        scale-free and keep their published values; the *absolute*
        parameters are rescaled to match our intensity:

        * ``t_ac`` grows so a collection period contains a meaningful raw
          count per hot page;
        * ``alpha`` grows so the EWMA converges within the (fewer)
          periods a kernel phase spans;
        * ``lambda_t``'s floor becomes ~1 access per collection period;
        * ``migration_period`` holds several collection periods, as in
          the paper.

        See DESIGN.md "Substitutions" and EXPERIMENTS.md for the full
        rationale.
        """
        return cls(
            t_ac=5_000,
            alpha=0.2,
            lambda_t=1e-4,
            migration_period=30_000,
            max_pages_per_round=192,
            min_pages_per_source=4,
        )

    def table_rows(self) -> Iterator[tuple[str, str, str]]:
        """Yield (param, value, description) rows matching paper Table I."""
        rows = [
            ("N_PTW", str(self.n_ptw),
             "Page walks to wait for before triggering page migration"),
            ("T_ac", str(self.t_ac),
             "Cycles between collecting access counts"),
            ("alpha", f"{self.alpha:g}",
             "Rate at which the page access count filter forgets history"),
            ("lambda_d", f"{self.lambda_d:g}",
             "Min highest/2nd-highest count ratio for Mostly Dedicated"),
            ("lambda_s", f"{self.lambda_s:g}",
             "Max highest/2nd-highest count ratio for Shared"),
            ("lambda_t", f"{self.lambda_t:g}",
             "Max accesses/cycle from a GPU for Streaming"),
        ]
        return iter(rows)


PAPER_TABLE_I = GriffinHyperParams()
"""The exact defaults the paper lists in Table I."""
