"""Fault-injection configuration: the resilience axis of a run.

A :class:`FaultConfig` declares *what can go wrong* during a simulation —
degraded or stalled fabric links, dropped page-migration transfers, late
or timed-out TLB-shootdown acknowledgements, throttled shader engines —
plus the retry/backoff policy the driver uses to recover.  It is pure
declarative data: the seeded decision-making lives in
:class:`repro.resilience.injector.FaultInjector`, so the same config plus
the same seed always injects the same faults at the same points.

The default config injects nothing (``enabled`` is False) and leaves every
simulation byte-identical to a run without fault support compiled in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LinkFaultSpec:
    """One fabric port misbehaving during a time window.

    Attributes:
        device: Fabric port id (GPU id, or -1 for the CPU port).
        start / end: Simulation-cycle window in which the fault is active.
        bandwidth_factor: Multiplier on the port's effective bandwidth
            while active (0 < factor <= 1; 0.25 means the link serializes
            four times slower).
        extra_latency: Additional one-way latency cycles charged per
            transfer touching the port while active.
    """

    device: int
    start: float = 0.0
    end: float = math.inf
    bandwidth_factor: float = 1.0
    extra_latency: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.extra_latency < 0:
            raise ValueError("extra_latency must be >= 0")
        if self.end < self.start:
            raise ValueError("fault window end must be >= start")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class ThrottleSpec:
    """One GPU's shader engines running slow during a time window.

    Attributes:
        gpu: Throttled GPU id.
        start / end: Simulation-cycle window in which the throttle holds.
        issue_delay_factor: Multiplier (>= 1) applied to every inter-access
            issue delay on the GPU's compute units while active.
    """

    gpu: int
    start: float = 0.0
    end: float = math.inf
    issue_delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.issue_delay_factor < 1.0:
            raise ValueError("issue_delay_factor must be >= 1")
        if self.end < self.start:
            raise ValueError("throttle window end must be >= start")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault plan plus the driver's recovery policy.

    Attributes:
        migration_drop_rate: Probability that one page-migration transfer
            is dropped (NACKed) on arrival and must be retried.
        shootdown_ack_delay: Extra cycles added to every TLB-shootdown
            acknowledgement round.
        shootdown_timeout_rate: Probability that a shootdown round times
            out once before being acknowledged.
        shootdown_timeout_cycles: Penalty paid by a timed-out round.
        link_faults: Fabric-port degradations/stalls (time-windowed).
        throttles: Shader-engine slowdowns (time-windowed).
        max_migration_attempts: Transfer attempts per page before the
            driver gives up, pins the page in place, and serves it by DCA
            remote access.  0 means retry forever (a stress configuration
            that deliberately livelocks under a 100% drop rate; pair it
            with a per-run event budget).
        retry_backoff_cycles: Delay before the first retry.
        retry_backoff_multiplier: Exponential growth of the retry delay.
    """

    migration_drop_rate: float = 0.0
    shootdown_ack_delay: int = 0
    shootdown_timeout_rate: float = 0.0
    shootdown_timeout_cycles: int = 1_000
    link_faults: tuple[LinkFaultSpec, ...] = ()
    throttles: tuple[ThrottleSpec, ...] = ()
    max_migration_attempts: int = 3
    retry_backoff_cycles: int = 2_000
    retry_backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        for name in ("migration_drop_rate", "shootdown_timeout_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.shootdown_ack_delay < 0 or self.shootdown_timeout_cycles < 0:
            raise ValueError("shootdown penalties must be >= 0")
        if self.max_migration_attempts < 0:
            raise ValueError("max_migration_attempts must be >= 0")
        if self.retry_backoff_cycles < 1:
            raise ValueError("retry_backoff_cycles must be >= 1")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any fault can actually fire."""
        return bool(
            self.migration_drop_rate > 0.0
            or self.shootdown_ack_delay > 0
            or self.shootdown_timeout_rate > 0.0
            or self.link_faults
            or self.throttles
        )

    def with_overrides(self, **kwargs: object) -> "FaultConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """One-line human-readable summary of the active fault axes."""
        parts = []
        if self.migration_drop_rate > 0:
            parts.append(f"drop {self.migration_drop_rate:.0%} of migrations")
        if self.shootdown_ack_delay > 0:
            parts.append(f"+{self.shootdown_ack_delay}cyc shootdown acks")
        if self.shootdown_timeout_rate > 0:
            parts.append(
                f"{self.shootdown_timeout_rate:.0%} shootdown timeouts"
            )
        if self.link_faults:
            parts.append(f"{len(self.link_faults)} link fault(s)")
        if self.throttles:
            parts.append(f"{len(self.throttles)} GPU throttle(s)")
        return "; ".join(parts) if parts else "no faults"


NO_FAULTS = FaultConfig()
"""The default: nothing injected, simulations bit-identical to pre-fault runs."""
