"""Multi-GPU system configuration (paper Table II)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache.

    Attributes:
        size_bytes: Total capacity.
        ways: Associativity.
        line_bytes: Cache line size (64 B throughout, as in MGPUSim).
        latency: Hit latency in cycles.
    """

    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                "cache size must be a multiple of ways * line_bytes: "
                f"{self.size_bytes} % ({self.ways} * {self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def set_mask(self) -> int:
        """``num_sets - 1`` when sets are a power of two, else -1.

        Validated here, at configuration time, so the cache can index
        sets with a single AND instead of a modulo; -1 tells it to fall
        back to modulo for exotic non-power-of-two geometries.
        """
        n = self.num_sets
        return n - 1 if n & (n - 1) == 0 else -1


@dataclass(frozen=True)
class TLBConfig:
    """A set-associative TLB.

    Attributes:
        num_sets: Number of sets (paper: L1 TLB has 1 set, L2 TLB 32 sets).
        ways: Associativity (paper: L1 32-way, L2 16-way).
        latency: Lookup latency in cycles.
    """

    num_sets: int
    ways: int
    latency: int = 1

    def __post_init__(self) -> None:
        if self.num_sets < 1:
            raise ValueError("num_sets must be >= 1")

    @property
    def capacity(self) -> int:
        return self.num_sets * self.ways

    @property
    def set_mask(self) -> int:
        """``num_sets - 1`` when sets are a power of two, else -1 (modulo)."""
        n = self.num_sets
        return n - 1 if n & (n - 1) == 0 else -1


@dataclass(frozen=True)
class DRAMConfig:
    """HBM DRAM stack configuration.

    Attributes:
        size_bytes: Capacity per channel (paper: 512 MB x 8 channels).
        channels: Number of channels (address-interleaved by line).
        bytes_per_cycle: Bandwidth per channel at the 1 GHz system clock.
            8 channels x 32 B/cycle = 256 GB/s aggregate, an MI6-class
            HBM figure.
        latency: Access latency in cycles (row activation + CAS, folded).
    """

    size_bytes: int = 512 * MB
    channels: int = 8
    bytes_per_cycle: float = 32.0
    latency: int = 200


@dataclass(frozen=True)
class IOMMUConfig:
    """IOMMU configuration (lives on the CPU die).

    Attributes:
        num_walkers: Concurrent page-table walkers (paper: 8).
        walk_latency: Cycles for one page-table walk (4-level walk of
            memory-resident page tables).
    """

    num_walkers: int = 8
    walk_latency: int = 400


@dataclass(frozen=True)
class LinkConfig:
    """Inter-device fabric configuration.

    Attributes:
        name: Human-readable fabric name.
        bandwidth_gbps: Bandwidth per direction in GB/s (paper baseline:
            PCIe-v4 at 32 GB/s each way).
        latency: One-way latency in cycles.
    """

    name: str = "PCIe-v4"
    bandwidth_gbps: float = 32.0
    latency: int = 500

    def bytes_per_cycle(self, clock_ghz: float) -> float:
        """Per-direction bandwidth in bytes per core clock cycle."""
        return self.bandwidth_gbps / clock_ghz


@dataclass(frozen=True)
class TimingConfig:
    """Fixed latencies that are not modelled as queued resources.

    Attributes:
        cpu_flush_cycles: Penalty for flushing the CPU before a page
            migrates out of CPU memory (paper: fixed 100 cycles, following
            Agarwal et al. [11]).
        gpu_flush_cycles: Base penalty for a full GPU pipeline flush
            (setup cost; discarded in-flight work is charged separately).
        gpu_flush_replay_per_txn: Recovery cycles charged per discarded
            in-flight transaction when a pipeline flush drops work on the
            floor.
        flush_rewind_accesses: How many accesses of each live wavefront a
            pipeline flush discards; the wavefront re-executes them (with
            their compute delays) after the flush, modelling the lost
            in-flight pipeline work the paper's flush penalty describes.
        drain_request_cycles: Driver -> CU drain-request delivery time.
        l2_flush_per_line: Cycles to flush one L2 line of a migrating page.
        tlb_shootdown_cycles: Fixed cost of one targeted GPU TLB shootdown
            round (invalidation message + ack), excluding flush costs.
        cpu_mem_latency: Latency of a CPU DRAM access serviced for GPU DCA.
        page_fault_handler_cycles: Driver software cost per fault batch.
            Published far-fault handling latencies for GPUs are 20-50 us
            (Zheng et al. [23]); 1500 cycles (1.5 us at 1 GHz) is a
            conservative stand-in that keeps fault servicing a first-order
            cost without letting it dominate every workload.
    """

    cpu_flush_cycles: int = 100
    gpu_flush_cycles: int = 2000
    gpu_flush_replay_per_txn: int = 800
    flush_rewind_accesses: int = 4
    drain_request_cycles: int = 20
    l2_flush_per_line: int = 4
    tlb_shootdown_cycles: int = 100
    cpu_mem_latency: int = 160
    page_fault_handler_cycles: int = 1500


@dataclass(frozen=True)
class GPUConfig:
    """Per-GPU configuration (paper Table II: AMD Radeon Instinct MI6).

    Attributes:
        num_shader_engines: Shader Engines per GPU (paper: 4).
        cus_per_se: Compute Units per Shader Engine (paper: 9; 36 CUs/GPU).
        clock_ghz: Core clock (paper: 1.0 GHz).
        l1v: Per-CU L1 vector cache (16 KB, 4-way).
        l1i: Per-SE L1 instruction cache (32 KB, 4-way).
        l1s: Per-SE L1 scalar cache (16 KB, 4-way).
        l2: L2 cache slice; eight slices per GPU (256 KB, 16-way each).
        l2_slices: Number of L2 slices (paper: 8).
        l1_tlb: Per-CU L1 TLB (1 set, 32-way).
        l2_tlb: Shared L2 TLB (32 sets, 16-way).
        dram: HBM configuration.
        max_inflight_per_cu: In-flight memory-transaction buffer depth per
            CU (the buffer ACUD scans for pending accesses to migrating
            pages).
        concurrent_workgroups_per_cu: Workgroups a CU interleaves.
        xbar_latency: Intra-GPU single-stage crossbar traversal latency.
        remote_cache_kb: CARVE-style carve-out caching remote read data in
            local DRAM (Young et al. [10]).  0 disables it (the paper's
            configurations); nonzero sizes enable the integration study
            the paper leaves as future work.  Coherence is maintained by
            invalidating a page's cached lines whenever the page migrates
            and by not caching writes.
        capacity_pages: GPU memory capacity in pages for Unified Memory
            oversubscription studies (the UM property the paper's
            introduction highlights).  0 means effectively unlimited (the
            paper's evaluation never oversubscribes); a finite value makes
            the driver evict the oldest resident page back to the CPU
            whenever a migration would exceed it.
    """

    num_shader_engines: int = 4
    cus_per_se: int = 9
    clock_ghz: float = 1.0
    l1v: CacheConfig = field(default_factory=lambda: CacheConfig(16 * KB, 4))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KB, 4))
    l1s: CacheConfig = field(default_factory=lambda: CacheConfig(16 * KB, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * KB, 16))
    l2_slices: int = 8
    l1_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(1, 32))
    l2_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(32, 16, latency=10))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    max_inflight_per_cu: int = 16
    concurrent_workgroups_per_cu: int = 4
    xbar_latency: int = 8
    remote_cache_kb: int = 0
    capacity_pages: int = 0

    @property
    def num_cus(self) -> int:
        return self.num_shader_engines * self.cus_per_se

    def with_remote_cache(self, kb: int) -> "GPUConfig":
        """Return a copy with a CARVE-style remote cache of ``kb`` KB."""
        return replace(self, remote_cache_kb=kb)


@dataclass(frozen=True)
class SimConfig:
    """Simulator-infrastructure knobs (not part of the modelled system).

    Attributes:
        engine_backend: Event-core implementation — ``"heap"`` is the
            pure-Python heap + FIFO-lane queue (the parity oracle and
            default); ``"ring"`` is the numpy structured-array event ring
            with a dense handler table (:mod:`repro.sim.ring`);
            ``"compiled"`` is the optional C extension event core
            (:mod:`repro.sim.compiled`, only selectable when the
            ``repro.sim._ckernel`` extension is built).  All fire events
            in identical ``(time, priority, seq)`` order; the
            golden/parity suites pin them byte-for-byte.  The
            ``REPRO_ENGINE_BACKEND`` environment variable overrides this
            field, so an unmodified test suite can be replayed on another
            backend.
    """

    engine_backend: str = "heap"

    def __post_init__(self) -> None:
        # Name-validity only; availability of the optional compiled
        # extension is checked by resolve_backend at engine-build time
        # (a config object must stay constructible on any host).
        from repro.sim.backends import ENGINE_BACKENDS, ConfigError

        if self.engine_backend not in ENGINE_BACKENDS:
            raise ConfigError(
                f"unknown engine_backend {self.engine_backend!r}; "
                f"valid choices: {', '.join(ENGINE_BACKENDS)}"
            )


@dataclass(frozen=True)
class SystemConfig:
    """Whole-system configuration.

    Attributes:
        num_gpus: GPUs in the NUMA system (paper: 4).
        gpu: Per-GPU configuration.
        link: Inter-device fabric.
        iommu: IOMMU configuration.
        timing: Fixed latencies.
        page_size: Page size in bytes (paper: 4 KB).
        dispatch_skew_cycles: Head start GPU *i* enjoys over GPU *i+1* in
            each dispatch round, reproducing the paper's observation that
            "GPU 1 always requests the first work-group in each round,
            acquiring a slight advantage in the competition for pages".
        arbiter_bias: Strength of the network-arbiter positive feedback
            ("the GPU that generates requests the fastest may be more
            likely to be selected"), expressed as extra skew per page the
            leading GPU already holds, in cycles.
        sim: Simulator-infrastructure knobs (engine backend selection).
            These never change modelled behaviour — results are pinned
            byte-identical across backends — so they ride on the config
            purely for plumbing convenience.
    """

    num_gpus: int = 4
    gpu: GPUConfig = field(default_factory=GPUConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    iommu: IOMMUConfig = field(default_factory=IOMMUConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    page_size: int = 4096
    dispatch_skew_cycles: int = 200
    arbiter_bias: float = 0.02
    sim: SimConfig = field(default_factory=SimConfig)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a power of two")

    def with_link(self, link: LinkConfig) -> "SystemConfig":
        """Return a copy with a different inter-device fabric."""
        return replace(self, link=link)

    def with_engine_backend(self, backend: str) -> "SystemConfig":
        """Return a copy selecting an event-core backend
        ("heap" | "ring" | "compiled")."""
        return replace(self, sim=SimConfig(engine_backend=backend))

    def with_overrides(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    def table_rows(self) -> Iterator[tuple[str, str, str]]:
        """Yield (component, configuration, count-per-GPU) rows (Table II)."""
        g = self.gpu
        rows = [
            ("CU", f"{g.clock_ghz:g} GHz", str(g.num_cus)),
            ("L1 Vector Cache", f"{g.l1v.size_bytes // KB}KB {g.l1v.ways}-way",
             str(g.num_cus)),
            ("L1 Inst Cache", f"{g.l1i.size_bytes // KB}KB {g.l1i.ways}-way",
             "1 per SE"),
            ("L1 Scalar Cache", f"{g.l1s.size_bytes // KB}KB {g.l1s.ways}-way",
             "1 per SE"),
            ("L2 Cache", f"{g.l2.size_bytes // KB}KB {g.l2.ways}-way",
             str(g.l2_slices)),
            ("DRAM", f"{g.dram.size_bytes // MB}MB HBM", str(g.dram.channels)),
            ("L1 TLB", f"{g.l1_tlb.num_sets} set, {g.l1_tlb.ways}-way",
             str(g.num_cus + 2 * g.num_shader_engines + g.num_shader_engines * 2 + 2)),
            ("L2 TLB", f"{g.l2_tlb.num_sets} sets, {g.l2_tlb.ways}-way", "1"),
            ("IOMMU", f"{self.iommu.num_walkers} Page Table Walkers", ""),
            ("Intra-GPU Network", "Single-stage XBar", "1"),
            ("Inter-Device Network",
             f"{self.link.bandwidth_gbps:g}GB/s {self.link.name}", ""),
        ]
        return iter(rows)
