"""Configuration objects: Table I hyperparameters and Table II system config."""

from repro.config.faults import (
    NO_FAULTS,
    FaultConfig,
    LinkFaultSpec,
    ThrottleSpec,
)
from repro.config.hyperparams import GriffinHyperParams
from repro.sim.backends import ConfigError
from repro.config.system import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    LinkConfig,
    SystemConfig,
    TLBConfig,
    TimingConfig,
)
from repro.config.presets import (
    nvlink_system,
    paper_system,
    small_system,
    tiny_system,
)

__all__ = [
    "ConfigError",
    "FaultConfig",
    "LinkFaultSpec",
    "ThrottleSpec",
    "NO_FAULTS",
    "GriffinHyperParams",
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "IOMMUConfig",
    "LinkConfig",
    "SystemConfig",
    "TLBConfig",
    "TimingConfig",
    "paper_system",
    "nvlink_system",
    "small_system",
    "tiny_system",
]
