"""Reproduction validation: the paper's qualitative claims as checks.

``validate_reproduction`` runs the evaluation and grades every shape
claim of the paper against it — who wins, roughly by what factor, where
the crossovers fall.  The same checks back the benchmark suite; exposing
them as data lets downstream users verify a changed environment, config,
or fork still reproduces the paper (``griffin-sim validate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.presets import small_system
from repro.config.system import SystemConfig
from repro.harness.runner import run_workload
from repro.metrics.report import geometric_mean
from repro.workloads.registry import list_workloads


@dataclass(frozen=True)
class CheckResult:
    """One graded claim.

    Attributes:
        claim: The paper statement being checked.
        passed: Whether this reproduction satisfies it.
        measured: What was actually measured (human-readable).
        reference: The paper's value/statement for comparison.
    """

    claim: str
    passed: bool
    measured: str
    reference: str

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim}\n       measured: {self.measured}" \
               f"\n       paper:    {self.reference}"


@dataclass
class ValidationReport:
    """All checks for one validation run."""

    checks: list

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def num_passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    def render(self) -> str:
        lines = [c.render() for c in self.checks]
        lines.append(
            f"\n{self.num_passed}/{len(self.checks)} checks passed"
            + ("" if self.passed else " — reproduction shape NOT satisfied")
        )
        return "\n".join(lines)


def validate_reproduction(
    config: Optional[SystemConfig] = None,
    scale: float = 0.015,
    seed: int = 3,
    workloads=None,
) -> ValidationReport:
    """Run the evaluation and grade the paper's shape claims.

    With the default workload list this runs 2 simulations per workload
    (baseline + Griffin); a subset can be validated for speed, in which
    case suite-wide claims (geomean, extremes) are graded on the subset.
    """
    config = config or small_system()
    workloads = list(workloads or list_workloads())

    runs = {
        wl: (
            run_workload(wl, "baseline", config=config, scale=scale, seed=seed),
            run_workload(wl, "griffin", config=config, scale=scale, seed=seed),
        )
        for wl in workloads
    }
    speedups = {wl: b.cycles / g.cycles for wl, (b, g) in runs.items()}

    checks: list[CheckResult] = []

    wins = sum(1 for s in speedups.values() if s > 1.0)
    checks.append(CheckResult(
        "Griffin outperforms the baseline on nearly all workloads (Fig. 12)",
        wins >= len(workloads) - 1,
        f"{wins}/{len(workloads)} workloads faster",
        "9/10 workloads faster",
    ))

    geo = geometric_mean(speedups.values())
    checks.append(CheckResult(
        "Geometric-mean speedup is in the paper's ballpark (Fig. 12)",
        1.10 <= geo <= 1.80,
        f"geomean {geo:.2f}x",
        "geomean 1.37x",
    ))

    if "MT" in speedups:
        checks.append(CheckResult(
            "Matrix Transpose is the largest win, by a big factor (Fig. 12)",
            max(speedups, key=speedups.get) == "MT" and speedups["MT"] >= 1.8,
            f"MT {speedups['MT']:.2f}x "
            f"(suite max: {max(speedups, key=speedups.get)})",
            "MT 2.9x, the suite maximum",
        ))

    if "PR" in speedups:
        checks.append(CheckResult(
            "PageRank is the weakest workload for Griffin (Fig. 12)",
            min(speedups, key=speedups.get) == "PR" and speedups["PR"] <= 1.10,
            f"PR {speedups['PR']:.2f}x "
            f"(suite min: {min(speedups, key=speedups.get)})",
            "PR ~0.95x, the one slowdown",
        ))

    imbalanced = sum(
        1 for b, _ in runs.values() if b.occupancy.max_share() > 0.30
    )
    checks.append(CheckResult(
        "First-touch placement is imbalanced under the baseline (Fig. 2)",
        imbalanced >= len(workloads) // 2,
        f"{imbalanced}/{len(workloads)} workloads with a >30% GPU "
        f"(fair share 25%)",
        "one GPU holds 40-75% of pages in most workloads",
    ))

    balanced = sum(
        1 for _, g in runs.values() if g.occupancy.max_share() <= 0.40
    )
    checks.append(CheckResult(
        "Griffin achieves a near-equal page split (Fig. 8)",
        balanced == len(workloads),
        f"{balanced}/{len(workloads)} workloads with max share <= 40%",
        "near equal split of pages across all the GPUs",
    ))

    fewer = sum(
        1 for b, g in runs.values() if g.total_shootdowns < b.total_shootdowns
    )
    checks.append(CheckResult(
        "Griffin performs fewer total TLB shootdowns (Fig. 9)",
        fewer == len(workloads),
        f"fewer on {fewer}/{len(workloads)} workloads",
        "total much lower than the baseline on every workload",
    ))

    migrates = sum(1 for _, g in runs.values() if g.gpu_to_gpu_migrations > 0)
    checks.append(CheckResult(
        "Griffin performs programmer-transparent inter-GPU migration",
        migrates >= 1,
        f"inter-GPU migrations on {migrates}/{len(workloads)} workloads",
        "runtime GPU-to-GPU page migration, programmer transparent",
    ))

    return ValidationReport(checks)
