"""Sweep-queue workers: lease, execute, heartbeat, commit, survive.

``run_worker(queue_dir)`` is the whole fleet API: point any number of
processes — on any machine sharing the queue directory — at a
:class:`repro.harness.queue.SweepQueue` and they cooperatively drain it.
Each worker:

* claims open cells under a lease and heartbeats to keep it alive;
* executes cells exactly as ``Sweep.run()`` would — through the shared
  snapshot-fork runner when the cell belongs to a fork group (prefix
  snapshots are cached on disk under the queue, so group members
  executed by different workers still amortize the warm-up), cold
  otherwise — so a queue-executed grid is byte-identical to the serial
  oracle;
* when the queue configures ``cell_timeout``, runs each cell in a
  supervised child process and SIGKILLs it past the deadline — the
  wall-clock backstop for hangs in native/OS code that the in-sim
  event budgets and stall watchdog cannot see;
* commits results idempotently and reports failures with their
  retryability (deterministic simulation failures are terminal;
  infrastructure failures retry with backoff until quarantine);
* drains gracefully on SIGTERM/SIGINT: an in-process cell is finished
  and committed, a supervised cell process is killed and its lease
  released — a stopping worker never strands a lease.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.harness.io import SweepResultCache
from repro.harness.queue import Lease, SweepQueue, default_owner
from repro.harness.results import RunResult

# Cell processes are forked when the platform allows it: the grid is
# already in memory, so the child starts instantly and inherits object
# workloads that a spawn re-import could not reconstruct.
_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: Sentinel outcome: the supervisor killed the cell because the worker
#: is draining; the lease must be released, not failed.
RELEASED = object()


class CellTimeout(RuntimeError):
    """A cell exceeded its wall-clock budget and its process was killed."""


class WorkerCrash(RuntimeError):
    """A cell process died without reporting an outcome."""


@dataclass(frozen=True)
class CellFailure:
    """A cell execution failure, reduced to what the queue records.

    ``retryable`` distinguishes infrastructure failures (timeout, killed
    process — retry with backoff, quarantine after ``max_attempts``)
    from deterministic simulation failures (terminal, byte-identical to
    what serial ``Sweep.run()`` would record).
    """

    error_type: str
    message: str
    bundle_path: Optional[str] = None
    retryable: bool = False


def _failure_from_exception(exc: BaseException,
                            retryable: bool = False) -> CellFailure:
    """Collapse an exception exactly like ``FailedRun.from_exception``."""
    return CellFailure(
        error_type=type(exc).__name__,
        message=str(exc).splitlines()[0] if str(exc) else "",
        bundle_path=getattr(exc, "bundle_path", None),
        retryable=retryable,
    )


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------


def execute_cell(args, group_fp: Optional[str] = None,
                 snapshot_cache: Optional[SweepResultCache] = None):
    """Run one grid cell exactly as the sweep executor would.

    A cell with a fork-group fingerprint goes through the shared
    snapshot-fork runner (the prefix snapshot is loaded from — or run
    once and stored into — ``snapshot_cache``); if the prefix fails, the
    cell re-runs cold so its outcome is exactly a plain run's, matching
    ``Sweep._run_group_serial``.  Returns a :class:`RunResult` or raises
    the cell's own exception.
    """
    from repro.harness.sweep import (
        _finish_fork,
        _fork_cell,
        _prepare_group,
        _run_point,
    )

    if group_fp is not None:
        try:
            snap, meta = _prepare_group(args, snapshot_cache, group_fp)
        except Exception:
            return _run_point(args)
        return _finish_fork(snap, meta, _fork_cell(args))
    return _run_point(args)


def _cell_child(conn, args, group_fp, cache_dir) -> None:
    """Child-process body: execute one cell, send the outcome back."""
    try:
        cache = SweepResultCache(cache_dir) if cache_dir is not None else None
        result = execute_cell(args, group_fp, cache)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - the pipe is the report
        try:
            conn.send(("failure", _failure_from_exception(exc)))
        except Exception:
            conn.send(("failure", CellFailure(
                error_type=type(exc).__name__,
                message="<failure did not serialize>",
            )))
    finally:
        conn.close()


def run_cell_supervised(
    args,
    group_fp: Optional[str] = None,
    cache_dir=None,
    timeout: Optional[float] = None,
    stop: Optional[threading.Event] = None,
    poll: float = 0.05,
) -> Union[RunResult, CellFailure, object]:
    """Execute one cell in a child process under wall-clock supervision.

    The supervisor joins the child in short slices; past ``timeout`` it
    SIGKILLs the process and reports a retryable :class:`CellFailure`
    (``CellTimeout``) — the only defense against a cell hung in
    native/OS code, where no in-process watchdog can run.  If ``stop``
    is set mid-cell (worker drain), the child is killed and the
    :data:`RELEASED` sentinel returned so the caller releases the lease.
    A child that dies without reporting (SIGKILL, OOM) yields a
    retryable ``WorkerCrash`` failure.
    """
    recv, send = _CTX.Pipe(duplex=False)
    proc = _CTX.Process(
        target=_cell_child, args=(send, args, group_fp, cache_dir)
    )
    proc.start()
    send.close()
    deadline = None if timeout is None else time.monotonic() + timeout

    def _kill() -> None:
        if proc.is_alive():
            proc.kill()
        proc.join()

    while proc.is_alive():
        proc.join(poll)
        if stop is not None and stop.is_set():
            _kill()
            recv.close()
            return RELEASED
        if deadline is not None and time.monotonic() > deadline:
            _kill()
            recv.close()
            return CellFailure(
                error_type="CellTimeout",
                message=(f"cell exceeded wall-clock timeout of {timeout}s "
                         "and was killed"),
                retryable=True,
            )
    outcome: Union[RunResult, CellFailure, object]
    if recv.poll():
        try:
            _tag, outcome = recv.recv()
        except Exception:
            outcome = CellFailure(
                error_type="WorkerCrash",
                message="cell process truncated its outcome",
                retryable=True,
            )
    else:
        outcome = CellFailure(
            error_type="WorkerCrash",
            message=(f"cell process died with exit code {proc.exitcode} "
                     "before reporting"),
            retryable=True,
        )
    recv.close()
    return outcome


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Extends one lease on a timer while the cell executes."""

    def __init__(self, queue: SweepQueue, lease: Lease, owner: str,
                 interval: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{lease.idx}")
        self.queue = queue
        self.lease = lease
        self.owner = owner
        self.interval = max(interval, 0.05)
        # Note: not named _stop; Thread itself defines a private _stop.
        self._halt = threading.Event()
        self.lost = False

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                if not self.queue.heartbeat(self.lease.idx, self.owner):
                    # The lease was reclaimed under us (e.g. the worker
                    # was paused longer than the lease).  Keep executing:
                    # the eventual commit is an idempotent no-op.
                    self.lost = True
            except Exception:
                pass  # transient DB contention; the next beat retries

    def stop(self) -> None:
        self._halt.set()
        self.join()


@dataclass
class WorkerReport:
    """What one ``run_worker`` invocation did before returning.

    A report is *always* produced, even when the worker is interrupted
    (SIGTERM/SIGINT/``KeyboardInterrupt``) before it ever claims a
    lease — the fleet supervisor and the service health endpoint treat
    a missing report as a crash, so a graceful drain must never look
    like one.  ``interrupted`` records that the worker drained early.
    """

    owner: str
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    released: int = 0
    interrupted: bool = False

    def summary(self) -> str:
        return (f"worker {self.owner}: {self.claimed} claimed, "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.released} released"
                + (" (interrupted)" if self.interrupted else ""))

    def to_dict(self) -> dict:
        return {
            "owner": self.owner,
            "claimed": self.claimed,
            "completed": self.completed,
            "failed": self.failed,
            "released": self.released,
            "interrupted": self.interrupted,
        }


def run_worker(
    queue_dir,
    owner: Optional[str] = None,
    poll_interval: float = 0.5,
    max_cells: Optional[int] = None,
    exit_when_drained: bool = True,
    install_signal_handlers: bool = False,
    stop: Optional[threading.Event] = None,
    progress=None,
) -> WorkerReport:
    """Drain cells from a sweep queue until it is empty (or stopped).

    Args:
        queue_dir: Directory of a queue created by ``Sweep.run(queue_dir=...)``
            or :meth:`SweepQueue.create`.
        owner: Worker identity recorded on every lease (default:
            ``host:pid:nonce``).
        poll_interval: Sleep between claim attempts when no cell is
            ready (cells may be backing off, or other workers hold the
            remaining leases).
        max_cells: Stop after claiming this many cells (None = no cap).
        exit_when_drained: Return once every cell is terminal.  The
            worker keeps polling through backoff windows and other
            workers' leases — it only exits when the *grid* is finished,
            not merely when nothing is claimable right now.
        install_signal_handlers: Register SIGTERM/SIGINT to drain
            gracefully (finish or release the current lease, then
            return).  Only valid from the main thread.
        stop: Optional external drain event (shares semantics with the
            signal handlers).
        progress: Optional callable ``(report, stats)`` invoked after
            every claimed cell.
    """
    owner = owner or default_owner()
    stop = stop or threading.Event()
    report = WorkerReport(owner=owner)

    # Handlers go in before the queue is even opened: a SIGTERM landing
    # during startup must drain gracefully (and emit the report), not
    # kill the process with nothing claimed and nothing said.
    if install_signal_handlers:
        previous = {
            sig: signal.signal(sig, lambda _s, _f: stop.set())
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
    try:
        try:
            queue = SweepQueue.open(queue_dir)
            settings = queue.settings
            cache = SweepResultCache(queue.cache_dir)
            hb_interval = settings.lease_duration / 3.0
            while not stop.is_set():
                if max_cells is not None and report.claimed >= max_cells:
                    break
                lease = queue.claim(owner)
                if lease is None:
                    if exit_when_drained and queue.drained():
                        break
                    stop.wait(poll_interval)
                    continue
                report.claimed += 1
                heartbeat = _Heartbeat(queue, lease, owner, hb_interval)
                heartbeat.start()
                try:
                    if settings.cell_timeout is not None:
                        outcome = run_cell_supervised(
                            lease.args, lease.group_fp, queue.cache_dir,
                            timeout=settings.cell_timeout, stop=stop,
                        )
                    else:
                        # In-process execution: a drain request arriving
                        # mid-cell waits for the cell to finish (it is
                        # committed, never stranded).
                        try:
                            outcome = execute_cell(
                                lease.args, lease.group_fp, cache
                            )
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:
                            outcome = _failure_from_exception(exc)
                except KeyboardInterrupt:
                    # Interrupted mid-cell without installed handlers:
                    # hand the lease back before draining so the cell is
                    # never stranded behind a dead worker's lease.
                    queue.release(lease.idx, owner)
                    report.released += 1
                    raise
                finally:
                    heartbeat.stop()
                if outcome is RELEASED:
                    queue.release(lease.idx, owner)
                    report.released += 1
                    break
                if isinstance(outcome, CellFailure):
                    queue.fail(
                        lease.idx, owner, outcome.error_type, outcome.message,
                        retryable=outcome.retryable,
                        bundle_path=outcome.bundle_path,
                    )
                    report.failed += 1
                else:
                    queue.complete(lease.idx, owner, outcome)
                    report.completed += 1
                if progress is not None:
                    progress(report, queue.stats())
        except KeyboardInterrupt:
            # Graceful drain for interrupts that bypass the handler path
            # (library callers without install_signal_handlers): whether
            # it landed pre-claim or mid-cell, the lease is already
            # safe, so swallow the interrupt and return the report.
            stop.set()
            report.interrupted = True
    finally:
        if install_signal_handlers:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
    return report
