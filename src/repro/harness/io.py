"""Result serialization: save/load runs as JSON for offline analysis."""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Optional, Union

from repro.harness.results import FailedRun, RunResult
from repro.mem.access import AccessKind
from repro.metrics.occupancy import OccupancySnapshot
from repro.metrics.timeline import MigrationEvent

_SCHEMA_VERSION = 1


def result_to_dict(result: RunResult) -> dict:
    """Convert a run result to a JSON-serializable dictionary.

    The ``bundle`` key is emitted only when a crash bundle was written,
    and ``cpu_pages_covered`` is deliberately not serialized at all:
    both rules keep the committed golden files byte-identical for runs
    that produce no bundle (the parity suites compare the full dict).
    """
    payload = {
        "schema": _SCHEMA_VERSION,
        "workload": result.workload,
        "policy": result.policy,
        "cycles": result.cycles,
        "transactions": result.transactions,
        "occupancy": {
            "pages_per_gpu": list(result.occupancy.pages_per_gpu),
            "cpu_pages": result.occupancy.cpu_pages,
        },
        "cpu_shootdowns": result.cpu_shootdowns,
        "gpu_shootdowns": result.gpu_shootdowns,
        "cpu_to_gpu_migrations": result.cpu_to_gpu_migrations,
        "gpu_to_gpu_migrations": result.gpu_to_gpu_migrations,
        "dftm_denials": result.dftm_denials,
        "kind_counts": {k.value: v for k, v in result.kind_counts.items()},
        "local_fraction": result.local_fraction,
        "migration_events": [
            {"time": e.time, "page": e.page, "src": e.src, "dst": e.dst}
            for e in result.migration_events
        ],
        "seed": result.seed,
        "scale": result.scale,
        "resilience": {
            "migration_retries": result.migration_retries,
            "migration_fallbacks": result.migration_fallbacks,
            "pages_pinned": result.pages_pinned,
            "shootdown_timeouts": result.shootdown_timeouts,
            "transfers_dropped": result.transfers_dropped,
        },
        "events_executed": result.events_executed,
    }
    if result.bundle_path is not None:
        payload["bundle"] = result.bundle_path
    return payload


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a run result from :func:`result_to_dict` output."""
    schema = data.get("schema")
    if schema != _SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {schema!r}")
    return RunResult(
        workload=data["workload"],
        policy=data["policy"],
        cycles=data["cycles"],
        transactions=data["transactions"],
        occupancy=OccupancySnapshot(
            tuple(data["occupancy"]["pages_per_gpu"]),
            data["occupancy"]["cpu_pages"],
        ),
        cpu_shootdowns=data["cpu_shootdowns"],
        gpu_shootdowns=data["gpu_shootdowns"],
        cpu_to_gpu_migrations=data["cpu_to_gpu_migrations"],
        gpu_to_gpu_migrations=data["gpu_to_gpu_migrations"],
        dftm_denials=data["dftm_denials"],
        kind_counts={AccessKind(k): v for k, v in data["kind_counts"].items()},
        local_fraction=data["local_fraction"],
        migration_events=[
            MigrationEvent(e["time"], e["page"], e["src"], e["dst"])
            for e in data["migration_events"]
        ],
        seed=data["seed"],
        scale=data["scale"],
        # Pre-resilience files simply lack these; default them to zero.
        migration_retries=data.get("resilience", {}).get("migration_retries", 0),
        migration_fallbacks=data.get("resilience", {}).get("migration_fallbacks", 0),
        pages_pinned=data.get("resilience", {}).get("pages_pinned", 0),
        shootdown_timeouts=data.get("resilience", {}).get("shootdown_timeouts", 0),
        transfers_dropped=data.get("resilience", {}).get("transfers_dropped", 0),
        events_executed=data.get("events_executed", 0),
        bundle_path=data.get("bundle"),
    )


def failed_to_dict(failed: FailedRun) -> dict:
    """Convert a failed-run record to a JSON-serializable dictionary.

    ``bundle``, ``attempts``, and ``last_owner`` are emitted only when
    they carry information (a bundle exists, more than one attempt ran,
    a queue worker owned the cell), so files written before those fields
    existed — and in-process sweeps, which never set them — keep their
    exact byte layout.
    """
    payload = {
        "schema": _SCHEMA_VERSION,
        "workload": failed.workload,
        "policy": failed.policy,
        "error_type": failed.error_type,
        "message": failed.message,
    }
    if failed.bundle_path is not None:
        payload["bundle"] = failed.bundle_path
    if failed.attempts != 1:
        payload["attempts"] = failed.attempts
    if failed.last_owner is not None:
        payload["last_owner"] = failed.last_owner
    return payload


def failed_from_dict(data: dict) -> FailedRun:
    """Rebuild a failed-run record from :func:`failed_to_dict` output."""
    schema = data.get("schema")
    if schema != _SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {schema!r}")
    return FailedRun(
        workload=data["workload"],
        policy=data["policy"],
        error_type=data["error_type"],
        message=data["message"],
        bundle_path=data.get("bundle"),
        attempts=data.get("attempts", 1),
        last_owner=data.get("last_owner"),
    )


def sweep_key_to_dict(key) -> dict:
    """Serialize a :class:`repro.harness.sweep.SweepKey` for the wire."""
    return {
        "workload": key.workload,
        "policy": key.policy,
        "config": key.config,
        "hyper": key.hyper,
        "fault": key.fault,
    }


def sweep_result_to_dict(result) -> dict:
    """Serialize a :class:`repro.harness.sweep.SweepResult` for the wire.

    Cells appear in iteration (grid) order, each carrying its key and
    either a :func:`result_to_dict` payload or a :func:`failed_to_dict`
    payload, so a client can reassemble the exact structure serial
    ``Sweep.run()`` returns — the per-result dicts are byte-identical to
    locally serialized ones by construction.
    """
    return {
        "schema": _SCHEMA_VERSION,
        "points": [
            {"key": sweep_key_to_dict(key), "result": result_to_dict(run)}
            for key, run in result.points.items()
        ],
        "failures": [
            {"key": sweep_key_to_dict(key), "failure": failed_to_dict(failed)}
            for key, failed in result.failures.items()
        ],
    }


def save_result(result: RunResult, path: Union[str, Path]) -> Path:
    """Write a run result to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: Union[str, Path]) -> RunResult:
    """Read a run result back from :func:`save_result` output."""
    return result_from_dict(json.loads(Path(path).read_text()))


class SweepResultCache:
    """On-disk per-cell cache behind ``Sweep.run(cache_dir=...)``.

    Layout: ``<root>/results/<fingerprint>.json`` holds one
    :func:`save_result` file per completed cell and
    ``<root>/snapshots/<fingerprint>.pkl`` one pickled
    ``(MachineSnapshot, meta)`` pair per shared prefix.  Fingerprints
    (see :func:`repro.harness.sweep.cell_fingerprint`) already include
    the source-tree fingerprint, so entries from older code are simply
    never looked up; a corrupt or truncated entry reads as a miss.
    Failures are never stored — a flaky cell gets re-run, not replayed.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        (self.root / "results").mkdir(parents=True, exist_ok=True)
        (self.root / "snapshots").mkdir(parents=True, exist_ok=True)

    def _result_path(self, fingerprint: str) -> Path:
        return self.root / "results" / f"{fingerprint}.json"

    def _snapshot_path(self, fingerprint: str) -> Path:
        return self.root / "snapshots" / f"{fingerprint}.pkl"

    def load(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result for a cell fingerprint, or None on miss."""
        path = self._result_path(fingerprint)
        if not path.exists():
            return None
        try:
            return load_result(path)
        except Exception:
            return None

    def store(self, fingerprint: str, result: RunResult) -> Path:
        """Persist one completed cell under its fingerprint."""
        return save_result(result, self._result_path(fingerprint))

    def load_snapshot(self, fingerprint: str):
        """The cached ``(snapshot, meta)`` for a group, or None on miss."""
        path = self._snapshot_path(fingerprint)
        if not path.exists():
            return None
        try:
            return pickle.loads(path.read_bytes())
        except Exception:
            return None

    def store_snapshot(self, fingerprint: str, payload) -> None:
        """Persist one group's prefix snapshot under its fingerprint.

        Written atomically (temp file + rename) so concurrent sweep-queue
        workers racing to store the same prefix never expose a torn
        pickle to each other; the last writer wins with identical bytes.
        """
        import os

        path = self._snapshot_path(fingerprint)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_bytes(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        os.replace(tmp, path)
