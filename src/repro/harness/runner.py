"""Run one workload on one policy and harvest a :class:`RunResult`."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.config.faults import FaultConfig
from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system
from repro.config.system import SystemConfig
from repro.core.policies import PolicyConfig, get_policy, list_policies
from repro.gpu.dispatcher import DISPATCH_STRATEGIES
from repro.harness.results import RunResult
from repro.system.machine import Machine
from repro.workloads.base import WorkloadBase
from repro.workloads.registry import get_workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.config import CheckConfig


def run_workload(
    workload: Union[str, WorkloadBase],
    policy: Union[str, PolicyConfig] = "baseline",
    config: Optional[SystemConfig] = None,
    hyper: Optional[GriffinHyperParams] = None,
    scale: float = 0.02,
    seed: int = 7,
    watch_pages=None,
    timeline_bucket: int = 10_000,
    keep_timeline: bool = False,
    collect_detail: bool = False,
    dispatch_strategy: str = "round_robin",
    faults: Optional[FaultConfig] = None,
    max_events: Optional[int] = None,
    stall_threshold: Optional[int] = 1_000_000,
    checks: Optional["CheckConfig"] = None,
    bundle_dir=None,
) -> RunResult:
    """Simulate ``workload`` under ``policy`` and return the results.

    Args:
        workload: Table III abbreviation or a pre-built workload object.
        policy: Policy name or config (see :mod:`repro.core.policies`).
        config: System configuration; defaults to the shrunken
            :func:`~repro.config.presets.small_system` for tractable runs.
        hyper: Griffin hyperparameters (Table I defaults if omitted).
        scale: Footprint scale applied when ``workload`` is a name.
        seed: Deterministic seed applied when ``workload`` is a name.
        watch_pages: Pages to keep bucketized access time series for.
        timeline_bucket: Bucket width (cycles) of the time series.
        keep_timeline: Attach the timeline tracker to the result.
        collect_detail: Attach the full component-level statistics report
            (:func:`repro.metrics.collector.collect_machine_stats`).
        dispatch_strategy: Workgroup-to-GPU assignment ("round_robin",
            the paper's policy, or "chunked").
        faults: Fault-injection plan (None or a disabled config leaves the
            run bit-identical to a fault-free simulation).
        max_events: Per-run event budget; exhausting it raises
            :class:`~repro.sim.engine.SimulationStall` instead of hanging.
        stall_threshold: Engine livelock watchdog (None disables).
        checks: Sanitizer config (:class:`repro.check.CheckConfig`); when
            enabled, runtime invariant monitors ride the run and any
            violation raises :class:`~repro.check.monitors.InvariantViolation`.
            None (the default) installs no hooks at all.
        bundle_dir: Directory for crash bundles.  Only consulted when
            ``checks`` is enabled; None disables bundle writing (the
            monitors still run).
    """
    machine, workload, kernels = prepare_run(
        workload,
        policy=policy,
        config=config,
        hyper=hyper,
        scale=scale,
        seed=seed,
        watch_pages=watch_pages,
        timeline_bucket=timeline_bucket,
        dispatch_strategy=dispatch_strategy,
        faults=faults,
    )
    if checks is not None and checks.enabled:
        return _run_checked(
            machine,
            workload,
            kernels,
            checks,
            bundle_dir,
            max_events=max_events,
            stall_threshold=stall_threshold,
            keep_timeline=keep_timeline,
            collect_detail=collect_detail,
        )
    machine.run(kernels, max_events=max_events, stall_threshold=stall_threshold)
    return harvest_result(
        machine,
        workload,
        keep_timeline=keep_timeline,
        collect_detail=collect_detail,
    )


def _run_checked(
    machine: Machine,
    workload: WorkloadBase,
    kernels: list,
    checks: "CheckConfig",
    bundle_dir,
    max_events: Optional[int],
    stall_threshold: Optional[int],
    keep_timeline: bool,
    collect_detail: bool,
) -> RunResult:
    """Drive a run with the sanitizer attached.

    The machine runs in stages (``start`` / ``run_until`` / ``finish`` —
    byte-identical to an uninterrupted run, pinned by the parity suite)
    so warm snapshots can be captured every ``checks.snapshot_interval``
    cycles for crash bundles.  On any failure — invariant violation,
    stall, or unhandled exception — a bundle is written (when
    ``bundle_dir`` is set), its path attached to the exception as
    ``bundle_path``, and the exception re-raised.
    """
    # Local imports keep the check package entirely out of unchecked runs.
    from repro.check.bundle import write_crash_bundle
    from repro.check.monitors import InvariantViolation
    from repro.check.runtime import CheckRuntime
    from repro.sim.engine import SimulationStall

    runtime = CheckRuntime.attach(machine, checks)

    def _bundle(kind, violation=None, error=None):
        if bundle_dir is None:
            return None
        return write_crash_bundle(
            bundle_dir, kind, machine, runtime,
            workload=workload.spec.abbrev,
            policy=machine.policy.name,
            seed=workload.seed,
            scale=workload.scale,
            max_events=max_events,
            stall_threshold=stall_threshold,
            violation=violation,
            error=error,
        )

    try:
        machine.start(kernels)
        runtime.note_snapshot(machine.snapshot())
        drive_checked(
            machine, runtime, checks,
            max_events=max_events, stall_threshold=stall_threshold,
        )
    except InvariantViolation as exc:
        exc.bundle_path = _bundle(
            "violation", violation=exc.report.to_dict(), error=exc
        )
        raise
    except SimulationStall as exc:
        exc.bundle_path = _bundle("stall", error=exc)
        raise
    except Exception as exc:
        try:
            exc.bundle_path = _bundle("error", error=exc)
        except AttributeError:
            pass  # exceptions with __slots__ cannot carry the path
        raise

    result = harvest_result(
        machine,
        workload,
        keep_timeline=keep_timeline,
        collect_detail=collect_detail,
    )
    if (
        runtime.exhaustions
        and checks.bundle_on_exhaustion
        and bundle_dir is not None
    ):
        result.bundle_path = _bundle("retry_exhaustion")
    return result


def drive_checked(
    machine: Machine,
    runtime,
    checks: "CheckConfig",
    max_events: Optional[int],
    stall_threshold: Optional[int],
) -> None:
    """Advance a sanitized machine to completion and finalize the monitors.

    Shared between fresh checked runs and bundle replay
    (:func:`repro.check.replay.replay_bundle`): a replayed tail must hit
    the same snapshot-interval audit points as the original run did, or a
    violation first caught by a periodic audit would be detected at a
    different cycle on replay.  The interval boundaries line up because
    each is computed from ``engine.now`` at the previous boundary — which
    is exactly the cycle the bundle's snapshot was captured at.
    """
    engine = machine.engine
    interval = checks.snapshot_interval
    if interval is None:
        machine.finish(max_events=max_events, stall_threshold=stall_threshold)
    else:
        while machine.finish_time is None:
            remaining = (
                None if max_events is None
                else max_events - engine.events_executed
            )
            bound = engine.now + interval
            next_time = engine.next_event_time()
            if next_time is not None and next_time > bound:
                # Nothing lands in this window.  Jump straight to the
                # next event instead of snapshotting empty intervals —
                # exponential retry backoff can open astronomically long
                # idle gaps that would otherwise take forever to cross.
                bound = next_time
            machine.run_until(
                bound,
                max_events=remaining,
                stall_threshold=stall_threshold,
            )
            if machine.finish_time is None:
                if not engine.pending_events():
                    # Drained without completing: let finish() raise
                    # its diagnostic instead of looping forever.
                    machine.finish(
                        max_events=None, stall_threshold=stall_threshold
                    )
                    break
                # Audit first so a bundle's snapshot is never already
                # corrupt at capture time.
                runtime.on_snapshot_point()
                runtime.note_snapshot(machine.snapshot())
    runtime.finalize()


def prepare_run(
    workload: Union[str, WorkloadBase],
    policy: Union[str, PolicyConfig] = "baseline",
    config: Optional[SystemConfig] = None,
    hyper: Optional[GriffinHyperParams] = None,
    scale: float = 0.02,
    seed: int = 7,
    watch_pages=None,
    timeline_bucket: int = 10_000,
    dispatch_strategy: str = "round_robin",
    faults: Optional[FaultConfig] = None,
) -> tuple[Machine, WorkloadBase, list]:
    """Validate inputs and build (machine, workload, kernels) unrun.

    This is :func:`run_workload` minus the run itself, split out so the
    sweep's snapshot-fork path can drive the machine in stages
    (``start`` / ``run_until`` / ``snapshot`` / ``finish``) while sharing
    every validation and construction rule with the cold path.
    """
    # Validate the cheap knobs eagerly, with the valid choices in the
    # error, instead of failing deep inside Machine construction.
    if isinstance(policy, str):
        try:
            policy = get_policy(policy)
        except KeyError:
            raise ValueError(
                f"unknown policy {policy!r}; valid choices: "
                f"{', '.join(list_policies())}"
            ) from None
    if dispatch_strategy not in DISPATCH_STRATEGIES:
        raise ValueError(
            f"unknown dispatch strategy {dispatch_strategy!r}; valid "
            f"choices: {', '.join(DISPATCH_STRATEGIES)}"
        )
    if config is None:
        config = small_system()
    if isinstance(workload, str):
        workload = get_workload(
            workload, scale=scale, seed=seed, page_size=config.page_size
        )
    if workload.page_size != config.page_size:
        raise ValueError(
            f"workload page size {workload.page_size} does not match "
            f"system page size {config.page_size}"
        )
    if hyper is None:
        # Table I values recalibrated to this simulator's access
        # intensity; see GriffinHyperParams.calibrated.
        hyper = GriffinHyperParams.calibrated()

    machine = Machine(
        config,
        policy=policy,
        hyper=hyper,
        timeline_bucket=timeline_bucket,
        watch_pages=watch_pages,
        dispatch_strategy=dispatch_strategy,
        faults=faults,
        fault_seed=workload.seed,
    )
    kernels = workload.build_kernels(config.num_gpus)
    return machine, workload, kernels


def harvest_result(
    machine: Machine,
    workload: WorkloadBase,
    keep_timeline: bool = False,
    collect_detail: bool = False,
) -> RunResult:
    """Turn a completed machine into a :class:`RunResult`."""
    if machine.finish_time is None:
        raise RuntimeError("cannot harvest an unfinished machine")
    driver = machine.driver
    page_table = machine.page_table
    injector = machine.fault_injector
    result = RunResult(
        workload=workload.spec.abbrev,
        policy=machine.policy.name,
        cycles=machine.finish_time,
        transactions=machine.access_path.total_issued,
        occupancy=machine.occupancy_snapshot(),
        cpu_shootdowns=machine.shootdowns.cpu_shootdowns,
        gpu_shootdowns=machine.shootdowns.gpu_shootdowns,
        cpu_to_gpu_migrations=page_table.cpu_to_gpu_migrations,
        gpu_to_gpu_migrations=page_table.gpu_to_gpu_migrations,
        dftm_denials=driver.dftm.denials,
        kind_counts=dict(machine.access_path.kind_counts),
        local_fraction=machine.access_path.local_fraction(),
        migration_events=list(machine.migration_events),
        seed=workload.seed,
        scale=workload.scale,
        migration_retries=int(driver.stat("migration_retries")),
        migration_fallbacks=int(driver.stat("migration_fallbacks")),
        pages_pinned=int(driver.stat("pages_pinned")),
        shootdown_timeouts=machine.shootdowns.timeouts,
        transfers_dropped=(
            int(injector.stat("transfers_dropped")) if injector else 0
        ),
        events_executed=machine.engine.events_executed,
        cpu_pages_covered=machine.shootdowns.cpu_pages_covered,
        timeline=machine.timeline if keep_timeline else None,
    )
    if collect_detail:
        from repro.metrics.collector import collect_machine_stats

        result.detail = collect_machine_stats(machine)
    return result


def compare_policies(
    workload: str,
    policies=("baseline", "griffin"),
    config: Optional[SystemConfig] = None,
    hyper: Optional[GriffinHyperParams] = None,
    scale: float = 0.02,
    seed: int = 7,
) -> dict[str, RunResult]:
    """Run the same workload under several policies (same trace, same seed)."""
    return {
        str(policy if isinstance(policy, str) else policy.name): run_workload(
            workload, policy, config=config, hyper=hyper, scale=scale, seed=seed
        )
        for policy in policies
    }
